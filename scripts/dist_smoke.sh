#!/usr/bin/env bash
#
# Distributed-execution smoke driver: runs the quick figure suite three ways —
# in-process, on 2 worker processes, and on 2 workers with one SIGKILLed mid-shard —
# and requires every table to come out byte-identical, with the faulted run still
# exiting 0. CI calls this; it also works locally from the repo root.
#
# Usage: scripts/dist_smoke.sh [SCRATCH_DIR]
#
# Leaves the three table directories plus the distributed runs' event logs
# (dist_events.jsonl, killed_events.jsonl) in SCRATCH_DIR (default: dist_smoke/).

set -euo pipefail

scratch=${1:-dist_smoke}

figures() { cargo run --release -q -p athena-harness --bin figures -- "$@"; }

rm -rf "$scratch"
mkdir -p "$scratch"

figures --all --quick --jobs 2 --out "$scratch/inproc"
figures --all --quick --workers 2 --out "$scratch/dist" \
  --events "$scratch/dist_events.jsonl"

for f in "$scratch"/inproc/*.csv; do
  cmp "$f" "$scratch/dist/$(basename "$f")"
done
grep -q '"kind":"worker_joined"' "$scratch/dist_events.jsonl"

# Same run again, but the marker file arms an injected SIGKILL that exactly one worker
# fires on itself mid-shard: the coordinator must notice, reassign the dead worker's
# unfinished cells to a fresh process, exit 0, and produce the same bytes anyway.
(
  export ATHENA_DIST_FAULT_DIE="$scratch/die.marker"
  figures --all --quick --workers 2 --out "$scratch/killed" \
    --events "$scratch/killed_events.jsonl"
)
test -e "$scratch/die.marker"
grep -q '"kind":"worker_died"' "$scratch/killed_events.jsonl"
grep -q '"kind":"cell_reassigned"' "$scratch/killed_events.jsonl"
for f in "$scratch"/inproc/*.csv; do
  cmp "$f" "$scratch/killed/$(basename "$f")"
done

echo "dist smoke: tables byte-identical in-process / 2 workers / under worker death"
