#!/usr/bin/env bash
#
# Distributed-execution smoke driver: runs the quick figure suite four ways —
# in-process, on 2 worker processes, on 2 workers under full observation
# (--events --profile, with `results trace` / `results metrics` exercised on the
# artifacts), and on 2 workers with one SIGKILLed mid-shard — and requires every
# table to come out byte-identical, with the faulted run still exiting 0. CI calls
# this; it also works locally from the repo root.
#
# Usage: scripts/dist_smoke.sh [SCRATCH_DIR]
#
# Leaves the four table directories plus the distributed runs' event logs
# (dist_events.jsonl, observed_events.jsonl, killed_events.jsonl), the exported
# Perfetto trace (trace.json) and the metrics/events summaries in SCRATCH_DIR
# (default: dist_smoke/).

set -euo pipefail

scratch=${1:-dist_smoke}

figures() { cargo run --release -q -p athena-harness --bin figures -- "$@"; }

rm -rf "$scratch"
mkdir -p "$scratch"

figures --all --quick --jobs 2 --out "$scratch/inproc"
figures --all --quick --workers 2 --out "$scratch/dist" \
  --events "$scratch/dist_events.jsonl"

for f in "$scratch"/inproc/*.csv; do
  cmp "$f" "$scratch/dist/$(basename "$f")"
done
grep -q '"kind":"worker_joined"' "$scratch/dist_events.jsonl"

# Observability composes with distribution: the same 2-worker run with the profiler on
# must still produce identical bytes, forward every cell's events and profile over the
# wire, convert to a Perfetto-loadable trace, and expose the metrics snapshot.
figures --all --quick --workers 2 --out "$scratch/observed" --profile \
  --events "$scratch/observed_events.jsonl"
for f in "$scratch"/inproc/*.csv; do
  cmp "$f" "$scratch/observed/$(basename "$f")"
done
grep -q '"kind":"cell_finished".*"profile"' "$scratch/observed_events.jsonl"
grep -q '"kind":"cell_started".*"worker"' "$scratch/observed_events.jsonl"
test -s "$scratch/observed/profile.folded"

results() { cargo run --release -q -p athena-harness --bin results -- "$@"; }

# (written to files, not piped: `grep -q` would close the pipe mid-print)
results events "$scratch/observed_events.jsonl" --json > "$scratch/events_summary.json"
grep -q '"distributed"' "$scratch/events_summary.json"
results trace "$scratch/observed_events.jsonl" --out "$scratch/trace.json"
results metrics "$scratch/observed/BENCH_sim.json" --json > "$scratch/metrics.json"
grep -q '"cells_simulated"' "$scratch/metrics.json"
# The exported trace must be one valid JSON document with per-worker process rows.
python3 - "$scratch/trace.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
pids = {e["pid"] for e in events if e.get("ph") == "M" and e.get("name") == "process_name"}
assert {1, 2} <= pids, f"want a process row per worker, got {sorted(pids)}"
assert any(e.get("ph") == "X" and e.get("cat") == "cell" for e in events), "no cell spans"
print(f"trace.json: {len(events)} events, processes {sorted(pids)}")
PY

# Same run again, but the marker file arms an injected SIGKILL that exactly one worker
# fires on itself mid-shard: the coordinator must notice, reassign the dead worker's
# unfinished cells to a fresh process, exit 0, and produce the same bytes anyway.
(
  export ATHENA_DIST_FAULT_DIE="$scratch/die.marker"
  figures --all --quick --workers 2 --out "$scratch/killed" \
    --events "$scratch/killed_events.jsonl"
)
test -e "$scratch/die.marker"
grep -q '"kind":"worker_died"' "$scratch/killed_events.jsonl"
grep -q '"kind":"cell_reassigned"' "$scratch/killed_events.jsonl"
for f in "$scratch"/inproc/*.csv; do
  cmp "$f" "$scratch/killed/$(basename "$f")"
done

echo "dist smoke: tables byte-identical in-process / 2 workers / observed / under worker death"
