//! # athena-repro
//!
//! Umbrella crate for the Athena reproduction workspace. It re-exports the public APIs of
//! every member crate so that examples and downstream users can depend on a single crate:
//!
//! ```
//! use athena_repro::prelude::*;
//!
//! let spec = suite_workloads(Suite::Ligra)[0].clone();
//! let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
//! let result = simulate(&spec, &config, CoordinatorKind::Athena, 20_000);
//! assert!(result.cycles > 0);
//! ```
//!
//! See the individual crates for full documentation:
//!
//! * [`sim`] — trace-driven CPU / cache / DRAM simulator substrate.
//! * [`prefetchers`] — IPCP, Berti, Pythia, SPP+PPF, MLOP, SMS.
//! * [`ocp`] — POPET, HMP, TTP off-chip predictors.
//! * [`athena`] — the Athena RL coordination agent (the paper's contribution).
//! * [`coordinators`] — Naive, HPAC, MAB, TLP baseline policies.
//! * [`workloads`] — the 100-workload synthetic trace suite.
//! * [`trace_io`] — on-disk trace formats (binary + text) and streaming replay.
//! * [`telemetry`] — windowed time-series telemetry (per-interval IPC/MPKI/coverage
//!   series, agent learning internals, learning curves).
//! * [`probe`] — zero-cost-when-off observability: the structured JSONL event stream,
//!   the hot-path phase profiler and the process-wide metrics registry.
//! * [`engine`] — the parallel experiment engine (jobs, deterministic seeding, worker
//!   pool, JSON reports).
//! * [`store`] — the persistent content-addressed result store (append-only record log,
//!   rebuildable index, single-writer locking) that caches finished cells across runs.
//! * [`tune`] — deterministic design-space exploration over Athena configurations
//!   (seeded random search, successive halving, objective scoring, leaderboards).
//! * [`harness`] — the per-figure experiment harness and the `figures` / `trace` /
//!   `tune` / `results` CLIs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use athena_coordinators as coordinators;
pub use athena_core as athena;
pub use athena_engine as engine;
pub use athena_harness as harness;
pub use athena_ocp as ocp;
pub use athena_prefetchers as prefetchers;
pub use athena_probe as probe;
pub use athena_sim as sim;
pub use athena_store as store;
pub use athena_telemetry as telemetry;
pub use athena_trace_io as trace_io;
pub use athena_tune as tune;
pub use athena_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use athena_coordinators::{FixedCombo, Hpac, Mab, NaiveAll, Tlp};
    pub use athena_core::{AthenaAgent, AthenaConfig, Feature, RewardWeights};
    pub use athena_engine::{CellResult, Engine, Job, JobOutput, SeedPolicy, StoreHandle};
    pub use athena_harness::{
        simulate, simulate_multicore, CoordinatorKind, OcpKind, PrefetcherKind, RunOptions,
        RunResult, SystemConfig,
    };
    pub use athena_probe::{Event, PhaseProfile, ProbeSink};
    pub use athena_sim::{
        Coordinator, CoordinatorTelemetry, EpochStats, OffChipPredictor, Prefetcher, SimConfig,
        Simulator, TraceRecord, TraceSource,
    };
    pub use athena_store::{ResultStore, StoreError, StorePolicy};
    pub use athena_telemetry::{LearningCurve, Timeline, WindowSample};
    pub use athena_trace_io::{
        convert, open_trace, record_trace, TraceFormat, TraceIoError, TraceSummary,
    };
    pub use athena_tune::{
        load_config, tune, DesignSpace, Leaderboard, Objective, ParamSpace, TuneOptions,
        TuneStrategy,
    };
    pub use athena_workloads::{
        all_workloads, find_workload, mixes, suite_workloads, Suite, WorkloadSpec,
    };
}
