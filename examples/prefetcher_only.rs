//! Prefetcher-only management (the scenario behind Figure 19): Athena coordinating two L2C
//! prefetchers (SMS + Pythia) in a system *without* an off-chip predictor, compared against
//! HPAC and MAB.
//!
//! ```text
//! cargo run --release --example prefetcher_only
//! ```

use athena_repro::prelude::*;

fn main() {
    let config = SystemConfig::prefetchers_only(PrefetcherKind::Sms, PrefetcherKind::Pythia);
    let instructions = 200_000;
    let picks = [
        "462.libquantum-714B",
        "436.cactusADM-1804B",
        "429.mcf-184B",
        "483.xalancbmk-127B",
        "parsec-canneal-simlarge",
        "ligra-BFS-24B",
    ];
    let specs: Vec<WorkloadSpec> = all_workloads()
        .into_iter()
        .filter(|w| picks.contains(&w.name.as_str()))
        .collect();

    println!("system: {} (no OCP)", config.describe());
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "workload", "naive", "hpac", "mab", "athena"
    );
    let mut sums = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for spec in &specs {
        let base = simulate(spec, &config, CoordinatorKind::Baseline, instructions);
        let mut row = Vec::new();
        for (i, policy) in [
            CoordinatorKind::Naive,
            CoordinatorKind::Hpac,
            CoordinatorKind::Mab,
            CoordinatorKind::Athena,
        ]
        .into_iter()
        .enumerate()
        {
            let run = simulate(spec, &config, policy, instructions);
            let speedup = run.ipc / base.ipc;
            sums[i].push(speedup);
            row.push(speedup);
        }
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            spec.name, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "{:<26} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
        "geomean",
        athena_harness::geomean(&sums[0]),
        athena_harness::geomean(&sums[1]),
        athena_harness::geomean(&sums[2]),
        athena_harness::geomean(&sums[3]),
    );
    println!();
    println!(
        "Even without the OCP as a complementary mechanism, Athena should avoid the slowdowns \
         uncoordinated prefetching causes on the irregular workloads while keeping the gains on \
         the streaming ones (compare Figure 19)."
    );
}
