//! Prints the README's "Workload catalog" table (suite × access-pattern class × count),
//! generated from `all_workloads()` so the documentation cannot drift from the code:
//!
//! ```sh
//! cargo run --release --example workload_catalog
//! ```

use std::collections::BTreeMap;

use athena_repro::workloads::{all_workloads, Pattern, Suite};

fn pattern_class(p: &Pattern) -> &'static str {
    match p {
        Pattern::Stream { .. } => "stream",
        Pattern::Strided { .. } => "strided",
        Pattern::Spatial { .. } => "spatial",
        Pattern::PointerChase { .. } => "pointer-chase",
        Pattern::HashProbe { .. } => "hash-probe",
        Pattern::GraphFrontier { .. } => "graph-frontier",
        Pattern::MixedPhase { .. } => "mixed-phase",
        Pattern::ComputeBranchy { .. } => "compute-branchy",
    }
}

fn main() {
    let suites = [Suite::Spec, Suite::Parsec, Suite::Ligra, Suite::Cvp];
    let classes = [
        "stream",
        "strided",
        "spatial",
        "pointer-chase",
        "hash-probe",
        "graph-frontier",
        "mixed-phase",
        "compute-branchy",
    ];
    let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
    let all = all_workloads();
    for w in &all {
        *counts
            .entry((w.suite.to_string(), pattern_class(&w.pattern)))
            .or_default() += 1;
    }

    print!("| Pattern class |");
    for s in &suites {
        print!(" {s} |");
    }
    println!(" total |");
    print!("|---|");
    for _ in &suites {
        print!("---|");
    }
    println!("---|");
    for class in classes {
        print!("| `{class}` |");
        let mut total = 0;
        for s in &suites {
            let n = counts.get(&(s.to_string(), class)).copied().unwrap_or(0);
            total += n;
            if n == 0 {
                print!(" — |");
            } else {
                print!(" {n} |");
            }
        }
        println!(" {total} |");
    }
    print!("| **total** |");
    for s in &suites {
        let n = all.iter().filter(|w| w.suite == *s).count();
        print!(" **{n}** |");
    }
    println!(" **{}** |", all.len());
}
