//! Bandwidth sweep (the scenario behind Figure 14): how the value of prefetching, off-chip
//! prediction and Athena's coordination changes as per-core DRAM bandwidth shrinks from an
//! ample desktop-class budget to a constrained datacenter-class budget.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep
//! ```

use athena_repro::prelude::*;

fn main() {
    let specs: Vec<WorkloadSpec> = all_workloads()
        .into_iter()
        .filter(|w| {
            [
                "462.libquantum-714B",
                "437.leslie3d-134B",
                "429.mcf-184B",
                "483.xalancbmk-127B",
                "ligra-BFS-24B",
                "cvp-compute_fp_17",
            ]
            .contains(&w.name.as_str())
        })
        .collect();
    let instructions = 200_000;
    let policies = [
        CoordinatorKind::PrefetchersOnly,
        CoordinatorKind::OcpOnly,
        CoordinatorKind::Naive,
        CoordinatorKind::Athena,
    ];

    println!(
        "{:<10} {:>18} {:>18} {:>18} {:>18}",
        "bandwidth", "prefetchers-only", "ocp-only", "naive", "athena"
    );
    for bandwidth in [1.6, 3.2, 6.4, 12.8] {
        let config =
            SystemConfig::cd4(PrefetcherKind::Ipcp, PrefetcherKind::Pythia, OcpKind::Popet)
                .with_bandwidth(bandwidth);
        let mut row = Vec::new();
        for policy in &policies {
            let mut speedups = Vec::new();
            for spec in &specs {
                let base = simulate(spec, &config, CoordinatorKind::Baseline, instructions);
                let run = simulate(spec, &config, policy.clone(), instructions);
                speedups.push(run.ipc / base.ipc);
            }
            row.push(athena_harness::geomean(&speedups));
        }
        println!(
            "{:<10} {:>18.3} {:>18.3} {:>18.3} {:>18.3}",
            format!("{bandwidth} GB/s"),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    println!();
    println!(
        "Expected shape (Figure 14): prefetching dominates when bandwidth is ample, hurts when \
         bandwidth is scarce; Athena tracks whichever combination wins at each point."
    );
}
