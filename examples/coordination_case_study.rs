//! Case study (the scenario behind Figure 17): watch Athena's epoch-by-epoch decisions on a
//! phase-alternating workload and see how the learned action mix shifts when the system's
//! memory bandwidth changes.
//!
//! ```text
//! cargo run --release --example coordination_case_study
//! ```

use athena_repro::prelude::*;

fn action_of(epoch: &EpochStats) -> &'static str {
    match (epoch.ocp_predictions > 0, epoch.prefetches_issued > 0) {
        (false, false) => "none",
        (true, false) => "ocp",
        (false, true) => "prefetcher",
        (true, true) => "both",
    }
}

fn main() {
    let spec = all_workloads()
        .into_iter()
        .find(|w| w.name == "cvp-compute_fp_17")
        .expect("workload exists");
    let instructions = 300_000;

    for bandwidth in [3.2, 25.6] {
        let config =
            SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet).with_bandwidth(bandwidth);
        let baseline = simulate(&spec, &config, CoordinatorKind::Baseline, instructions);
        let athena = simulate(&spec, &config, CoordinatorKind::Athena, instructions);

        let mut counts = std::collections::BTreeMap::new();
        for epoch in &athena.epochs {
            *counts.entry(action_of(epoch)).or_insert(0u64) += 1;
        }
        let total: u64 = counts.values().sum();

        println!("=== {} at {bandwidth} GB/s ===", spec.name);
        println!(
            "baseline IPC {:.4}, Athena IPC {:.4} (speedup {:.3})",
            baseline.ipc,
            athena.ipc,
            athena.ipc / baseline.ipc
        );
        println!("epoch-level mechanism usage:");
        for (action, count) in &counts {
            println!(
                "  {:<12} {:>5.1}% of epochs",
                action,
                100.0 * *count as f64 / total as f64
            );
        }
        // Show a short excerpt of the decision timeline.
        let timeline: Vec<&str> = athena.epochs.iter().take(40).map(action_of).collect();
        println!("first 40 epochs: {}", timeline.join(","));
        println!();
    }
    println!(
        "At 3.2 GB/s the agent should lean on the OCP and keep the prefetcher throttled; with \
         ample bandwidth it should favour enabling both mechanisms (compare Figure 17)."
    );
}
