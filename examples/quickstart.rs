//! Quickstart: simulate one workload under the four static combinations and under Athena,
//! and print the resulting speedups.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use athena_repro::prelude::*;

fn main() {
    // Pick a prefetcher-adverse workload: Pythia alone hurts it, POPET alone helps it.
    let spec = all_workloads()
        .into_iter()
        .find(|w| w.name == "483.xalancbmk-127B")
        .expect("workload exists");
    // Cache design 1: POPET as the OCP, Pythia as the L2C prefetcher, 3.2 GB/s of DRAM
    // bandwidth (the paper's bandwidth-constrained default).
    let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
    let instructions = 200_000;

    println!("workload: {}  ({:?})", spec.name, spec.suite);
    println!("system:   CD1 {}", config.describe());
    println!();

    let baseline = simulate(&spec, &config, CoordinatorKind::Baseline, instructions);
    println!(
        "baseline (no prefetching, no OCP): IPC {:.4}, LLC MPKI {:.1}",
        baseline.ipc,
        baseline.stats.llc_mpki()
    );

    for policy in [
        CoordinatorKind::OcpOnly,
        CoordinatorKind::PrefetchersOnly,
        CoordinatorKind::Naive,
        CoordinatorKind::Hpac,
        CoordinatorKind::Mab,
        CoordinatorKind::Athena,
    ] {
        let name = policy.name();
        let run = simulate(&spec, &config, policy, instructions);
        println!(
            "{name:<18} IPC {:.4}  speedup {:>6.3}  (prefetcher accuracy {:.2}, OCP accuracy {:.2})",
            run.ipc,
            run.ipc / baseline.ipc,
            run.stats.prefetcher_accuracy(),
            run.stats.ocp_accuracy(),
        );
    }
    println!();
    println!(
        "Athena coordinates the two mechanisms per epoch: on this workload it should learn to \
         keep POPET on and throttle or disable Pythia, recovering most of the slowdown the \
         naive combination causes."
    );
}
