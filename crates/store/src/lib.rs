//! # athena-store
//!
//! A persistent, content-addressed result store: the on-disk cache the experiment engine
//! consults before running any simulation cell.
//!
//! Every cell the engine runs is a pure function of its `Job` (identity-derived seeds,
//! never scheduling state), so a cell's result can be cached durably and keyed by the
//! job's canonical identity hash. This crate stores those results without knowing
//! anything about jobs or simulations: records are opaque byte payloads keyed by a
//! [`RecordKey`] (two 64-bit hashes — the job identity and an output-variant
//! discriminator). The engine layers the job-identity contract and the payload
//! serialisation on top.
//!
//! ## On-disk layout
//!
//! A store is a directory holding three files:
//!
//! * **`results.log`** — the append-only record log: a 16-byte header (magic
//!   `ATHSTORE`, format version, reserved bytes) followed by records, each a fixed
//!   28-byte record header (identity, variant, payload length, payload checksum) plus
//!   the payload bytes. Records are only ever appended; re-putting a key appends a new
//!   record that *supersedes* the old one ([`ResultStore::gc`] drops superseded bytes).
//! * **`index.bin`** — a compact index (key → log offset/length/checksum) rewritten on
//!   clean close, checksummed as a whole and carrying the log length it covers. The
//!   index is a pure cache of the log: if it is missing the log is rescanned; if it
//!   covers a *prefix* of the log (a writer appended and was killed before the clean
//!   close), the tail is rescanned and the index extended. Any other disagreement —
//!   an index longer than the log, a bad checksum, a bad magic or version — is
//!   corruption and fails loudly.
//! * **`lock`** — the single-writer lock, holding the writer's pid. Read-only opens
//!   skip it; a second writer fails loudly ([`StoreError::Locked`]) unless the
//!   recorded pid is provably dead (a killed sweep's stale lock is reclaimed).
//!
//! ## Failure discipline
//!
//! Same sticky-error discipline as `athena-trace-io`: a store that cannot be read
//! *exactly* is rejected with a [`StoreError`] saying where and why — a truncated
//! record, a flipped payload byte (every [`ResultStore::get`] verifies the record
//! checksum), a bad index, an unsupported version. Nothing is silently skipped or
//! recomputed over; the one sanctioned partial state is a log that is a clean record
//! *prefix* of what the index last covered being absent entirely (the index is then
//! rebuilt), because an append-only log's prefix is exactly the valid state of an
//! earlier, interrupted run.
//!
//! ```
//! use athena_store::{RecordKey, ResultStore};
//!
//! let dir = std::env::temp_dir().join(format!("athena-store-doc-{}", std::process::id()));
//! let key = RecordKey { identity: 0xfeed, variant: 1 };
//! {
//!     let mut store = ResultStore::open(&dir, false).unwrap();
//!     store.put(key, b"{\"ipc\":1.25}").unwrap();
//!     assert_eq!(store.get(key).unwrap().as_deref(), Some(&b"{\"ipc\":1.25}"[..]));
//! } // clean close: index written, lock released
//! let mut reopened = ResultStore::open(&dir, true).unwrap();
//! assert_eq!(reopened.get(key).unwrap().as_deref(), Some(&b"{\"ipc\":1.25}"[..]));
//! # drop(reopened);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod store;

pub use error::StoreError;
pub use store::{
    fnv64, GcReport, RecordKey, ResultStore, StorePolicy, StoreStats, VerifyReport, FORMAT_VERSION,
    INDEX_FILE, LOCK_FILE, LOG_FILE,
};
