//! The [`ResultStore`]: an append-only record log with a compact rebuildable index and a
//! single-writer lock.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;

/// File name of the append-only record log inside a store directory.
pub const LOG_FILE: &str = "results.log";
/// File name of the rebuildable index inside a store directory.
pub const INDEX_FILE: &str = "index.bin";
/// File name of the single-writer lock inside a store directory.
pub const LOCK_FILE: &str = "lock";

/// The on-disk format version this build reads and writes (log and index share it).
pub const FORMAT_VERSION: u16 = 1;

const LOG_MAGIC: &[u8; 8] = b"ATHSTORE";
const INDEX_MAGIC: &[u8; 8] = b"ATHINDEX";
/// Log/index file header: 8 magic bytes, a little-endian u16 version, 6 reserved bytes.
const HEADER_LEN: u64 = 16;
/// Per-record header: identity u64, variant u64, payload length u32, payload checksum u64.
const RECORD_HEADER_LEN: u64 = 28;
/// Per-entry index size: identity u64, variant u64, offset u64, length u32, checksum u64.
const INDEX_ENTRY_LEN: usize = 36;

/// FNV-1a 64-bit offset basis (same family as the engine's seed hasher; reimplemented
/// here so the store stays dependency-free).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — the checksum used for record payloads and the index
/// file. Exposed so integrity tests can forge/verify checksums without duplicating the
/// constant.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// How the engine uses a store during a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorePolicy {
    /// Ignore the store entirely: no lookups, no writes.
    Off,
    /// Serve cached results and append every newly simulated one (the default).
    #[default]
    ReadWrite,
    /// Serve cached results but never write (no lock is taken; safe on a read-only
    /// filesystem or against a store another process is writing).
    ReadOnly,
    /// Ignore cached results, re-simulate everything and append the fresh results
    /// (superseding the old records; reclaim the bytes with `results gc`).
    Refresh,
}

impl StorePolicy {
    /// The policy's CLI name (`off`, `rw`, `ro`, `refresh`).
    pub fn name(&self) -> &'static str {
        match self {
            StorePolicy::Off => "off",
            StorePolicy::ReadWrite => "rw",
            StorePolicy::ReadOnly => "ro",
            StorePolicy::Refresh => "refresh",
        }
    }

    /// Parses a CLI name (the inverse of [`StorePolicy::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(StorePolicy::Off),
            "rw" => Some(StorePolicy::ReadWrite),
            "ro" => Some(StorePolicy::ReadOnly),
            "refresh" => Some(StorePolicy::Refresh),
            _ => None,
        }
    }

    /// Whether batches consult the store before simulating.
    pub fn reads(&self) -> bool {
        matches!(self, StorePolicy::ReadWrite | StorePolicy::ReadOnly)
    }

    /// Whether batches append newly simulated results.
    pub fn writes(&self) -> bool {
        matches!(self, StorePolicy::ReadWrite | StorePolicy::Refresh)
    }
}

/// The key of one stored record: the canonical job-identity hash plus an output-variant
/// discriminator (covering the run facets that affect the *output* without being part of
/// the identity — seed policy and telemetry windowing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordKey {
    /// `Job::identity_hash()` of the cell.
    pub identity: u64,
    /// Output-variant hash (see `athena-engine`'s store module for the derivation).
    pub variant: u64,
}

/// Where one live record's payload sits in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    /// Byte offset of the record header in the log.
    offset: u64,
    /// Payload length in bytes.
    len: u32,
    /// FNV-1a checksum of the payload.
    checksum: u64,
}

/// Counts and sizes of a store, as reported by [`ResultStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Records reachable through the index (one per distinct key).
    pub live_records: u64,
    /// Records ever appended, including superseded ones still occupying log bytes.
    pub total_records: u64,
    /// Log size in bytes (header included).
    pub log_bytes: u64,
}

impl StoreStats {
    /// Records whose bytes are still in the log but no longer reachable (re-put keys).
    pub fn superseded(&self) -> u64 {
        self.total_records - self.live_records
    }
}

/// What [`ResultStore::gc`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Live records kept.
    pub kept: u64,
    /// Superseded records dropped.
    pub dropped: u64,
    /// Log bytes before compaction.
    pub bytes_before: u64,
    /// Log bytes after compaction.
    pub bytes_after: u64,
}

/// What [`ResultStore::verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records scanned in the log (live and superseded).
    pub records_scanned: u64,
    /// Payload bytes whose checksums were verified.
    pub payload_bytes: u64,
    /// Live records cross-checked against the index.
    pub live_records: u64,
}

/// Removes the lock file when the store (or a failed open) lets go of it.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A persistent content-addressed record store over one directory.
///
/// See the crate docs for the on-disk layout and the failure discipline. Writers take the
/// single-writer lock for the lifetime of the handle; the index is rewritten on
/// [`ResultStore::flush`] and on drop, so a killed writer leaves a valid log with a stale
/// (prefix) index that the next open rescans and extends.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    log: File,
    log_len: u64,
    read_only: bool,
    index: BTreeMap<RecordKey, IndexEntry>,
    total_records: u64,
    dirty: bool,
    lock: Option<LockGuard>,
}

impl ResultStore {
    /// Opens (or, for writers, creates) the store in `dir`.
    ///
    /// `read_only` skips the single-writer lock and refuses [`ResultStore::put`]; a
    /// read-only open of a directory with no log is [`StoreError::Missing`]. A writer
    /// open creates the directory and an empty log as needed, and fails with
    /// [`StoreError::Locked`] while another live process holds the lock (a dead
    /// process's stale lock is reclaimed).
    pub fn open(dir: impl Into<PathBuf>, read_only: bool) -> Result<Self, StoreError> {
        let dir = dir.into();
        let log_path = dir.join(LOG_FILE);
        let mut lock = None;
        if !read_only {
            fs::create_dir_all(&dir)?;
            lock = Some(acquire_lock(&dir)?);
        }
        if !log_path.is_file() {
            if read_only {
                return Err(StoreError::Missing(dir));
            }
            let mut f = File::create(&log_path)?;
            f.write_all(LOG_MAGIC)?;
            f.write_all(&FORMAT_VERSION.to_le_bytes())?;
            f.write_all(&[0u8; 6])?;
            f.sync_all()?;
        }
        let mut log = OpenOptions::new()
            .read(true)
            .write(!read_only)
            .open(&log_path)?;
        let log_len = log.seek(SeekFrom::End(0))?;
        check_header(&mut log, log_len, LOG_MAGIC, "log")?;

        let mut store = Self {
            dir,
            log,
            log_len,
            read_only,
            index: BTreeMap::new(),
            total_records: 0,
            dirty: false,
            lock,
        };
        let scan_from = match store.load_index()? {
            Some(covered) => covered,
            None => HEADER_LEN,
        };
        if scan_from < store.log_len {
            store.scan_log(scan_from)?;
            // The index lagged the log (or was absent): it must be rewritten on close
            // even if this session appends nothing.
            store.dirty = !store.read_only;
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counts and sizes (live records, superseded records, log bytes).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_records: self.index.len() as u64,
            total_records: self.total_records,
            log_bytes: self.log_len,
        }
    }

    /// Every live key, in deterministic (identity, variant) order.
    pub fn keys(&self) -> Vec<RecordKey> {
        self.index.keys().copied().collect()
    }

    /// Whether a live record exists for `key`.
    pub fn contains(&self, key: RecordKey) -> bool {
        self.index.contains_key(&key)
    }

    /// Reads the live payload for `key`, verifying its checksum.
    ///
    /// `Ok(None)` means the key has no record; a checksum mismatch or short read is
    /// [`StoreError::Corrupt`] — a flipped payload byte can never be served as a result.
    pub fn get(&mut self, key: RecordKey) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(entry) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        self.log
            .seek(SeekFrom::Start(entry.offset + RECORD_HEADER_LEN))?;
        let mut payload = vec![0u8; entry.len as usize];
        self.log.read_exact(&mut payload).map_err(|_| {
            StoreError::corrupt(
                "log",
                entry.offset,
                format!("record payload truncated (expected {} bytes)", entry.len),
            )
        })?;
        if fnv64(&payload) != entry.checksum {
            return Err(StoreError::corrupt(
                "log",
                entry.offset,
                format!(
                    "payload checksum mismatch for key {:#018x}/{:#018x}",
                    key.identity, key.variant
                ),
            ));
        }
        Ok(Some(payload))
    }

    /// Appends a record for `key`, superseding any previous record under the same key,
    /// and flushes it to the OS so a killed process loses at most the record being
    /// written (which the next open rejects as a truncated tail — delete the store or
    /// restore the index to recover; partial records are never silently dropped).
    pub fn put(&mut self, key: RecordKey, payload: &[u8]) -> Result<(), StoreError> {
        if self.read_only {
            return Err(StoreError::ReadOnlyStore);
        }
        let len = u32::try_from(payload.len()).map_err(|_| {
            StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record payload exceeds 4 GiB",
            ))
        })?;
        let offset = self.log_len;
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&key.identity.to_le_bytes());
        record.extend_from_slice(&key.variant.to_le_bytes());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&fnv64(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.log.seek(SeekFrom::Start(offset))?;
        self.log.write_all(&record)?;
        self.log.flush()?;
        self.log_len = offset + record.len() as u64;
        self.index.insert(
            key,
            IndexEntry {
                offset,
                len,
                checksum: fnv64(payload),
            },
        );
        self.total_records += 1;
        self.dirty = true;
        Ok(())
    }

    /// Rewrites the index file to cover the current log. Called automatically on drop;
    /// call it explicitly to make an error observable.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.read_only || !self.dirty {
            return Ok(());
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 6]);
        bytes.extend_from_slice(&self.log_len.to_le_bytes());
        bytes.extend_from_slice(&self.total_records.to_le_bytes());
        bytes.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for (key, entry) in &self.index {
            bytes.extend_from_slice(&key.identity.to_le_bytes());
            bytes.extend_from_slice(&key.variant.to_le_bytes());
            bytes.extend_from_slice(&entry.offset.to_le_bytes());
            bytes.extend_from_slice(&entry.len.to_le_bytes());
            bytes.extend_from_slice(&entry.checksum.to_le_bytes());
        }
        bytes.extend_from_slice(&fnv64(&bytes).to_le_bytes());
        let tmp = self.dir.join("index.tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, self.dir.join(INDEX_FILE))?;
        self.dirty = false;
        Ok(())
    }

    /// Compacts the log to its live records (dropping superseded bytes) and rewrites the
    /// index. The new log is built in a temporary file and atomically renamed over the
    /// old one.
    pub fn gc(&mut self) -> Result<GcReport, StoreError> {
        if self.read_only {
            return Err(StoreError::ReadOnlyStore);
        }
        let bytes_before = self.log_len;
        let dropped = self.total_records - self.index.len() as u64;
        let live: Vec<(RecordKey, Vec<u8>)> = {
            let keys = self.keys();
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                let payload = self.get(key)?.expect("indexed key has a record");
                out.push((key, payload));
            }
            out
        };
        let tmp_path = self.dir.join("results.log.tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(LOG_MAGIC)?;
        tmp.write_all(&FORMAT_VERSION.to_le_bytes())?;
        tmp.write_all(&[0u8; 6])?;
        let mut offset = HEADER_LEN;
        let mut index = BTreeMap::new();
        for (key, payload) in &live {
            let len = payload.len() as u32;
            let checksum = fnv64(payload);
            tmp.write_all(&key.identity.to_le_bytes())?;
            tmp.write_all(&key.variant.to_le_bytes())?;
            tmp.write_all(&len.to_le_bytes())?;
            tmp.write_all(&checksum.to_le_bytes())?;
            tmp.write_all(payload)?;
            index.insert(
                *key,
                IndexEntry {
                    offset,
                    len,
                    checksum,
                },
            );
            offset += RECORD_HEADER_LEN + u64::from(len);
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, self.dir.join(LOG_FILE))?;
        self.log = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(LOG_FILE))?;
        self.log_len = offset;
        self.total_records = index.len() as u64;
        self.index = index;
        self.dirty = true;
        self.flush()?;
        Ok(GcReport {
            kept: self.index.len() as u64,
            dropped,
            bytes_before,
            bytes_after: self.log_len,
        })
    }

    /// Full integrity pass: rescans the whole log structurally, verifies every record's
    /// payload checksum (superseded records included), and cross-checks that the scan's
    /// live set matches the loaded index exactly.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        let mut offset = HEADER_LEN;
        let mut live: BTreeMap<RecordKey, IndexEntry> = BTreeMap::new();
        let mut records = 0u64;
        let mut payload_bytes = 0u64;
        while offset < self.log_len {
            let (key, entry) = self.read_record_header(offset)?;
            self.log
                .seek(SeekFrom::Start(entry.offset + RECORD_HEADER_LEN))?;
            let mut payload = vec![0u8; entry.len as usize];
            self.log.read_exact(&mut payload).map_err(|_| {
                StoreError::corrupt("log", offset, "record payload truncated".to_string())
            })?;
            if fnv64(&payload) != entry.checksum {
                return Err(StoreError::corrupt(
                    "log",
                    offset,
                    "payload checksum mismatch".to_string(),
                ));
            }
            records += 1;
            payload_bytes += u64::from(entry.len);
            live.insert(key, entry);
            offset += RECORD_HEADER_LEN + u64::from(entry.len);
        }
        if live != self.index {
            return Err(StoreError::corrupt(
                "index",
                0,
                format!(
                    "index disagrees with the log ({} live entries indexed, {} scanned)",
                    self.index.len(),
                    live.len()
                ),
            ));
        }
        if records != self.total_records {
            return Err(StoreError::corrupt(
                "index",
                0,
                format!(
                    "index counts {} total records, the log holds {records}",
                    self.total_records
                ),
            ));
        }
        Ok(VerifyReport {
            records_scanned: records,
            payload_bytes,
            live_records: live.len() as u64,
        })
    }

    /// Reads and validates the 28-byte record header at `offset`, without touching the
    /// payload.
    fn read_record_header(&mut self, offset: u64) -> Result<(RecordKey, IndexEntry), StoreError> {
        if offset + RECORD_HEADER_LEN > self.log_len {
            return Err(StoreError::corrupt(
                "log",
                offset,
                format!(
                    "truncated record header ({} bytes left, {RECORD_HEADER_LEN} needed)",
                    self.log_len - offset
                ),
            ));
        }
        self.log.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; RECORD_HEADER_LEN as usize];
        self.log.read_exact(&mut header)?;
        let identity = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let variant = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[20..28].try_into().unwrap());
        if offset + RECORD_HEADER_LEN + u64::from(len) > self.log_len {
            return Err(StoreError::corrupt(
                "log",
                offset,
                format!(
                    "truncated record payload (header claims {len} bytes, log ends after {})",
                    self.log_len - offset - RECORD_HEADER_LEN
                ),
            ));
        }
        Ok((
            RecordKey { identity, variant },
            IndexEntry {
                offset,
                len,
                checksum,
            },
        ))
    }

    /// Walks the log from `from` to its end, (re)building index entries for every record
    /// found. Payload checksums are *not* verified here (that is [`ResultStore::get`]'s
    /// and [`ResultStore::verify`]'s job); structure is.
    fn scan_log(&mut self, from: u64) -> Result<(), StoreError> {
        let mut offset = from;
        while offset < self.log_len {
            let (key, entry) = self.read_record_header(offset)?;
            self.index.insert(key, entry);
            self.total_records += 1;
            offset += RECORD_HEADER_LEN + u64::from(entry.len);
        }
        Ok(())
    }

    /// Loads `index.bin` if present, returning the log length it covers (the offset any
    /// tail rescan starts from). `Ok(None)` means no index file (full rescan). A
    /// structurally bad index — bad magic/version/checksum, or one covering more log
    /// than exists — is a loud error, never a silent rebuild: it is indistinguishable
    /// from store corruption, and recomputing over it would mask real damage.
    fn load_index(&mut self) -> Result<Option<u64>, StoreError> {
        let path = self.dir.join(INDEX_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        const FIXED: usize = HEADER_LEN as usize + 8 + 8 + 4; // header + covered + total + count
        if bytes.len() < FIXED + 8 {
            return Err(StoreError::corrupt(
                "index",
                bytes.len() as u64,
                "file shorter than its fixed header",
            ));
        }
        if &bytes[0..8] != INDEX_MAGIC {
            return Err(StoreError::BadMagic("index"));
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                file: "index",
                version,
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let stored_checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv64(body) != stored_checksum {
            return Err(StoreError::corrupt(
                "index",
                bytes.len() as u64 - 8,
                "index checksum mismatch",
            ));
        }
        let covered = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let total = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        if covered > self.log_len {
            return Err(StoreError::corrupt(
                "log",
                self.log_len,
                format!(
                    "log is shorter ({} bytes) than the {covered} bytes the index covers \
                     — the log was truncated",
                    self.log_len
                ),
            ));
        }
        if body.len() != FIXED + count * INDEX_ENTRY_LEN {
            return Err(StoreError::corrupt(
                "index",
                FIXED as u64,
                format!(
                    "entry area is {} bytes, {count} entries need {}",
                    body.len() - FIXED,
                    count * INDEX_ENTRY_LEN
                ),
            ));
        }
        for i in 0..count {
            let at = FIXED + i * INDEX_ENTRY_LEN;
            let e = &bytes[at..at + INDEX_ENTRY_LEN];
            let key = RecordKey {
                identity: u64::from_le_bytes(e[0..8].try_into().unwrap()),
                variant: u64::from_le_bytes(e[8..16].try_into().unwrap()),
            };
            let entry = IndexEntry {
                offset: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                len: u32::from_le_bytes(e[24..28].try_into().unwrap()),
                checksum: u64::from_le_bytes(e[28..36].try_into().unwrap()),
            };
            if entry.offset + RECORD_HEADER_LEN + u64::from(entry.len) > covered {
                return Err(StoreError::corrupt(
                    "index",
                    at as u64,
                    format!(
                        "entry {i} points past the covered log (offset {}, {} bytes)",
                        entry.offset, entry.len
                    ),
                ));
            }
            self.index.insert(key, entry);
        }
        self.total_records = total;
        Ok(Some(covered))
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        if let Err(e) = self.flush() {
            eprintln!(
                "warning: result store {} index not flushed: {e} (the next open rescans \
                 the log)",
                self.dir.display()
            );
        }
        // The lock guard (if any) removes the lock file after the index is safely down.
        self.lock = None;
    }
}

/// Validates a 16-byte store-file header.
fn check_header(
    file: &mut File,
    file_len: u64,
    magic: &[u8; 8],
    name: &'static str,
) -> Result<(), StoreError> {
    if file_len < HEADER_LEN {
        return Err(StoreError::corrupt(
            name,
            file_len,
            format!("file shorter than the {HEADER_LEN}-byte header"),
        ));
    }
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut header)?;
    if &header[0..8] != magic {
        return Err(StoreError::BadMagic(name));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: name,
            version,
        });
    }
    Ok(())
}

/// Takes the single-writer lock in `dir`, reclaiming it only when the recorded owner is
/// provably dead (its pid no longer exists under `/proc`; on systems without `/proc`, an
/// existing lock is always honoured).
fn acquire_lock(dir: &Path) -> Result<LockGuard, StoreError> {
    let path = dir.join(LOCK_FILE);
    for _ in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                f.write_all(std::process::id().to_string().as_bytes())?;
                return Ok(LockGuard { path });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let pid = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match pid {
                    Some(pid) if !pid_alive(pid) => {
                        // Stale lock from a killed writer: reclaim and retry once.
                        let _ = fs::remove_file(&path);
                    }
                    _ => return Err(StoreError::Locked { path, pid }),
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(StoreError::Locked { path, pid: None })
}

/// Best-effort liveness check for a pid. Conservative: when `/proc` is unavailable the
/// answer is "alive", so locks are never stolen from a process we cannot observe.
fn pid_alive(pid: u32) -> bool {
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        proc_dir.join(pid.to_string()).is_dir()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "athena-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(i: u64) -> RecordKey {
        RecordKey {
            identity: i,
            variant: 7,
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"one").unwrap();
            s.put(key(2), b"two").unwrap();
        }
        let mut s = ResultStore::open(&dir, true).unwrap();
        assert_eq!(s.get(key(1)).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(s.get(key(2)).unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(s.get(key(3)).unwrap(), None);
        assert_eq!(s.stats().live_records, 2);
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reput_supersedes_and_gc_compacts() {
        let dir = tmp_dir("gc");
        let mut s = ResultStore::open(&dir, false).unwrap();
        s.put(key(1), b"old-payload").unwrap();
        s.put(key(1), b"new").unwrap();
        assert_eq!(s.get(key(1)).unwrap().as_deref(), Some(&b"new"[..]));
        assert_eq!(s.stats().total_records, 2);
        assert_eq!(s.stats().superseded(), 1);
        let report = s.gc().unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.dropped, 1);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(s.get(key(1)).unwrap().as_deref(), Some(&b"new"[..]));
        s.verify().unwrap();
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_is_rebuilt_by_scanning() {
        let dir = tmp_dir("rebuild");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"payload").unwrap();
        }
        fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let mut s = ResultStore::open(&dir, false).unwrap();
        assert_eq!(s.get(key(1)).unwrap().as_deref(), Some(&b"payload"[..]));
        s.verify().unwrap();
        drop(s);
        // The rebuilt index was rewritten on drop.
        assert!(dir.join(INDEX_FILE).is_file());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_index_is_extended_by_a_tail_scan() {
        let dir = tmp_dir("tail");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"first").unwrap();
            s.flush().unwrap();
            // Simulate a kill after a later append: the log grows, the index does not.
            s.put(key(2), b"second").unwrap();
            s.dirty = false; // suppress the index rewrite on drop
        }
        let mut s = ResultStore::open(&dir, true).unwrap();
        assert_eq!(s.get(key(1)).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(s.get(key(2)).unwrap().as_deref(), Some(&b"second"[..]));
        assert_eq!(s.stats().total_records, 2);
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_log_fails_loudly() {
        let dir = tmp_dir("trunc");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"a-payload-of-some-length").unwrap();
        }
        let log = dir.join(LOG_FILE);
        let bytes = fs::read(&log).unwrap();
        fs::write(&log, &bytes[..bytes.len() - 5]).unwrap();
        let err = ResultStore::open(&dir, true).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { file: "log", .. }),
            "got: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_get() {
        let dir = tmp_dir("flip");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"pristine-payload").unwrap();
        }
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit
        fs::write(&log, &bytes).unwrap();
        let mut s = ResultStore::open(&dir, true).unwrap();
        let err = s.get(key(1)).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { file: "log", .. }),
            "got: {err}"
        );
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_index_byte_fails_loudly() {
        let dir = tmp_dir("flipindex");
        {
            let mut s = ResultStore::open(&dir, false).unwrap();
            s.put(key(1), b"payload").unwrap();
        }
        let index = dir.join(INDEX_FILE);
        let mut bytes = fs::read(&index).unwrap();
        bytes[20] ^= 0x01; // inside the covered-length field
        fs::write(&index, &bytes).unwrap();
        let err = ResultStore::open(&dir, true).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { file: "index", .. }),
            "got: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        let dir = tmp_dir("version");
        drop(ResultStore::open(&dir, false).unwrap());
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).unwrap();
        bytes[8] = 0x63; // version 99
        fs::write(&log, &bytes).unwrap();
        let err = ResultStore::open(&dir, true).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::UnsupportedVersion {
                    file: "log",
                    version: 99
                }
            ),
            "got: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_writer_is_locked_out_but_readers_are_not() {
        let dir = tmp_dir("lock");
        let first = ResultStore::open(&dir, false).unwrap();
        let err = ResultStore::open(&dir, false).unwrap_err();
        assert!(matches!(err, StoreError::Locked { .. }), "got: {err}");
        // Read-only opens coexist with the writer.
        ResultStore::open(&dir, true).unwrap();
        drop(first);
        // The lock is released with the writer.
        drop(ResultStore::open(&dir, false).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_pid_is_reclaimed() {
        let dir = tmp_dir("stalelock");
        fs::create_dir_all(&dir).unwrap();
        // Pid 4294967295 can't be a live process.
        fs::write(dir.join(LOCK_FILE), u32::MAX.to_string()).unwrap();
        drop(ResultStore::open(&dir, false).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_only_refuses_writes_and_missing_stores() {
        let dir = tmp_dir("ro");
        assert!(matches!(
            ResultStore::open(&dir, true).unwrap_err(),
            StoreError::Missing(_)
        ));
        drop(ResultStore::open(&dir, false).unwrap());
        let mut s = ResultStore::open(&dir, true).unwrap();
        assert!(matches!(
            s.put(key(1), b"x").unwrap_err(),
            StoreError::ReadOnlyStore
        ));
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            StorePolicy::Off,
            StorePolicy::ReadWrite,
            StorePolicy::ReadOnly,
            StorePolicy::Refresh,
        ] {
            assert_eq!(StorePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(StorePolicy::from_name("bogus"), None);
        assert!(StorePolicy::ReadWrite.reads() && StorePolicy::ReadWrite.writes());
        assert!(StorePolicy::ReadOnly.reads() && !StorePolicy::ReadOnly.writes());
        assert!(!StorePolicy::Refresh.reads() && StorePolicy::Refresh.writes());
        assert!(!StorePolicy::Off.reads() && !StorePolicy::Off.writes());
    }
}
