//! The error type shared by everything in this crate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong while opening, reading or writing a result store.
///
/// The discipline mirrors `athena-trace-io`: a store that cannot be read exactly is
/// rejected with an error saying where and why; nothing is silently skipped, repaired or
/// recomputed over.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (disk full, permission denied, …).
    Io(io::Error),
    /// The directory holds no store (no `results.log`) and the open was read-only, so
    /// nothing may be created.
    Missing(PathBuf),
    /// A store file does not start with its magic bytes. The payload names the file
    /// (`"log"` or `"index"`).
    BadMagic(&'static str),
    /// A store file carries a format version this build does not understand.
    UnsupportedVersion {
        /// Which file (`"log"` or `"index"`).
        file: &'static str,
        /// The version found on disk.
        version: u16,
    },
    /// A store file is structurally invalid: a truncated record, a payload or index
    /// checksum mismatch, an index that claims more log than exists. The payload
    /// pinpoints the file, the byte offset and the reason.
    Corrupt {
        /// Which file (`"log"` or `"index"`).
        file: &'static str,
        /// Byte offset of the problem within that file.
        at: u64,
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// Another live process holds the single-writer lock.
    Locked {
        /// Path of the lock file.
        path: PathBuf,
        /// The pid recorded in the lock file, when it could be parsed.
        pid: Option<u32>,
    },
    /// A write was attempted on a store opened read-only.
    ReadOnlyStore,
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`] in `file` at byte offset `at`.
    pub(crate) fn corrupt(file: &'static str, at: u64, reason: impl Into<String>) -> Self {
        StoreError::Corrupt {
            file,
            at,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Missing(dir) => {
                write!(f, "no result store at {} (read-only open)", dir.display())
            }
            StoreError::BadMagic(file) => {
                write!(f, "not a result-store {file} (bad magic)")
            }
            StoreError::UnsupportedVersion { file, version } => {
                write!(f, "unsupported store {file} format version {version}")
            }
            StoreError::Corrupt { file, at, reason } => {
                write!(f, "corrupt store {file} at byte {at}: {reason}")
            }
            StoreError::Locked { path, pid } => match pid {
                Some(pid) => write!(
                    f,
                    "store is locked by live pid {pid} ({}); a store accepts one writer at \
                     a time",
                    path.display()
                ),
                None => write!(
                    f,
                    "store is locked ({}); a store accepts one writer at a time",
                    path.display()
                ),
            },
            StoreError::ReadOnlyStore => write!(f, "store was opened read-only"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
