//! # athena-workloads
//!
//! The synthetic workload suite that stands in for the paper's 100 memory-intensive traces
//! (SPEC CPU 2006/2017, PARSEC, Ligra and CVP), plus the 20 held-out tuning workloads, the
//! multi-core mixes and the "unseen" Google-like traces of the paper's Appendix B.3.
//!
//! Each [`WorkloadSpec`] is a seeded generator, so traces are cheap to produce, fully
//! deterministic, and effectively infinite (multi-core runs replay them as needed). The
//! access-pattern classes are chosen to reproduce the paper's workload dichotomy:
//!
//! * **prefetcher-friendly** patterns (streams, strides, spatial footprints, stencils) where
//!   an aggressive prefetcher hides most of the memory latency;
//! * **prefetcher-adverse** patterns (pointer chasing, hash probing, deceptive short bursts)
//!   where prefetches are mostly wasted bandwidth and pollution, yet whether a load goes
//!   off-chip is highly predictable — exactly the regime where an off-chip predictor shines.
//!
//! ```
//! use athena_workloads::{all_workloads, Suite};
//! use athena_sim::TraceSource;
//!
//! let specs = all_workloads();
//! assert_eq!(specs.len(), 100);
//! let mut trace = specs[0].trace();
//! assert!(trace.next_record().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod mixes;
mod suite;

pub use generator::{Pattern, TraceGenerator};
pub use mixes::{mixes, MixCategory, WorkloadMix};
pub use suite::{
    all_workloads, find_workload, google_like_workloads, suite_workloads, tuning_workloads, Suite,
    WorkloadSpec,
};

// The experiment engine (`athena-engine`) moves specs and mixes across worker threads as
// plain job data; keep them `Send + Sync + Clone` — checked at compile time, so a stray
// `Rc`/`RefCell` added to a spec fails the build here rather than deep inside the engine's
// generic bounds.
const fn assert_engine_shippable<T: Send + Sync + Clone>() {}
const _: () = {
    assert_engine_shippable::<WorkloadSpec>();
    assert_engine_shippable::<WorkloadMix>();
    assert_engine_shippable::<Suite>();
    assert_engine_shippable::<Pattern>();
    assert_engine_shippable::<MixCategory>();
};
