//! Parameterised trace generators: the access-pattern classes used to synthesise the
//! workload suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use athena_sim::TraceRecord;

const LINE: u64 = 64;

/// The access-pattern classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential streaming over a large array (prefetcher-friendly; e.g. `libquantum`,
    /// `lbm`, streaming PARSEC kernels).
    Stream {
        /// Footprint of the streamed array in bytes.
        footprint: u64,
        /// Loads per iteration of the inner loop (controls memory intensity).
        loads_per_iter: u32,
    },
    /// Constant-stride walks (prefetcher-friendly; e.g. dense linear algebra columns).
    Strided {
        /// Footprint in bytes.
        footprint: u64,
        /// Stride between consecutive accesses in bytes.
        stride: u64,
    },
    /// Repeated visits to small spatial regions with a fixed intra-region footprint
    /// (SMS-friendly; e.g. `omnetpp`-style object field accesses, facesim).
    Spatial {
        /// Number of distinct 2 KiB regions.
        regions: u64,
        /// Which of the 32 lines of a region are touched (bitmap).
        footprint_mask: u32,
    },
    /// Dependent pointer chasing over a large pool of nodes (prefetcher-adverse,
    /// OCP-friendly; e.g. `mcf`, `xalancbmk`, graph traversals).
    PointerChase {
        /// Number of nodes in the pool (64 bytes each).
        nodes: u64,
        /// Probability (percent) that a short sequential burst follows a hop. These bursts
        /// bait the prefetchers into issuing mostly-useless requests, reproducing the
        /// bandwidth-waste behaviour of irregular SPEC workloads.
        burst_pct: u32,
    },
    /// Random probes into a large table with occasional second accesses to the same page
    /// (prefetcher-adverse; hash joins, `canneal`).
    HashProbe {
        /// Table footprint in bytes.
        footprint: u64,
        /// Probability (percent) of a short same-page follow-up access after a probe.
        locality_pct: u32,
    },
    /// Ligra-style frontier processing: a sequential pass over the frontier interleaved with
    /// random, dependent neighbour lookups.
    GraphFrontier {
        /// Number of vertices (8-byte entries) in the graph.
        vertices: u64,
        /// Average neighbours visited per frontier element.
        neighbours: u32,
    },
    /// Phases alternating between a streaming phase and a pointer-chasing phase, to exercise
    /// phase-adaptive coordination.
    MixedPhase {
        /// Instructions per phase.
        phase_len: u64,
        /// Streaming footprint in bytes.
        stream_footprint: u64,
        /// Pointer-chase pool size in nodes.
        chase_nodes: u64,
    },
    /// Mostly cache-resident compute with a moderate miss rate and branch-heavy control flow
    /// (CVP-style integer codes).
    ComputeBranchy {
        /// Hot working-set size in bytes (mostly cache resident).
        hot_bytes: u64,
        /// Cold footprint in bytes touched occasionally.
        cold_bytes: u64,
        /// Percent of loads that touch the cold footprint.
        cold_pct: u32,
        /// Percent of branches that are data-dependent (hard to predict).
        hard_branch_pct: u32,
    },
}

/// A deterministic, infinite trace generator for one workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    pattern: Pattern,
    rng: StdRng,
    /// Base virtual address of this workload's data segment.
    base: u64,
    position: u64,
    instr_count: u64,
    /// Per-pattern scratch state.
    current_node: u64,
    burst_remaining: u32,
    pending: Vec<TraceRecord>,
}

impl TraceGenerator {
    /// Creates a generator for `pattern` seeded with `seed`.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        Self {
            pattern,
            rng: StdRng::seed_from_u64(seed ^ 0xA7E4_A001),
            base: 0x1000_0000 + (seed % 64) * 0x1000_0000,
            position: 0,
            instr_count: 0,
            current_node: seed % 97,
            burst_remaining: 0,
            pending: Vec::new(),
        }
    }

    fn pc(&self, slot: u64) -> u64 {
        0x40_0000 + slot * 4
    }

    fn push_branch(&mut self, pc_slot: u64, taken_pct: u32, random: bool) {
        let taken = if random {
            self.rng.gen_range(0..100) < taken_pct
        } else {
            // A loop-style branch: taken except once every ~32 iterations.
            !self.instr_count.is_multiple_of(32)
        };
        self.pending
            .push(TraceRecord::branch(self.pc(pc_slot), taken));
    }

    /// Emits `n` filler instructions: ALU work, cache-resident "hot" loads and an
    /// occasional well-predicted branch. Filler dilutes the miss rate to realistic
    /// memory intensities (the paper's workloads average a few to a few tens of LLC misses
    /// per kilo-instruction, not one miss per instruction).
    /// `allow_loads` controls whether the filler may contain (cache-resident) loads. It is
    /// set to `false` between the links of a dependence chain, because a dependent load
    /// waits on the *most recent* load and an interleaved filler load would break the chain.
    fn filler(&mut self, n: u64, allow_loads: bool) {
        for k in 0..n {
            match k % 10 {
                2 | 7 if allow_loads => {
                    // Hot loads hit a small per-workload buffer that stays cache resident.
                    let hot = self.base + 0x0080_0000 + (self.rng.gen_range(0..256u64)) * LINE;
                    self.pending
                        .push(TraceRecord::load(self.pc(20 + k % 4), hot, false));
                }
                9 => self.push_branch(90 + k % 2, 95, false),
                _ => self.pending.push(TraceRecord::alu(self.pc(48 + k % 8))),
            }
        }
    }

    /// Generates the next group of instructions for the current pattern into `pending`.
    fn refill(&mut self) {
        match self.pattern {
            Pattern::Stream {
                footprint,
                loads_per_iter,
            } => {
                // Walk 4-byte elements sequentially: roughly one load in sixteen crosses
                // into a new cache line, and half of the crossing loads carry a dependence
                // on the previous load (dependence-limited MLP, as in real streaming code
                // whose index or accumulator chains bound overlap).
                for i in 0..loads_per_iter as u64 {
                    let addr = self.base + (self.position * 4) % footprint;
                    let crosses = self.position.is_multiple_of(16);
                    self.position += 1;
                    let dep = crosses && self.rng.gen_range(0..100) < 35;
                    self.pending.push(TraceRecord::load(self.pc(i), addr, dep));
                    self.pending.push(TraceRecord::alu(self.pc(32 + i)));
                    self.pending.push(TraceRecord::alu(self.pc(36 + i)));
                }
                if self.position.is_multiple_of(64) {
                    let addr = self.base + footprint + (self.position * 4) % (footprint / 2);
                    self.pending.push(TraceRecord::store(self.pc(70), addr));
                }
                self.push_branch(80, 95, false);
            }
            Pattern::Strided { footprint, stride } => {
                // One strided (line-missing) access followed by enough local work that the
                // miss rate lands in the tens-of-MPKI range.
                let addr = self.base + (self.position * stride) % footprint;
                self.position += 1;
                let dep = self.rng.gen_range(0..100) < 85;
                self.pending.push(TraceRecord::load(self.pc(1), addr, dep));
                self.filler(70, false);
                self.push_branch(81, 95, false);
            }
            Pattern::Spatial {
                regions,
                footprint_mask,
            } => {
                // Visit a region and touch its footprint lines, separated by local work.
                let region = self.rng.gen_range(0..regions);
                let region_base = self.base + region * 2048;
                let mut slot = 0;
                for bit in 0..32u64 {
                    if footprint_mask & (1 << bit) != 0 {
                        self.pending.push(TraceRecord::load(
                            self.pc(slot % 8),
                            region_base + bit * LINE,
                            false,
                        ));
                        slot += 1;
                        self.filler(60, true);
                    }
                }
                self.push_branch(82, 90, false);
            }
            Pattern::PointerChase { nodes, burst_pct } => {
                if self.burst_remaining > 0 {
                    // Sequential burst after a hop: bait for the prefetchers.
                    self.burst_remaining -= 1;
                    self.current_node = (self.current_node + 1) % nodes;
                    let addr = self.base + self.current_node * LINE;
                    self.pending
                        .push(TraceRecord::load(self.pc(2), addr, false));
                    self.filler(8, false);
                } else {
                    // A dependent hop to a pseudo-random node.
                    self.current_node = (self
                        .current_node
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407))
                        % nodes;
                    let addr = self.base + self.current_node * LINE;
                    self.pending.push(TraceRecord::load(self.pc(3), addr, true));
                    self.filler(45, false);
                    if self.rng.gen_range(0..100) < burst_pct {
                        self.burst_remaining = self.rng.gen_range(2..5);
                    }
                }
                self.push_branch(83, 60, true);
            }
            Pattern::HashProbe {
                footprint,
                locality_pct,
            } => {
                let lines = footprint / LINE;
                let probe_line = self.rng.gen_range(0..lines);
                let addr = self.base + probe_line * LINE;
                self.pending
                    .push(TraceRecord::load(self.pc(4), addr, false));
                if self.rng.gen_range(0..100) < locality_pct {
                    // Same-page follow-up (e.g. reading the rest of the bucket), dependent
                    // on the probe result.
                    let follow = (addr & !4095) + self.rng.gen_range(0..64) * LINE;
                    self.pending
                        .push(TraceRecord::load(self.pc(5), follow, true));
                }
                if self.rng.gen_range(0..100) < 20 {
                    self.pending.push(TraceRecord::store(self.pc(71), addr + 8));
                }
                self.filler(45, true);
                self.push_branch(84, 50, true);
            }
            Pattern::GraphFrontier {
                vertices,
                neighbours,
            } => {
                // Sequential frontier element.
                let frontier_addr = self.base + (self.position * 8) % (vertices * 8);
                self.position += 1;
                self.pending
                    .push(TraceRecord::load(self.pc(6), frontier_addr, false));
                // Random dependent neighbour lookups, back to back so the dependence chain
                // through the edge list is preserved.
                for n in 0..neighbours as u64 {
                    let v = self.rng.gen_range(0..vertices);
                    let addr = self.base + 0x4000_0000 + v * LINE;
                    self.pending
                        .push(TraceRecord::load(self.pc(7 + n % 4), addr, true));
                    self.pending.push(TraceRecord::alu(self.pc(41)));
                }
                self.filler(10 + 34 * u64::from(neighbours), true);
                if self.rng.gen_range(0..100) < 30 {
                    let v = self.rng.gen_range(0..vertices);
                    self.pending.push(TraceRecord::store(
                        self.pc(72),
                        self.base + 0x8000_0000 + v * 8,
                    ));
                }
                self.push_branch(85, 70, true);
            }
            Pattern::MixedPhase {
                phase_len,
                stream_footprint,
                chase_nodes,
            } => {
                let in_stream_phase = (self.instr_count / phase_len).is_multiple_of(2);
                if in_stream_phase {
                    let addr = self.base + (self.position * 4) % stream_footprint;
                    let crosses = self.position.is_multiple_of(16);
                    self.position += 1;
                    let dep = crosses && self.rng.gen_range(0..100) < 35;
                    self.pending.push(TraceRecord::load(self.pc(8), addr, dep));
                    self.pending.push(TraceRecord::alu(self.pc(42)));
                    self.pending.push(TraceRecord::alu(self.pc(47)));
                    self.push_branch(86, 95, false);
                } else {
                    self.current_node = (self
                        .current_node
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493))
                        % chase_nodes;
                    let addr = self.base + 0x2000_0000 + self.current_node * LINE;
                    self.pending.push(TraceRecord::load(self.pc(9), addr, true));
                    self.filler(40, false);
                    self.push_branch(87, 55, true);
                }
            }
            Pattern::ComputeBranchy {
                hot_bytes,
                cold_bytes,
                cold_pct,
                hard_branch_pct,
            } => {
                let cold = self.rng.gen_range(0..100) < cold_pct;
                // Hot and cold accesses come from different code paths (different PCs), so a
                // PC-indexed off-chip predictor can separate them — as it can in real codes.
                let (addr, pc_slot) = if cold {
                    (
                        self.base + 0x4000_0000 + self.rng.gen_range(0..cold_bytes / LINE) * LINE,
                        11,
                    )
                } else {
                    (
                        self.base + self.rng.gen_range(0..hot_bytes / LINE) * LINE,
                        10,
                    )
                };
                self.pending
                    .push(TraceRecord::load(self.pc(pc_slot), addr, false));
                self.filler(30, true);
                let hard = self.rng.gen_range(0..100) < hard_branch_pct;
                if hard {
                    self.push_branch(88, 50, true);
                } else {
                    self.push_branch(89, 90, false);
                }
            }
        }
        // Oldest first.
        self.pending.reverse();
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.instr_count += 1;
        self.pending.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pattern: Pattern, n: usize) -> (usize, usize, usize, usize) {
        let generator = TraceGenerator::new(pattern, 42);
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        let mut dependent = 0;
        for rec in generator.take(n) {
            if rec.is_load() {
                loads += 1;
                if matches!(
                    rec.kind,
                    athena_sim::InstrKind::Load {
                        dep_on_recent_load: true,
                        ..
                    }
                ) {
                    dependent += 1;
                }
            } else if rec.is_store() {
                stores += 1;
            } else if rec.is_branch() {
                branches += 1;
            }
        }
        (loads, stores, branches, dependent)
    }

    #[test]
    fn generators_are_deterministic() {
        let p = Pattern::HashProbe {
            footprint: 1 << 24,
            locality_pct: 30,
        };
        let a: Vec<TraceRecord> = TraceGenerator::new(p, 7).take(5000).collect();
        let b: Vec<TraceRecord> = TraceGenerator::new(p, 7).take(5000).collect();
        assert_eq!(a, b);
        let c: Vec<TraceRecord> = TraceGenerator::new(p, 8).take(5000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn every_pattern_produces_a_sensible_mix() {
        let patterns = [
            Pattern::Stream {
                footprint: 1 << 26,
                loads_per_iter: 4,
            },
            Pattern::Strided {
                footprint: 1 << 26,
                stride: 256,
            },
            Pattern::Spatial {
                regions: 4096,
                footprint_mask: 0x0f0f_0f0f,
            },
            Pattern::PointerChase {
                nodes: 1 << 20,
                burst_pct: 25,
            },
            Pattern::HashProbe {
                footprint: 1 << 26,
                locality_pct: 30,
            },
            Pattern::GraphFrontier {
                vertices: 1 << 20,
                neighbours: 2,
            },
            Pattern::MixedPhase {
                phase_len: 10_000,
                stream_footprint: 1 << 26,
                chase_nodes: 1 << 20,
            },
            Pattern::ComputeBranchy {
                hot_bytes: 1 << 15,
                cold_bytes: 1 << 26,
                cold_pct: 20,
                hard_branch_pct: 40,
            },
        ];
        for p in patterns {
            let (loads, _stores, branches, _dep) = stats(p, 20_000);
            assert!(loads > 200, "{p:?}: too few loads ({loads})");
            assert!(branches > 400, "{p:?}: too few branches ({branches})");
        }
    }

    #[test]
    fn pointer_chase_is_far_more_dependent_than_streaming() {
        let (_, _, _, dep_chase) = stats(
            Pattern::PointerChase {
                nodes: 1 << 20,
                burst_pct: 20,
            },
            20_000,
        );
        let (_, _, _, dep_stream) = stats(
            Pattern::Stream {
                footprint: 1 << 26,
                loads_per_iter: 4,
            },
            20_000,
        );
        assert!(dep_chase > 300, "dep_chase={dep_chase}");
        assert!(
            dep_stream * 2 < dep_chase,
            "streaming should have far fewer dependent loads: stream={dep_stream} chase={dep_chase}"
        );
    }

    #[test]
    fn stream_addresses_walk_forward_through_lines() {
        let generator = TraceGenerator::new(
            Pattern::Stream {
                footprint: 1 << 26,
                loads_per_iter: 1,
            },
            3,
        );
        // Only look at the streamed loads (the stream PC slots are below 32); filler hot
        // loads revisit a small buffer and are not part of the stream.
        let addrs: Vec<u64> = generator
            .take(5000)
            .filter_map(|r| {
                if r.is_load() && r.pc < 0x40_0000 + 32 * 4 {
                    r.addr()
                } else {
                    None
                }
            })
            .collect();
        assert!(addrs.len() > 500);
        for w in addrs.windows(2) {
            let delta = w[1] as i64 - w[0] as i64;
            assert!((0..=64).contains(&delta), "unexpected stream delta {delta}");
        }
    }

    #[test]
    fn mixed_phase_alternates_behaviour() {
        let generator = TraceGenerator::new(
            Pattern::MixedPhase {
                phase_len: 5_000,
                stream_footprint: 1 << 26,
                chase_nodes: 1 << 20,
            },
            11,
        );
        let records: Vec<TraceRecord> = generator.take(20_000).collect();
        let count_dep = |slice: &[TraceRecord]| {
            slice
                .iter()
                .filter(|r| {
                    matches!(
                        r.kind,
                        athena_sim::InstrKind::Load {
                            dep_on_recent_load: true,
                            ..
                        }
                    )
                })
                .count()
        };
        let first_phase_dep = count_dep(&records[..4_000]);
        let second_phase_dep = count_dep(&records[6_000..9_000]);
        assert!(
            second_phase_dep > first_phase_dep * 2,
            "the chase phase should be far more dependent: stream={first_phase_dep} chase={second_phase_dep}"
        );
        assert!(
            second_phase_dep > 50,
            "second phase should be pointer chasing"
        );
    }
}
