//! The workload suite: 100 evaluation workloads across four suites, 20 held-out tuning
//! workloads, and the "unseen" Google-like traces of Appendix B.3.

use crate::generator::{Pattern, TraceGenerator};

/// The benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006 / 2017 (49 traces, reported together as "SPEC" in the paper).
    Spec,
    /// PARSEC (13 traces).
    Parsec,
    /// Ligra graph workloads (13 traces).
    Ligra,
    /// CVP-1 (value-prediction championship) commercial traces (25 traces).
    Cvp,
    /// DPC-4 Google warehouse-scale traces, used only for the unseen-workload study.
    GoogleLike,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec => write!(f, "SPEC"),
            Suite::Parsec => write!(f, "PARSEC"),
            Suite::Ligra => write!(f, "Ligra"),
            Suite::Cvp => write!(f, "CVP"),
            Suite::GoogleLike => write!(f, "Google"),
        }
    }
}

/// One workload: a named, seeded trace generator with its suite label.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Trace name (mirrors the style of the paper's trace names).
    pub name: String,
    /// The suite the workload belongs to.
    pub suite: Suite,
    /// The access-pattern class and parameters of the generator.
    pub pattern: Pattern,
    /// Seed of the generator.
    pub seed: u64,
    /// Whether the pattern was *designed* to be prefetcher-friendly. This is a construction
    /// hint only; experiments classify workloads empirically from measured speedups, like
    /// the paper does.
    pub designed_friendly: bool,
}

impl WorkloadSpec {
    /// Creates the (infinite, deterministic) trace generator for this workload.
    pub fn trace(&self) -> TraceGenerator {
        TraceGenerator::new(self.pattern, self.seed)
    }
}

fn spec(name: &str, pattern: Pattern, seed: u64, friendly: bool, suite: Suite) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite,
        pattern,
        seed,
        designed_friendly: friendly,
    }
}

/// The 100 evaluation workloads (49 SPEC, 13 PARSEC, 13 Ligra, 25 CVP).
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut w = Vec::with_capacity(100);

    // --- SPEC (49): 28 prefetcher-friendly, 21 prefetcher-adverse ------------------------
    let spec_friendly_names = [
        "410.bwaves-1963B",
        "433.milc-127B",
        "434.zeusmp-10B",
        "436.cactusADM-1804B",
        "437.leslie3d-134B",
        "459.GemsFDTD-765B",
        "462.libquantum-714B",
        "470.lbm-1274B",
        "481.wrf-1170B",
        "482.sphinx3-1100B",
        "603.bwaves_s-2609B",
        "607.cactuBSSN_s-2421B",
        "619.lbm_s-2676B",
        "621.wrf_s-6673B",
        "627.cam4_s-490B",
        "628.pop2_s-17B",
        "638.imagick_s-10316B",
        "644.nab_s-5853B",
        "649.fotonik3d_s-1176B",
        "654.roms_s-842B",
        "459.GemsFDTD-1211B",
        "470.lbm-1216B",
        "433.milc-337B",
        "437.leslie3d-271B",
        "410.bwaves-2097B",
        "603.bwaves_s-891B",
        "619.lbm_s-4268B",
        "649.fotonik3d_s-7084B",
    ];
    for (i, name) in spec_friendly_names.iter().enumerate() {
        let pattern = match i % 3 {
            0 => Pattern::Stream {
                footprint: 32 << 20,
                loads_per_iter: 3 + (i as u32 % 3),
            },
            1 => Pattern::Strided {
                footprint: 48 << 20,
                stride: 128 + 64 * (i as u64 % 4),
            },
            _ => Pattern::Spatial {
                regions: 32_768 + 4096 * (i as u64 % 4),
                footprint_mask: 0x3333_3333u32.rotate_left(i as u32),
            },
        };
        w.push(spec(name, pattern, 1000 + i as u64, true, Suite::Spec));
    }
    let spec_adverse_names = [
        "429.mcf-184B",
        "450.soplex-247B",
        "471.omnetpp-188B",
        "473.astar-153B",
        "483.xalancbmk-127B",
        "403.gcc-17B",
        "445.gobmk-17B",
        "456.hmmer-88B",
        "464.h264ref-57B",
        "605.mcf_s-1554B",
        "605.mcf_s-472B",
        "620.omnetpp_s-874B",
        "623.xalancbmk_s-10B",
        "631.deepsjeng_s-928B",
        "641.leela_s-800B",
        "648.exchange2_s-1699B",
        "657.xz_s-3167B",
        "602.gcc_s-734B",
        "429.mcf-51B",
        "471.omnetpp-20B",
        "483.xalancbmk-736B",
    ];
    for (i, name) in spec_adverse_names.iter().enumerate() {
        let pattern = match i % 3 {
            0 => Pattern::PointerChase {
                nodes: (1 << 19) + ((i as u64) << 15),
                burst_pct: 20 + (i as u32 % 3) * 10,
            },
            1 => Pattern::HashProbe {
                footprint: 32 << 20,
                locality_pct: 25 + (i as u32 % 4) * 10,
            },
            _ => Pattern::ComputeBranchy {
                hot_bytes: 64 << 10,
                cold_bytes: 48 << 20,
                cold_pct: 45,
                hard_branch_pct: 45,
            },
        };
        w.push(spec(name, pattern, 2000 + i as u64, false, Suite::Spec));
    }

    // --- PARSEC (13): 9 friendly, 4 adverse -----------------------------------------------
    let parsec = [
        ("parsec-blackscholes-simlarge", true),
        ("parsec-bodytrack-simlarge", true),
        ("parsec-facesim-simlarge", true),
        ("parsec-ferret-simlarge", true),
        ("parsec-fluidanimate-simlarge", true),
        ("parsec-freqmine-simlarge", true),
        ("parsec-raytrace-simlarge", true),
        ("parsec-streamcluster-simlarge", true),
        ("parsec-vips-simlarge", true),
        ("parsec-canneal-simlarge", false),
        ("parsec-dedup-simlarge", false),
        ("parsec-swaptions-simlarge", false),
        ("parsec-x264-simlarge", false),
    ];
    for (i, (name, friendly)) in parsec.iter().enumerate() {
        let pattern = if *friendly {
            if i % 2 == 0 {
                Pattern::Stream {
                    footprint: 24 << 20,
                    loads_per_iter: 3,
                }
            } else {
                Pattern::Spatial {
                    regions: 24_576,
                    footprint_mask: 0x0f0f_0f0f,
                }
            }
        } else {
            Pattern::HashProbe {
                footprint: 24 << 20,
                locality_pct: 30,
            }
        };
        w.push(spec(
            name,
            pattern,
            3000 + i as u64,
            *friendly,
            Suite::Parsec,
        ));
    }

    // --- Ligra (13): 4 friendly, 9 adverse -------------------------------------------------
    let ligra = [
        ("ligra-BFS-24B", false),
        ("ligra-BFSCC-24B", false),
        ("ligra-BC-24B", false),
        ("ligra-CF-24B", false),
        ("ligra-Components-24B", false),
        ("ligra-KCore-24B", false),
        ("ligra-MIS-24B", false),
        ("ligra-PageRankDelta-24B", false),
        ("ligra-Triangle-24B", false),
        ("ligra-PageRank-24B", true),
        ("ligra-Radii-24B", true),
        ("ligra-BellmanFord-24B", true),
        ("ligra-CFSingle-24B", true),
    ];
    for (i, (name, friendly)) in ligra.iter().enumerate() {
        let pattern = if *friendly {
            // PageRank-style: dense sequential sweeps over vertex arrays.
            Pattern::Stream {
                footprint: 40 << 20,
                loads_per_iter: 4,
            }
        } else {
            Pattern::GraphFrontier {
                vertices: (1 << 19) + ((i as u64) << 14),
                neighbours: 2 + (i as u32 % 2),
            }
        };
        w.push(spec(
            name,
            pattern,
            4000 + i as u64,
            *friendly,
            Suite::Ligra,
        ));
    }

    // --- CVP (25): 13 friendly (fp), 12 adverse (int/server) -------------------------------
    for i in 0..13u64 {
        let name = format!("cvp-compute_fp_{}", 10 + i * 7);
        let pattern = if i % 2 == 0 {
            Pattern::Strided {
                footprint: 32 << 20,
                stride: 64 * (1 + i % 8),
            }
        } else {
            Pattern::MixedPhase {
                phase_len: 40_000,
                stream_footprint: 32 << 20,
                chase_nodes: 1 << 19,
            }
        };
        w.push(spec(&name, pattern, 5000 + i, true, Suite::Cvp));
    }
    for i in 0..12u64 {
        let name = format!("cvp-compute_int_{}", 5 + i * 11);
        let pattern = if i % 2 == 0 {
            Pattern::ComputeBranchy {
                hot_bytes: 96 << 10,
                cold_bytes: 64 << 20,
                cold_pct: 40,
                hard_branch_pct: 50,
            }
        } else {
            Pattern::PointerChase {
                nodes: (1 << 19) + (i << 16),
                burst_pct: 30,
            }
        };
        w.push(spec(&name, pattern, 6000 + i, false, Suite::Cvp));
    }

    assert_eq!(w.len(), 100);
    w
}

/// Looks a workload up by name across every set this crate defines: the 100 evaluation
/// workloads, the 20 held-out tuning workloads and the Google-like unseen set.
///
/// Used by the `trace` CLI to resolve `--workload <name>`; returns `None` for an unknown
/// name rather than guessing.
pub fn find_workload(name: &str) -> Option<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .chain(tuning_workloads())
        .chain(google_like_workloads())
        .find(|w| w.name == name)
}

/// The workloads of one suite, in suite order.
pub fn suite_workloads(suite: Suite) -> Vec<WorkloadSpec> {
    if suite == Suite::GoogleLike {
        return google_like_workloads();
    }
    all_workloads()
        .into_iter()
        .filter(|w| w.suite == suite)
        .collect()
}

/// The 20 held-out tuning workloads used for design-space exploration. They are disjoint
/// from [`all_workloads`] (different names and seeds), mirroring the paper's methodology.
pub fn tuning_workloads() -> Vec<WorkloadSpec> {
    let mut w = Vec::with_capacity(20);
    for i in 0..10u64 {
        let pattern = match i % 3 {
            0 => Pattern::Stream {
                footprint: 28 << 20,
                loads_per_iter: 4,
            },
            1 => Pattern::Strided {
                footprint: 36 << 20,
                stride: 192,
            },
            _ => Pattern::Spatial {
                regions: 20_000,
                footprint_mask: 0x00ff_00ff,
            },
        };
        w.push(spec(
            &format!("tune-friendly-{i}"),
            pattern,
            9000 + i,
            true,
            Suite::Spec,
        ));
    }
    for i in 0..10u64 {
        let pattern = match i % 3 {
            0 => Pattern::PointerChase {
                nodes: 1 << 19,
                burst_pct: 25,
            },
            1 => Pattern::HashProbe {
                footprint: 40 << 20,
                locality_pct: 35,
            },
            _ => Pattern::GraphFrontier {
                vertices: 1 << 19,
                neighbours: 2,
            },
        };
        w.push(spec(
            &format!("tune-adverse-{i}"),
            pattern,
            9500 + i,
            false,
            Suite::Spec,
        ));
    }
    w
}

/// Twelve groups of Google-warehouse-style traces (Appendix B.3's unseen-workload study),
/// one representative workload per group.
pub fn google_like_workloads() -> Vec<WorkloadSpec> {
    let groups = [
        "sierra.a.3",
        "sierra.a.4",
        "sierra.a.6",
        "bravo.a",
        "arizona",
        "charlie",
        "delta",
        "merced",
        "tahoe",
        "tango",
        "whiskey",
        "yankee",
    ];
    groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            // Warehouse-scale code: large instruction and data footprints, frequent hash
            // probing with some locality, moderately hard branches.
            let pattern = if i % 3 == 2 {
                Pattern::MixedPhase {
                    phase_len: 30_000,
                    stream_footprint: 24 << 20,
                    chase_nodes: 1 << 19,
                }
            } else {
                Pattern::ComputeBranchy {
                    hot_bytes: 256 << 10,
                    cold_bytes: 96 << 20,
                    cold_pct: 30 + (i as u32 % 3) * 10,
                    hard_branch_pct: 35,
                }
            };
            spec(
                &format!("google-{g}"),
                pattern,
                11_000 + i as u64,
                false,
                Suite::GoogleLike,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_one_hundred_workloads_with_paper_suite_counts() {
        let all = all_workloads();
        assert_eq!(all.len(), 100);
        let count = |s: Suite| all.iter().filter(|w| w.suite == s).count();
        assert_eq!(count(Suite::Spec), 49);
        assert_eq!(count(Suite::Parsec), 13);
        assert_eq!(count(Suite::Ligra), 13);
        assert_eq!(count(Suite::Cvp), 25);
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let all = all_workloads();
        let names: HashSet<_> = all.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), all.len());
        let seeds: HashSet<_> = all.iter().map(|w| w.seed).collect();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn friendly_adverse_split_is_roughly_sixty_forty() {
        let all = all_workloads();
        let friendly = all.iter().filter(|w| w.designed_friendly).count();
        assert!(
            (50..=65).contains(&friendly),
            "designed-friendly count {friendly} should be close to the paper's 60/40 split"
        );
    }

    #[test]
    fn tuning_workloads_are_disjoint_from_evaluation_workloads() {
        let eval_names: HashSet<_> = all_workloads().into_iter().map(|w| w.name).collect();
        let tuning = tuning_workloads();
        assert_eq!(tuning.len(), 20);
        for t in &tuning {
            assert!(!eval_names.contains(&t.name));
        }
    }

    #[test]
    fn google_workloads_have_twelve_groups() {
        let g = google_like_workloads();
        assert_eq!(g.len(), 12);
        assert!(g.iter().all(|w| w.suite == Suite::GoogleLike));
    }

    #[test]
    fn suite_filter_matches_membership() {
        for suite in [Suite::Spec, Suite::Parsec, Suite::Ligra, Suite::Cvp] {
            for w in suite_workloads(suite) {
                assert_eq!(w.suite, suite);
            }
        }
        assert_eq!(suite_workloads(Suite::GoogleLike).len(), 12);
    }

    #[test]
    fn traces_are_generated_and_memory_intensive_patterns_touch_memory() {
        for w in all_workloads().iter().take(10) {
            let loads = w.trace().take(5000).filter(|r| r.is_load()).count();
            assert!(loads > 50, "{}: {loads} loads in 5000 instructions", w.name);
        }
    }
}
