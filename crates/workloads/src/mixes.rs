//! Multi-core workload mixes (§6.1 of the paper): 30 prefetcher-adverse, 30
//! prefetcher-friendly and 30 random mixes for each core count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{all_workloads, WorkloadSpec};

/// The category a multi-core mix was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixCategory {
    /// Every workload drawn from the designed-prefetcher-adverse pool.
    PrefetcherAdverse,
    /// Every workload drawn from the designed-prefetcher-friendly pool.
    PrefetcherFriendly,
    /// Workloads drawn uniformly at random from all 100.
    Random,
}

impl std::fmt::Display for MixCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixCategory::PrefetcherAdverse => write!(f, "prefetcher-adverse"),
            MixCategory::PrefetcherFriendly => write!(f, "prefetcher-friendly"),
            MixCategory::Random => write!(f, "random"),
        }
    }
}

/// One multi-core mix: a category label and one workload per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// The mix's category.
    pub category: MixCategory,
    /// Mix name (e.g. `mix4-adverse-07`).
    pub name: String,
    /// One workload per core.
    pub workloads: Vec<WorkloadSpec>,
}

/// Builds the multi-core mixes for `cores` cores: `per_category` mixes of each category
/// (the paper uses 30). Selection is deterministic in `seed`.
pub fn mixes(cores: usize, per_category: usize, seed: u64) -> Vec<WorkloadMix> {
    let all = all_workloads();
    let adverse: Vec<&WorkloadSpec> = all.iter().filter(|w| !w.designed_friendly).collect();
    let friendly: Vec<&WorkloadSpec> = all.iter().filter(|w| w.designed_friendly).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d49_5845);
    let mut out = Vec::with_capacity(per_category * 3);

    let mut build = |category: MixCategory, pool: &[&WorkloadSpec], tag: &str| {
        for m in 0..per_category {
            let workloads: Vec<WorkloadSpec> = (0..cores)
                .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                .collect();
            out.push(WorkloadMix {
                category,
                name: format!("mix{cores}-{tag}-{m:02}"),
                workloads,
            });
        }
    };
    build(MixCategory::PrefetcherAdverse, &adverse, "adverse");
    build(MixCategory::PrefetcherFriendly, &friendly, "friendly");
    let all_refs: Vec<&WorkloadSpec> = all.iter().collect();
    build(MixCategory::Random, &all_refs, "random");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_counts_and_shapes() {
        let m4 = mixes(4, 30, 1);
        assert_eq!(m4.len(), 90);
        assert!(m4.iter().all(|m| m.workloads.len() == 4));
        let m8 = mixes(8, 30, 1);
        assert_eq!(m8.len(), 90);
        assert!(m8.iter().all(|m| m.workloads.len() == 8));
    }

    #[test]
    fn category_pools_are_respected() {
        for mix in mixes(4, 10, 2) {
            match mix.category {
                MixCategory::PrefetcherAdverse => {
                    assert!(mix.workloads.iter().all(|w| !w.designed_friendly))
                }
                MixCategory::PrefetcherFriendly => {
                    assert!(mix.workloads.iter().all(|w| w.designed_friendly))
                }
                MixCategory::Random => {}
            }
        }
    }

    #[test]
    fn mixes_are_deterministic_in_the_seed() {
        assert_eq!(mixes(4, 5, 7), mixes(4, 5, 7));
        assert_ne!(mixes(4, 5, 7), mixes(4, 5, 8));
    }

    #[test]
    fn mix_names_are_unique() {
        let m = mixes(8, 30, 3);
        let names: std::collections::HashSet<_> = m.iter().map(|x| x.name.clone()).collect();
        assert_eq!(names.len(), m.len());
    }
}
