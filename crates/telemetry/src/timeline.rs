//! The assembled time series ([`Timeline`]), its CSV export and learning-curve
//! summarisation.

use athena_sim::{CoordinatorTelemetry, EpochStats};

use crate::window::{WindowAccumulator, WindowSample};

/// The complete windowed time series of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The configured window length in instructions (windows hold whole epochs, so actual
    /// window sizes are this value rounded up to an epoch boundary; the last window may be
    /// shorter).
    pub window_instructions: u64,
    /// The windows, in run order.
    pub windows: Vec<WindowSample>,
}

impl Timeline {
    /// Builds a timeline from a run's epoch series and (possibly empty) per-epoch agent
    /// snapshots, as found in `SimResult::epochs` / `SimResult::agent_epochs`. The
    /// snapshots are positionally aligned with the epochs: entry *i* belongs to epoch
    /// *i*, with `None` for epochs where the coordinator reported no internals.
    pub fn from_epochs(
        window_instructions: u64,
        epochs: &[EpochStats],
        agent_epochs: &[Option<CoordinatorTelemetry>],
    ) -> Self {
        let mut acc = WindowAccumulator::new(window_instructions);
        for (i, e) in epochs.iter().enumerate() {
            acc.push_epoch(e, agent_epochs.get(i).and_then(Option::as_ref));
        }
        acc.finish()
    }

    /// Exact sum of every window's counters — by construction identical to summing the
    /// run's epochs directly, which is how the end-of-run aggregates are built. The
    /// composition property `timeline.totals() == whole-run stats` is locked in by the
    /// workspace test `tests/telemetry.rs` for every coordinator kind.
    pub fn totals(&self) -> EpochStats {
        let mut total = EpochStats::default();
        for w in &self.windows {
            total.accumulate(&w.stats);
        }
        total.epoch_index = 0;
        total
    }

    /// Per-window action counts: the element-wise difference between consecutive cumulative
    /// agent histograms (`None` for windows without an agent snapshot). The first window
    /// diffs against zero.
    pub fn action_deltas(&self) -> Vec<Option<Vec<u64>>> {
        let mut previous: Option<&[u64]> = None;
        self.windows
            .iter()
            .map(|w| {
                let agent = w.agent.as_ref()?;
                let delta = agent
                    .action_histogram
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c - previous.and_then(|p| p.get(i)).copied().unwrap_or(0))
                    .collect();
                previous = Some(&agent.action_histogram);
                Some(delta)
            })
            .collect()
    }

    /// Number of actions in the agent histograms (0 when no window carries agent data).
    fn action_count(&self) -> usize {
        self.windows
            .iter()
            .filter_map(|w| w.agent.as_ref().map(|a| a.action_histogram.len()))
            .max()
            .unwrap_or(0)
    }

    /// Serialises the timeline as CSV: one row per window with the raw counters, the
    /// derived per-window metrics, and — when any window carries agent data — the agent's
    /// Q-value summary, exploration rate and per-window action counts. Formatting is fixed
    /// (six decimal places), so equal timelines serialise to equal bytes.
    pub fn to_csv(&self) -> String {
        let actions = self.action_count();
        let mut out = String::from(
            "window,start_instruction,epochs,instructions,cycles,ipc,l1d_mpki,llc_mpki,\
             prefetches_issued,prefetches_useful,prefetches_late,prefetch_accuracy,\
             prefetch_coverage,prefetch_timeliness,ocp_predictions,ocp_correct,\
             ocp_precision,ocp_recall,bandwidth_usage",
        );
        if actions > 0 {
            out.push_str(",q_mean,q_min,q_max,epsilon,updates");
            for a in 0..actions {
                out.push_str(&format!(",action{a}"));
            }
        }
        out.push('\n');
        let deltas = self.action_deltas();
        for (w, delta) in self.windows.iter().zip(deltas) {
            let s = &w.stats;
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{:.6},{:.6},{:.6},{},{},{:.6},{:.6},{:.6}",
                w.index,
                w.start_instruction,
                w.epochs,
                s.instructions,
                s.cycles,
                s.ipc(),
                s.l1d_mpki(),
                s.llc_mpki(),
                s.prefetches_issued,
                s.prefetches_useful,
                s.prefetches_late,
                s.prefetcher_accuracy(),
                s.prefetch_coverage(),
                s.prefetch_timeliness(),
                s.ocp_predictions,
                s.ocp_correct,
                s.ocp_precision(),
                s.ocp_recall(),
                s.bandwidth_usage(),
            ));
            if actions > 0 {
                match (&w.agent, delta) {
                    (Some(a), Some(d)) => {
                        out.push_str(&format!(
                            ",{:.6},{:.6},{:.6},{:.6},{}",
                            a.q_mean, a.q_min, a.q_max, a.epsilon, a.updates
                        ));
                        for i in 0..actions {
                            out.push_str(&format!(",{}", d.get(i).copied().unwrap_or(0)));
                        }
                    }
                    _ => {
                        // Five empty scalar columns plus one empty column per action.
                        for _ in 0..5 + actions {
                            out.push(',');
                        }
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// The raw counter sums behind [`Timeline::learning_curve`]: the number of windows
    /// per side (the first and last quarter of the run, at least one window each) and the
    /// early/late aggregated counters. Exposed so multi-run reports (e.g. the harness's
    /// per-coordinator learning-curve table) can keep aggregating counters across runs
    /// with the *same* window split the per-run curve uses.
    pub fn early_late_window_sums(&self) -> Option<(u64, EpochStats, EpochStats)> {
        if self.windows.is_empty() {
            return None;
        }
        let k = (self.windows.len() / 4).max(1);
        let sum = |windows: &[WindowSample]| {
            let mut total = EpochStats::default();
            for w in windows {
                total.accumulate(&w.stats);
            }
            total
        };
        Some((
            k as u64,
            sum(&self.windows[..k]),
            sum(&self.windows[self.windows.len() - k..]),
        ))
    }

    /// The early-vs-late learning curve: metrics aggregated over the first and last
    /// quarter of the windows (at least one window each). `None` when the run produced no
    /// windows. Aggregation sums the window counters first and derives the ratios from the
    /// sums, so the curve is exact, not an average of averages.
    pub fn learning_curve(&self) -> Option<LearningCurve> {
        let (k, early, late) = self.early_late_window_sums()?;
        Some(LearningCurve {
            windows_per_side: k,
            early: WindowMetrics::from_stats(&early),
            late: WindowMetrics::from_stats(&late),
        })
    }
}

/// The derived metrics of one window (or one aggregated span of windows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMetrics {
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Prefetcher accuracy (useful / issued).
    pub prefetch_accuracy: f64,
    /// Prefetch coverage (useful / (useful + LLC misses)).
    pub prefetch_coverage: f64,
    /// Prefetch timeliness (1 − late / useful).
    pub prefetch_timeliness: f64,
    /// OCP precision (correct / predicted).
    pub ocp_precision: f64,
    /// OCP recall (correct / off-chip loads).
    pub ocp_recall: f64,
}

impl WindowMetrics {
    /// Derives the metric set from (possibly aggregated) window counters.
    pub fn from_stats(s: &EpochStats) -> Self {
        Self {
            ipc: s.ipc(),
            l1d_mpki: s.l1d_mpki(),
            llc_mpki: s.llc_mpki(),
            prefetch_accuracy: s.prefetcher_accuracy(),
            prefetch_coverage: s.prefetch_coverage(),
            prefetch_timeliness: s.prefetch_timeliness(),
            ocp_precision: s.ocp_precision(),
            ocp_recall: s.ocp_recall(),
        }
    }
}

/// Early-window vs late-window metrics of one run — the repository's analogue of the
/// paper's learning-behaviour figures: an online policy that is actually learning shows
/// late windows beating early ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningCurve {
    /// How many windows each side aggregates (a quarter of the run, at least one).
    pub windows_per_side: u64,
    /// Metrics over the first `windows_per_side` windows.
    pub early: WindowMetrics,
    /// Metrics over the last `windows_per_side` windows.
    pub late: WindowMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(index: u64) -> EpochStats {
        EpochStats {
            epoch_index: index,
            instructions: 2048,
            cycles: 4096 - index * 100, // "learning": later epochs are faster
            llc_misses: 40,
            prefetches_issued: 50,
            prefetches_useful: 20 + index, // and more accurate
            prefetches_late: 2,
            ocp_predictions: 30,
            ocp_correct: 24,
            loads_off_chip: 30,
            ..Default::default()
        }
    }

    fn timeline() -> Timeline {
        let epochs: Vec<EpochStats> = (0..8).map(epoch).collect();
        Timeline::from_epochs(2048, &epochs, &[])
    }

    #[test]
    fn totals_match_epoch_sums_exactly() {
        let t = timeline();
        assert_eq!(t.windows.len(), 8);
        let total = t.totals();
        assert_eq!(total.instructions, 8 * 2048);
        assert_eq!(total.prefetches_useful, (0..8).map(|i| 20 + i).sum::<u64>());
    }

    #[test]
    fn learning_curve_sees_improvement() {
        let curve = timeline().learning_curve().unwrap();
        assert_eq!(curve.windows_per_side, 2);
        assert!(curve.late.ipc > curve.early.ipc);
        assert!(curve.late.prefetch_accuracy > curve.early.prefetch_accuracy);
        assert!(Timeline::from_epochs(2048, &[], &[])
            .learning_curve()
            .is_none());
    }

    #[test]
    fn csv_is_stable_and_carries_agent_columns_only_when_present() {
        let t = timeline();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 9, "header plus one row per window");
        assert!(csv.starts_with("window,start_instruction,"));
        assert!(!csv.contains("q_mean"), "no agent data, no agent columns");
        assert_eq!(csv, t.to_csv(), "serialisation is deterministic");

        let agent = CoordinatorTelemetry {
            epsilon: 0.05,
            updates: 7,
            q_mean: 0.25,
            q_min: -1.0,
            q_max: 2.0,
            action_histogram: vec![1, 2, 3, 4],
        };
        let epochs: Vec<EpochStats> = (0..2).map(epoch).collect();
        let with_agent = Timeline::from_epochs(2048, &epochs, &[Some(agent.clone()), Some(agent)]);
        let csv = with_agent.to_csv();
        assert!(csv.contains("q_mean"));
        assert!(csv.contains(",action3"));
    }

    #[test]
    fn csv_rows_keep_the_header_width_even_without_agent_data() {
        // A timeline where only some windows carry an agent snapshot must still emit
        // rectangular CSV: every row has exactly as many fields as the header.
        let agent = CoordinatorTelemetry {
            action_histogram: vec![1, 2, 3, 4],
            ..Default::default()
        };
        let epochs: Vec<EpochStats> = (0..3).map(epoch).collect();
        let mut acc = crate::WindowAccumulator::new(2048);
        acc.push_epoch(&epochs[0], Some(&agent));
        acc.push_epoch(&epochs[1], None);
        acc.push_epoch(&epochs[2], Some(&agent));
        let csv = acc.finish().to_csv();
        let widths: Vec<usize> = csv.lines().map(|line| line.split(',').count()).collect();
        assert_eq!(widths.len(), 4, "header plus three windows");
        assert!(
            widths.iter().all(|&w| w == widths[0]),
            "all rows must match the header width: {widths:?}"
        );
    }

    #[test]
    fn action_deltas_diff_consecutive_histograms() {
        let snap = |h: [u64; 4]| {
            Some(CoordinatorTelemetry {
                action_histogram: h.to_vec(),
                ..Default::default()
            })
        };
        let epochs: Vec<EpochStats> = (0..3).map(epoch).collect();
        let t = Timeline::from_epochs(
            2048,
            &epochs,
            &[snap([1, 0, 0, 0]), snap([1, 2, 0, 0]), snap([1, 2, 0, 3])],
        );
        let deltas = t.action_deltas();
        assert_eq!(deltas[0], Some(vec![1, 0, 0, 0]));
        assert_eq!(deltas[1], Some(vec![0, 2, 0, 0]));
        assert_eq!(deltas[2], Some(vec![0, 0, 0, 3]));
    }
}
