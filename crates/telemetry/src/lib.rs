//! # athena-telemetry
//!
//! Windowed time-series telemetry for the Athena reproduction.
//!
//! Everything the repository reported before this crate existed was an end-of-run
//! aggregate, which makes the *online* part of online reinforcement learning invisible:
//! Athena's policy, Q-values and prefetch/OCP coordination evolve over a run, and the
//! paper's learning-behaviour and case-study figures are about exactly that evolution.
//! This crate turns the simulator's per-epoch telemetry stream into fixed-size
//! **windows** — per-interval samples of IPC, L1D/LLC MPKI, prefetch
//! coverage/accuracy/timeliness, OCP precision/recall and (when enabled) the agent's
//! learning internals — and derives **learning curves** (early-window vs late-window
//! metrics) from them.
//!
//! Design constraints, in order:
//!
//! * **Results never change.** Windowing is a pure function of the epoch stream the
//!   simulator already produces; it adds no counters of its own and feeds nothing back.
//!   A timeline is therefore exactly as deterministic as the run it describes — byte-
//!   identical at any engine worker count and under trace replay.
//! * **Zero cost when disabled.** The simulator collects epochs unconditionally (it always
//!   has); agent snapshots — the only part with a measurable cost, one pass over the
//!   QVStore per epoch — are strictly opt-in via `Simulator::with_agent_telemetry`.
//! * **O(1) working state.** [`WindowAccumulator`] keeps one partial window while
//!   streaming; memory is proportional to the number of *emitted* windows only.
//!
//! ```
//! use athena_sim::EpochStats;
//! use athena_telemetry::Timeline;
//!
//! // Six 2048-instruction epochs, windowed every 4096 instructions -> three windows.
//! let epochs: Vec<EpochStats> = (0..6)
//!     .map(|i| EpochStats {
//!         epoch_index: i,
//!         instructions: 2048,
//!         cycles: 4096,
//!         ..Default::default()
//!     })
//!     .collect();
//! let timeline = Timeline::from_epochs(4096, &epochs, &[]);
//! assert_eq!(timeline.windows.len(), 3);
//! assert_eq!(timeline.totals().instructions, 6 * 2048);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod timeline;
mod window;

pub use timeline::{LearningCurve, Timeline, WindowMetrics};
pub use window::{WindowAccumulator, WindowSample, DEFAULT_WINDOW_INSTRUCTIONS};
