//! Window formation: folding the per-epoch telemetry stream into fixed-size intervals.

use athena_sim::{CoordinatorTelemetry, EpochStats};

use crate::timeline::Timeline;

/// Default window length in instructions: four coordination epochs at the paper's 2K
/// epoch length — fine enough to see convergence in a 40 K-instruction quick run, coarse
/// enough that full runs stay a few hundred rows.
pub const DEFAULT_WINDOW_INSTRUCTIONS: u64 = 8192;

/// One telemetry window: every simulator counter aggregated over a fixed slice of the run,
/// plus (when sampled) the coordinator's learning internals at the window's close.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Window sequence number (0-based).
    pub index: u64,
    /// Instructions retired before this window began.
    pub start_instruction: u64,
    /// Number of coordination epochs composing the window.
    pub epochs: u64,
    /// The window's counters: an exact sum of its epochs' [`EpochStats`] (the derived
    /// metrics — `ipc()`, `llc_mpki()`, `prefetch_coverage()`, … — therefore come for
    /// free). `stats.epoch_index` is the index of the window's first epoch.
    pub stats: EpochStats,
    /// Snapshot of the coordinator's learning internals at the end of the window's last
    /// epoch. Counters inside are cumulative since the start of the run; `None` when agent
    /// telemetry was not enabled or the policy has no learned state.
    pub agent: Option<CoordinatorTelemetry>,
}

/// Streams epochs into windows with O(1) working state.
///
/// A window closes as soon as it holds at least `window_instructions` instructions, so
/// windows are composed of *whole* coordination epochs (the simulator's sampling quantum)
/// and the final window may be shorter. Because every epoch lands in exactly one window,
/// the windows partition the run: summing them reproduces the end-of-run aggregates
/// exactly, counter for counter.
#[derive(Debug, Clone)]
pub struct WindowAccumulator {
    window_instructions: u64,
    current: Option<WindowSample>,
    instructions_seen: u64,
    windows: Vec<WindowSample>,
}

impl WindowAccumulator {
    /// Creates an accumulator producing windows of at least `window_instructions`
    /// instructions (clamped to 1).
    pub fn new(window_instructions: u64) -> Self {
        Self {
            window_instructions: window_instructions.max(1),
            current: None,
            instructions_seen: 0,
            windows: Vec::new(),
        }
    }

    /// Folds one epoch — and, when available, the coordinator snapshot taken at its end —
    /// into the current window, closing the window if it reached the configured length.
    pub fn push_epoch(&mut self, epoch: &EpochStats, agent: Option<&CoordinatorTelemetry>) {
        let current = self.current.get_or_insert_with(|| WindowSample {
            index: self.windows.len() as u64,
            start_instruction: self.instructions_seen,
            epochs: 0,
            stats: EpochStats {
                epoch_index: epoch.epoch_index,
                ..Default::default()
            },
            agent: None,
        });
        current.stats.accumulate(epoch);
        current.epochs += 1;
        // The snapshot of the window's *last* epoch wins: cumulative counters make the
        // per-window delta recoverable downstream.
        if let Some(a) = agent {
            current.agent = Some(a.clone());
        }
        self.instructions_seen += epoch.instructions;
        if current.stats.instructions >= self.window_instructions {
            self.windows.push(self.current.take().expect("window open"));
        }
    }

    /// Closes the final partial window (if any) and returns the assembled timeline.
    pub fn finish(mut self) -> Timeline {
        if let Some(last) = self.current.take() {
            self.windows.push(last);
        }
        Timeline {
            window_instructions: self.window_instructions,
            windows: self.windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(index: u64, instructions: u64) -> EpochStats {
        EpochStats {
            epoch_index: index,
            instructions,
            cycles: instructions * 2,
            loads: instructions / 4,
            llc_misses: 3,
            prefetches_issued: 10,
            prefetches_useful: 7,
            prefetches_late: 2,
            ocp_predictions: 5,
            ocp_correct: 4,
            loads_off_chip: 6,
            ..Default::default()
        }
    }

    #[test]
    fn windows_are_whole_epochs_and_partition_the_run() {
        let mut acc = WindowAccumulator::new(4096);
        for i in 0..7 {
            acc.push_epoch(&epoch(i, 2048), None);
        }
        let t = acc.finish();
        // 7 epochs at 2048 instr, 4096-instruction windows: three full + one partial.
        assert_eq!(t.windows.len(), 4);
        assert_eq!(t.windows[0].epochs, 2);
        assert_eq!(t.windows[3].epochs, 1);
        assert_eq!(t.windows[1].start_instruction, 4096);
        assert_eq!(t.windows[3].stats.epoch_index, 6);
        let total: u64 = t.windows.iter().map(|w| w.stats.instructions).sum();
        assert_eq!(total, 7 * 2048);
        assert_eq!(t.totals().prefetches_useful, 7 * 7);
        assert_eq!(t.totals().loads_off_chip, 7 * 6);
    }

    #[test]
    fn oversized_epochs_close_their_window_immediately() {
        let mut acc = WindowAccumulator::new(100);
        acc.push_epoch(&epoch(0, 2048), None);
        acc.push_epoch(&epoch(1, 2048), None);
        let t = acc.finish();
        assert_eq!(t.windows.len(), 2, "each epoch overshoots the window alone");
    }

    #[test]
    fn last_agent_snapshot_of_the_window_wins() {
        let mut acc = WindowAccumulator::new(4096);
        let snap = |updates| CoordinatorTelemetry {
            updates,
            ..Default::default()
        };
        acc.push_epoch(&epoch(0, 2048), Some(&snap(1)));
        acc.push_epoch(&epoch(1, 2048), Some(&snap(2)));
        acc.push_epoch(&epoch(2, 2048), None);
        let t = acc.finish();
        assert_eq!(t.windows[0].agent.as_ref().unwrap().updates, 2);
        assert_eq!(t.windows[1].agent, None);
    }
}
