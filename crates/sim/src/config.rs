//! Simulator configuration: core, cache hierarchy and DRAM parameters.
//!
//! The defaults follow Table 5 of the paper (an Intel Golden-Cove-like core with a
//! bandwidth-constrained DDR4 main memory of 3.2 GB/s per core).

use crate::cache::{CacheConfig, Replacement};

/// Core (front-end / ROB) parameters of the timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Maximum instructions issued into the ROB per cycle.
    pub issue_width: u32,
    /// Maximum instructions retired per cycle.
    pub commit_width: u32,
    /// Reorder buffer capacity in instructions.
    pub rob_size: usize,
    /// Extra front-end bubble cycles charged after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Core clock frequency in GHz. Used to convert DRAM nanosecond timings and GB/s
    /// bandwidth figures into core cycles.
    pub frequency_ghz: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            issue_width: 6,
            commit_width: 6,
            rob_size: 512,
            mispredict_penalty: 17,
            frequency_ghz: 4.0,
        }
    }
}

/// DRAM / memory-controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak main-memory bandwidth available to this core, in GB/s.
    pub bandwidth_gbps: f64,
    /// Number of banks per rank.
    pub banks: usize,
    /// Row buffer size in bytes.
    pub row_buffer_bytes: u64,
    /// tRCD in nanoseconds.
    pub trcd_ns: f64,
    /// tRP in nanoseconds.
    pub trp_ns: f64,
    /// tCAS in nanoseconds.
    pub tcas_ns: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            bandwidth_gbps: 3.2,
            banks: 8,
            row_buffer_bytes: 2048,
            trcd_ns: 12.5,
            trp_ns: 12.5,
            tcas_ns: 12.5,
        }
    }
}

/// Full single-core system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 data cache parameters.
    pub l1d: CacheConfig,
    /// Unified private L2 cache parameters.
    pub l2c: CacheConfig,
    /// Shared last-level cache parameters (per-core slice in single-core runs).
    pub llc: CacheConfig,
    /// Main memory parameters.
    pub dram: DramConfig,
    /// Latency, in cycles, for an off-chip predictor's speculative request to reach the
    /// memory controller once the load address is known (6 cycles in the paper's default).
    pub ocp_issue_latency: u64,
    /// Number of retired instructions per coordination epoch (2K in the paper).
    pub epoch_len: u64,
    /// Number of cycles after an epoch ends before a coordinator's updated decision takes
    /// effect, modelling the QVStore update latency (50 cycles in the paper). The simulator
    /// applies the new decision from the next epoch regardless; the value is kept for
    /// storage/latency reporting and sensitivity studies.
    pub coordinator_update_latency: u64,
}

impl SimConfig {
    /// The paper's baseline system (Table 5): Golden-Cove-like core, 48 KB L1D, 1.25 MB L2,
    /// 3 MB LLC slice, 3.2 GB/s DDR4 per core.
    pub fn golden_cove_like() -> Self {
        Self {
            core: CoreConfig::default(),
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 48 * 1024,
                ways: 12,
                latency: 5,
                mshrs: 16,
                replacement: Replacement::Lru,
            },
            l2c: CacheConfig {
                name: "L2C",
                size_bytes: 1280 * 1024,
                ways: 20,
                latency: 15,
                mshrs: 48,
                replacement: Replacement::Lru,
            },
            llc: CacheConfig {
                name: "LLC",
                size_bytes: 3 * 1024 * 1024,
                ways: 12,
                latency: 55,
                mshrs: 64,
                replacement: Replacement::Ship,
            },
            dram: DramConfig::default(),
            ocp_issue_latency: 6,
            epoch_len: 2048,
            coordinator_update_latency: 50,
        }
    }

    /// A scaled-down configuration with small caches, useful for fast unit tests that need
    /// to exercise capacity misses without long traces.
    pub fn tiny() -> Self {
        Self {
            core: CoreConfig {
                issue_width: 4,
                commit_width: 4,
                rob_size: 64,
                mispredict_penalty: 10,
                frequency_ghz: 4.0,
            },
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 4 * 1024,
                ways: 4,
                latency: 4,
                mshrs: 8,
                replacement: Replacement::Lru,
            },
            l2c: CacheConfig {
                name: "L2C",
                size_bytes: 16 * 1024,
                ways: 8,
                latency: 12,
                mshrs: 16,
                replacement: Replacement::Lru,
            },
            llc: CacheConfig {
                name: "LLC",
                size_bytes: 64 * 1024,
                ways: 8,
                latency: 40,
                mshrs: 32,
                replacement: Replacement::Ship,
            },
            dram: DramConfig::default(),
            ocp_issue_latency: 6,
            epoch_len: 256,
            coordinator_update_latency: 50,
        }
    }

    /// Returns a copy of this configuration with a different main-memory bandwidth (GB/s).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.dram.bandwidth_gbps = gbps;
        self
    }

    /// Returns a copy of this configuration with a different OCP request issue latency.
    pub fn with_ocp_issue_latency(mut self, cycles: u64) -> Self {
        self.ocp_issue_latency = cycles;
        self
    }

    /// Returns a copy of this configuration with a different epoch length.
    pub fn with_epoch_len(mut self, instructions: u64) -> Self {
        self.epoch_len = instructions;
        self
    }

    /// DRAM data-bus occupancy, in core cycles, of one 64-byte cache-line transfer at the
    /// configured bandwidth.
    pub fn dram_cycles_per_line(&self) -> u64 {
        let bytes_per_cycle = self.dram.bandwidth_gbps / self.core.frequency_ghz;
        (crate::trace::LINE_SIZE as f64 / bytes_per_cycle)
            .round()
            .max(1.0) as u64
    }

    /// Converts a nanosecond latency to core cycles at the configured frequency.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.core.frequency_ghz).round() as u64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::golden_cove_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_cove_matches_table5() {
        let c = SimConfig::golden_cove_like();
        assert_eq!(c.core.rob_size, 512);
        assert_eq!(c.core.issue_width, 6);
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l2c.ways, 20);
        assert_eq!(c.llc.size_bytes, 3 * 1024 * 1024);
        assert_eq!(c.dram.bandwidth_gbps, 3.2);
        assert_eq!(c.epoch_len, 2048);
    }

    #[test]
    fn bandwidth_translates_to_bus_cycles() {
        let c = SimConfig::golden_cove_like();
        // 3.2 GB/s at 4 GHz = 0.8 bytes/cycle => 80 cycles per 64-byte line.
        assert_eq!(c.dram_cycles_per_line(), 80);
        let wide = c.clone().with_bandwidth(12.8);
        assert_eq!(wide.dram_cycles_per_line(), 20);
        let narrow = SimConfig::golden_cove_like().with_bandwidth(1.6);
        assert_eq!(narrow.dram_cycles_per_line(), 160);
    }

    #[test]
    fn ns_conversion_uses_frequency() {
        let c = SimConfig::golden_cove_like();
        assert_eq!(c.ns_to_cycles(12.5), 50);
    }

    #[test]
    fn builders_modify_only_their_field() {
        let base = SimConfig::golden_cove_like();
        let modified = base.clone().with_ocp_issue_latency(30).with_epoch_len(1024);
        assert_eq!(modified.ocp_issue_latency, 30);
        assert_eq!(modified.epoch_len, 1024);
        assert_eq!(modified.l1d, base.l1d);
        assert_eq!(modified.dram, base.dram);
    }
}
