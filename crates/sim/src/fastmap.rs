//! A fast, deterministic hasher for the hierarchy's line-address bookkeeping.
//!
//! The pollution and provenance trackers key sets/maps by line address on every LLC
//! eviction and prefetch issue. `std`'s default SipHash is keyed for HashDoS resistance
//! the simulator does not need (the keys are simulated addresses, not attacker input) and
//! costs a large fraction of each probe. This is the classic `FxHash` multiply-rotate
//! scheme instead: a fixed (unseeded) function, so runs stay bit-deterministic, roughly
//! 5× cheaper per `u64` key.
//!
//! Determinism note: hash-map *iteration order* still depends on capacity growth history,
//! so — exactly as with the previous SipHash maps — no simulator code may iterate these
//! containers; they are used for insert/remove/contains only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (FxHash); not HashDoS-resistant, which is fine for simulated
/// addresses.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so every map hashes identically).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(0xdead_beef), hash(0xdead_beef));
        assert_ne!(hash(1), hash(2));
    }

    #[test]
    fn map_and_set_behave_like_std() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        assert_eq!(m.insert(42, 1), None);
        assert_eq!(m.insert(42, 2), Some(1));
        assert_eq!(m.remove(&42), Some(2));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
    }
}
