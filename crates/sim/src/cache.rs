//! Set-associative cache model with LRU and SHiP-style replacement, per-line prefetch
//! metadata and eviction reporting.
//!
//! The cache simulates contents exactly (tags, replacement state, dirty bits) so that
//! prefetch-induced pollution, prefetch usefulness and off-chip behaviour emerge from the
//! simulated workload rather than from analytical approximations.

use crate::trace::LINE_SIZE;

/// Identifies a level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// First-level data cache.
    L1d,
    /// Private unified second-level cache.
    L2c,
    /// Shared last-level cache.
    Llc,
}

impl std::fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLevel::L1d => write!(f, "L1D"),
            CacheLevel::L2c => write!(f, "L2C"),
            CacheLevel::Llc => write!(f, "LLC"),
        }
    }
}

/// Replacement policy used by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Signature-based Hit Predictor (SHiP)-style re-reference interval prediction. Lines
    /// whose PC signature rarely produces re-references are inserted with a distant
    /// re-reference prediction and are evicted first.
    Ship,
}

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics output.
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Round-trip lookup latency in cycles.
    pub latency: u64,
    /// Number of miss-status holding registers (bounds outstanding misses).
    pub mshrs: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Number of sets implied by the capacity, associativity and 64-byte lines.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (LINE_SIZE * self.ways as u64)).max(1) as usize
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line was present (possibly still in flight).
    Hit {
        /// The line was brought in by a prefetch and this is the first demand touch.
        first_use_of_prefetch: bool,
        /// Cycle at which the line's data is (or was) actually available. For lines whose
        /// fill is still in flight — typically prefetches waiting on the DRAM bus — this is
        /// in the future and the demand must wait for it.
        ready_cycle: u64,
    },
    /// The line was absent.
    Miss,
}

impl LookupOutcome {
    /// Returns `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupOutcome::Hit { .. })
    }
}

/// Description of a line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (requires a writeback).
    pub dirty: bool,
    /// Whether the victim was brought in by a prefetch.
    pub was_prefetch: bool,
    /// Whether the victim was ever demanded while resident.
    pub was_used: bool,
    /// Whether the eviction was caused by a prefetch fill (i.e. the *new* line is a
    /// prefetch). Used for pollution accounting.
    pub evicted_by_prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Brought in by a prefetch and not yet demanded.
    prefetch: bool,
    /// Demanded at least once while resident.
    used: bool,
    /// LRU stamp (higher = more recent) or RRPV depending on the policy.
    lru: u64,
    rrpv: u8,
    /// SHiP signature of the filling PC.
    signature: u16,
    /// Cycle at which the fill's data is available (0 for lines filled in the past).
    ready: u64,
}

impl Line {
    fn invalid() -> Self {
        Self {
            tag: 0,
            valid: false,
            dirty: false,
            prefetch: false,
            used: false,
            lru: 0,
            rrpv: 3,
            signature: 0,
            ready: 0,
        }
    }
}

const SHIP_TABLE_SIZE: usize = 1 << 12;
const RRPV_MAX: u8 = 3;

/// A set-associative cache with exact content simulation.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    level: CacheLevel,
    sets: Vec<Vec<Line>>,
    lru_clock: u64,
    /// SHiP signature outcome counters (2-bit saturating).
    ship_table: Vec<u8>,
    // Statistics.
    accesses: u64,
    hits: u64,
    misses: u64,
    prefetch_fills: u64,
    demand_fills: u64,
    useful_prefetches: u64,
    evicted_unused_prefetches: u64,
}

impl Cache {
    /// Creates an empty cache with the given configuration at the given level.
    pub fn new(config: CacheConfig, level: CacheLevel) -> Self {
        let sets = config.sets();
        Self {
            config,
            level,
            sets: vec![vec![Line::invalid(); config.ways]; sets],
            lru_clock: 0,
            ship_table: vec![1; SHIP_TABLE_SIZE],
            accesses: 0,
            hits: 0,
            misses: 0,
            prefetch_fills: 0,
            demand_fills: 0,
            useful_prefetches: 0,
            evicted_unused_prefetches: 0,
        }
    }

    /// The level this cache sits at.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// The static configuration of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Round-trip lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn index_of(&self, line_addr: u64) -> (usize, u64) {
        let line = line_addr / LINE_SIZE;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    fn ship_index(pc: u64) -> usize {
        ((pc >> 2) ^ (pc >> 13)) as usize % SHIP_TABLE_SIZE
    }

    /// Looks up `addr` as a demand access from `pc`, updating replacement and prefetch-use
    /// metadata. Returns whether the access hit.
    pub fn lookup(&mut self, addr: u64, pc: u64) -> LookupOutcome {
        self.accesses += 1;
        self.lru_clock += 1;
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        let clock = self.lru_clock;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                self.hits += 1;
                let first_use = line.prefetch && !line.used;
                if first_use {
                    self.useful_prefetches += 1;
                }
                line.used = true;
                line.prefetch = false;
                line.lru = clock;
                line.rrpv = 0;
                // SHiP: the signature that filled this line produced a re-reference.
                let sig = line.signature as usize % SHIP_TABLE_SIZE;
                self.ship_table[sig] = (self.ship_table[sig] + 1).min(3);
                let _ = pc;
                return LookupOutcome::Hit {
                    first_use_of_prefetch: first_use,
                    ready_cycle: line.ready,
                };
            }
        }
        self.misses += 1;
        LookupOutcome::Miss
    }

    /// Probes for `addr` without modifying any state. Used by tag-tracking predictors and
    /// tests.
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Marks the line containing `addr` dirty if present (store hit).
    pub fn mark_dirty(&mut self, addr: u64) {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return;
            }
        }
    }

    /// Fills the line containing `addr`, evicting a victim if the set is full.
    ///
    /// `is_prefetch` marks the new line as a prefetch (not yet demanded); `pc` is the
    /// triggering instruction used for SHiP signatures; `ready_cycle` is when the fill's
    /// data actually arrives (demand hits before that cycle must wait for it). Returns the
    /// evicted line, if any valid line had to be replaced.
    pub fn fill(
        &mut self,
        addr: u64,
        is_prefetch: bool,
        pc: u64,
        ready_cycle: u64,
    ) -> Option<EvictedLine> {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;

        if is_prefetch {
            self.prefetch_fills += 1;
        } else {
            self.demand_fills += 1;
        }

        // If already present just refresh metadata (e.g. a demand fill racing a prefetch).
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            line.rrpv = if is_prefetch { 2 } else { 0 };
            line.ready = line.ready.min(ready_cycle);
            if !is_prefetch {
                line.prefetch = false;
                line.used = true;
            }
            return None;
        }

        let victim_way = self.choose_victim(set);
        let sets_count = self.sets.len() as u64;
        let victim = {
            let line = &self.sets[set][victim_way];
            if line.valid {
                Some(EvictedLine {
                    line_addr: (line.tag * sets_count + set as u64) * LINE_SIZE,
                    dirty: line.dirty,
                    was_prefetch: line.prefetch,
                    was_used: line.used,
                    evicted_by_prefetch: is_prefetch,
                })
            } else {
                None
            }
        };

        if let Some(ev) = &victim {
            if ev.was_prefetch && !ev.was_used {
                self.evicted_unused_prefetches += 1;
                // SHiP: the filling signature produced no re-reference.
                let sig = self.sets[set][victim_way].signature as usize % SHIP_TABLE_SIZE;
                self.ship_table[sig] = self.ship_table[sig].saturating_sub(1);
            }
        }

        let signature = Self::ship_index(pc) as u16;
        let predicted_dead = self.config.replacement == Replacement::Ship
            && self.ship_table[signature as usize % SHIP_TABLE_SIZE] == 0;
        self.sets[set][victim_way] = Line {
            tag,
            valid: true,
            dirty: false,
            prefetch: is_prefetch,
            used: !is_prefetch,
            lru: clock,
            rrpv: if predicted_dead || is_prefetch {
                RRPV_MAX - 1
            } else {
                1
            },
            signature,
            ready: ready_cycle,
        };
        victim
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        // Prefer an invalid way.
        if let Some(idx) = self.sets[set].iter().position(|l| !l.valid) {
            return idx;
        }
        match self.config.replacement {
            Replacement::Lru => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .unwrap_or(0),
            Replacement::Ship => {
                // RRIP victim selection: evict a line with RRPV_MAX, aging until one exists.
                loop {
                    if let Some(idx) = self.sets[set].iter().position(|l| l.rrpv >= RRPV_MAX) {
                        return idx;
                    }
                    for l in &mut self.sets[set] {
                        l.rrpv = (l.rrpv + 1).min(RRPV_MAX);
                    }
                }
            }
        }
    }

    /// Invalidates the line containing `addr` if present (used for back-invalidation in
    /// multi-level fills and by tests).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Total lookups performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Demand hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of prefetch fills performed.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Number of prefetched lines demanded at least once.
    pub fn useful_prefetches(&self) -> u64 {
        self.useful_prefetches
    }

    /// Number of prefetched lines evicted without ever being demanded.
    pub fn evicted_unused_prefetches(&self) -> u64 {
        self.evicted_unused_prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(replacement: Replacement) -> Cache {
        Cache::new(
            CacheConfig {
                name: "T",
                size_bytes: 4 * LINE_SIZE * 2, // 2 sets, 4 ways
                ways: 4,
                latency: 3,
                mshrs: 4,
                replacement,
            },
            CacheLevel::L1d,
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny_cache(Replacement::Lru);
        assert_eq!(c.lookup(0x1000, 0x400), LookupOutcome::Miss);
        assert!(c.fill(0x1000, false, 0x400, 0).is_none());
        assert!(c.lookup(0x1000, 0x400).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x1000, false, 0, 0);
        assert!(c.lookup(0x103f, 0).is_hit());
        assert!(!c.lookup(0x1040, 0).is_hit());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache(Replacement::Lru);
        // Fill 4 ways of set 0 (stride = 2 lines because there are 2 sets).
        let stride = 2 * LINE_SIZE;
        for i in 0..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        // Touch lines 1..3 so line 0 is LRU.
        for i in 1..4u64 {
            assert!(c.lookup(i * stride, 0).is_hit());
        }
        let ev = c.fill(4 * stride, false, 0, 0).expect("set was full");
        assert_eq!(ev.line_addr, 0);
        assert!(!c.probe(0));
        assert!(c.probe(4 * stride));
    }

    #[test]
    fn prefetch_first_use_is_reported_once() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x2000, true, 0x77, 0);
        match c.lookup(0x2000, 0x77) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(first_use_of_prefetch),
            LookupOutcome::Miss => panic!("expected hit"),
        }
        match c.lookup(0x2000, 0x77) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(!first_use_of_prefetch),
            LookupOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(c.useful_prefetches(), 1);
    }

    #[test]
    fn eviction_reports_prefetch_metadata() {
        let mut c = tiny_cache(Replacement::Lru);
        let stride = 2 * LINE_SIZE;
        c.fill(0, true, 0, 0); // unused prefetch, will become LRU victim
        for i in 1..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        let ev = c.fill(4 * stride, true, 0, 0).expect("eviction");
        assert_eq!(ev.line_addr, 0);
        assert!(ev.was_prefetch);
        assert!(!ev.was_used);
        assert!(ev.evicted_by_prefetch);
        assert_eq!(c.evicted_unused_prefetches(), 1);
    }

    #[test]
    fn dirty_bit_follows_stores() {
        let mut c = tiny_cache(Replacement::Lru);
        let stride = 2 * LINE_SIZE;
        c.fill(0, false, 0, 0);
        c.mark_dirty(0x10);
        for i in 1..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        let ev = c.fill(4 * stride, false, 0, 0).expect("eviction");
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x3000, false, 0, 0);
        assert!(c.probe(0x3000));
        assert!(c.invalidate(0x3000));
        assert!(!c.probe(0x3000));
        assert!(!c.invalidate(0x3000));
    }

    #[test]
    fn ship_replacement_still_bounds_occupancy() {
        let mut c = tiny_cache(Replacement::Ship);
        for i in 0..64u64 {
            c.fill(i * LINE_SIZE, i % 3 == 0, 0x400 + (i % 7), 0);
            c.lookup(i * LINE_SIZE, 0x400 + (i % 7));
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x1000, true, 0, 0);
        assert!(c.fill(0x1000, false, 0, 0).is_none());
        // The demand refill clears the prefetch flag.
        match c.lookup(0x1000, 0) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(!first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn sets_calculation() {
        let cfg = CacheConfig {
            name: "x",
            size_bytes: 48 * 1024,
            ways: 12,
            latency: 5,
            mshrs: 16,
            replacement: Replacement::Lru,
        };
        assert_eq!(cfg.sets(), 64);
    }
}
