//! Set-associative cache model with LRU and SHiP-style replacement, per-line prefetch
//! metadata and eviction reporting.
//!
//! The cache simulates contents exactly (tags, replacement state, dirty bits) so that
//! prefetch-induced pollution, prefetch usefulness and off-chip behaviour emerge from the
//! simulated workload rather than from analytical approximations.
//!
//! Line state is stored structure-of-arrays (one flat array per field, indexed by
//! `set * ways + way`) rather than as per-line structs: the hot lookup touches only the
//! tag array until it has a hit, the tag scan over a set is a branch-free equality sweep
//! over adjacent words, and the replacement / prefetch metadata arrays stay out of the
//! cache lines the tag scan pulls in. Invalid slots hold a sentinel tag that no real
//! address can produce, so the sweep needs no per-way validity test. The observable
//! semantics — scan order, first-match priority, LRU tie-breaking on the first minimum,
//! RRIP aging, every counter's update order — are identical to the former array-of-structs
//! layout, which is what keeps end-of-run statistics byte-identical (pinned by
//! `tests/sim_oracle.rs`).

use crate::trace::LINE_SIZE;

/// Identifies a level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// First-level data cache.
    L1d,
    /// Private unified second-level cache.
    L2c,
    /// Shared last-level cache.
    Llc,
}

impl std::fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLevel::L1d => write!(f, "L1D"),
            CacheLevel::L2c => write!(f, "L2C"),
            CacheLevel::Llc => write!(f, "LLC"),
        }
    }
}

/// Replacement policy used by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Signature-based Hit Predictor (SHiP)-style re-reference interval prediction. Lines
    /// whose PC signature rarely produces re-references are inserted with a distant
    /// re-reference prediction and are evicted first.
    Ship,
}

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics output.
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Round-trip lookup latency in cycles.
    pub latency: u64,
    /// Number of miss-status holding registers (bounds outstanding misses).
    pub mshrs: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Number of sets implied by the capacity, associativity and 64-byte lines.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (LINE_SIZE * self.ways as u64)).max(1) as usize
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line was present (possibly still in flight).
    Hit {
        /// The line was brought in by a prefetch and this is the first demand touch.
        first_use_of_prefetch: bool,
        /// Cycle at which the line's data is (or was) actually available. For lines whose
        /// fill is still in flight — typically prefetches waiting on the DRAM bus — this is
        /// in the future and the demand must wait for it.
        ready_cycle: u64,
    },
    /// The line was absent.
    Miss,
}

impl LookupOutcome {
    /// Returns `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupOutcome::Hit { .. })
    }
}

/// Description of a line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (requires a writeback).
    pub dirty: bool,
    /// Whether the victim was brought in by a prefetch.
    pub was_prefetch: bool,
    /// Whether the victim was ever demanded while resident.
    pub was_used: bool,
    /// Whether the eviction was caused by a prefetch fill (i.e. the *new* line is a
    /// prefetch). Used for pollution accounting.
    pub evicted_by_prefetch: bool,
}

/// Tag stored in invalid slots. A real tag is `line_number / sets`, and line numbers are
/// physical addresses shifted right by 6, so `u64::MAX` can never collide with one: the
/// tag sweep needs no separate validity test.
const INVALID_TAG: u64 = u64::MAX;

const SHIP_TABLE_SIZE: usize = 1 << 12;
const RRPV_MAX: u8 = 3;

// Per-line metadata flag bits (packed into one byte per line).
const F_VALID: u8 = 1 << 0;
const F_DIRTY: u8 = 1 << 1;
/// Brought in by a prefetch and not yet demanded.
const F_PREFETCH: u8 = 1 << 2;
/// Demanded at least once while resident.
const F_USED: u8 = 1 << 3;

/// A set-associative cache with exact content simulation.
///
/// Line state lives in parallel flat arrays indexed by `set * ways + way` — see the
/// module docs for the layout rationale.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    level: CacheLevel,
    set_count: usize,
    ways: usize,
    /// `set_count - 1` when the set count is a power of two (the common case for every
    /// shipped configuration); the set index is then a mask and the tag a shift.
    set_mask: u64,
    /// `log2(set_count)` when the set count is a power of two.
    set_shift: u32,
    /// Whether the power-of-two fast path applies; otherwise division is used, producing
    /// the same `(set, tag)` values.
    pow2: bool,
    // --- structure-of-arrays line state, indexed by set * ways + way ---
    tags: Vec<u64>,
    flags: Vec<u8>,
    lru: Vec<u64>,
    rrpv: Vec<u8>,
    signature: Vec<u16>,
    ready: Vec<u64>,
    lru_clock: u64,
    /// SHiP signature outcome counters (2-bit saturating).
    ship_table: Vec<u8>,
    // Statistics.
    accesses: u64,
    hits: u64,
    misses: u64,
    prefetch_fills: u64,
    demand_fills: u64,
    useful_prefetches: u64,
    evicted_unused_prefetches: u64,
}

impl Cache {
    /// Creates an empty cache with the given configuration at the given level.
    pub fn new(config: CacheConfig, level: CacheLevel) -> Self {
        let set_count = config.sets();
        let ways = config.ways;
        let lines = set_count * ways;
        let pow2 = set_count.is_power_of_two();
        Self {
            config,
            level,
            set_count,
            ways,
            set_mask: set_count as u64 - 1,
            set_shift: set_count.trailing_zeros(),
            pow2,
            tags: vec![INVALID_TAG; lines],
            flags: vec![0; lines],
            lru: vec![0; lines],
            rrpv: vec![RRPV_MAX; lines],
            signature: vec![0; lines],
            ready: vec![0; lines],
            lru_clock: 0,
            ship_table: vec![1; SHIP_TABLE_SIZE],
            accesses: 0,
            hits: 0,
            misses: 0,
            prefetch_fills: 0,
            demand_fills: 0,
            useful_prefetches: 0,
            evicted_unused_prefetches: 0,
        }
    }

    /// The level this cache sits at.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// The static configuration of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Round-trip lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    #[inline]
    fn index_of(&self, line_addr: u64) -> (usize, u64) {
        let line = line_addr / LINE_SIZE;
        if self.pow2 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            (
                (line % self.set_count as u64) as usize,
                line / self.set_count as u64,
            )
        }
    }

    /// Index of the first way in `set` whose tag matches, scanning ways in order.
    /// Invalid slots hold [`INVALID_TAG`], so a plain equality sweep suffices.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
    }

    fn ship_index(pc: u64) -> usize {
        ((pc >> 2) ^ (pc >> 13)) as usize % SHIP_TABLE_SIZE
    }

    /// Looks up `addr` as a demand access from `pc`, updating replacement and prefetch-use
    /// metadata. Returns whether the access hit.
    pub fn lookup(&mut self, addr: u64, pc: u64) -> LookupOutcome {
        self.accesses += 1;
        self.lru_clock += 1;
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        if let Some(way) = self.find_way(set, tag) {
            let i = set * self.ways + way;
            self.hits += 1;
            let f = self.flags[i];
            let first_use = f & F_PREFETCH != 0 && f & F_USED == 0;
            if first_use {
                self.useful_prefetches += 1;
            }
            self.flags[i] = (f | F_USED) & !F_PREFETCH;
            self.lru[i] = self.lru_clock;
            self.rrpv[i] = 0;
            // SHiP: the signature that filled this line produced a re-reference.
            let sig = self.signature[i] as usize % SHIP_TABLE_SIZE;
            self.ship_table[sig] = (self.ship_table[sig] + 1).min(3);
            let _ = pc;
            return LookupOutcome::Hit {
                first_use_of_prefetch: first_use,
                ready_cycle: self.ready[i],
            };
        }
        self.misses += 1;
        LookupOutcome::Miss
    }

    /// Probes for `addr` without modifying any state. Used by tag-tracking predictors and
    /// tests.
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        self.find_way(set, tag).is_some()
    }

    /// Marks the line containing `addr` dirty if present (store hit).
    pub fn mark_dirty(&mut self, addr: u64) {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        if let Some(way) = self.find_way(set, tag) {
            self.flags[set * self.ways + way] |= F_DIRTY;
        }
    }

    /// Fills the line containing `addr`, evicting a victim if the set is full.
    ///
    /// `is_prefetch` marks the new line as a prefetch (not yet demanded); `pc` is the
    /// triggering instruction used for SHiP signatures; `ready_cycle` is when the fill's
    /// data actually arrives (demand hits before that cycle must wait for it). Returns the
    /// evicted line, if any valid line had to be replaced.
    pub fn fill(
        &mut self,
        addr: u64,
        is_prefetch: bool,
        pc: u64,
        ready_cycle: u64,
    ) -> Option<EvictedLine> {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;

        if is_prefetch {
            self.prefetch_fills += 1;
        } else {
            self.demand_fills += 1;
        }

        // If already present just refresh metadata (e.g. a demand fill racing a prefetch).
        if let Some(way) = self.find_way(set, tag) {
            let i = set * self.ways + way;
            self.lru[i] = clock;
            self.rrpv[i] = if is_prefetch { 2 } else { 0 };
            self.ready[i] = self.ready[i].min(ready_cycle);
            if !is_prefetch {
                self.flags[i] = (self.flags[i] | F_USED) & !F_PREFETCH;
            }
            return None;
        }

        let victim_way = self.choose_victim(set);
        let i = set * self.ways + victim_way;
        let victim = if self.flags[i] & F_VALID != 0 {
            let f = self.flags[i];
            Some(EvictedLine {
                line_addr: (self.tags[i] * self.set_count as u64 + set as u64) * LINE_SIZE,
                dirty: f & F_DIRTY != 0,
                was_prefetch: f & F_PREFETCH != 0,
                was_used: f & F_USED != 0,
                evicted_by_prefetch: is_prefetch,
            })
        } else {
            None
        };

        if let Some(ev) = &victim {
            if ev.was_prefetch && !ev.was_used {
                self.evicted_unused_prefetches += 1;
                // SHiP: the filling signature produced no re-reference.
                let sig = self.signature[i] as usize % SHIP_TABLE_SIZE;
                self.ship_table[sig] = self.ship_table[sig].saturating_sub(1);
            }
        }

        let signature = Self::ship_index(pc) as u16;
        let predicted_dead = self.config.replacement == Replacement::Ship
            && self.ship_table[signature as usize % SHIP_TABLE_SIZE] == 0;
        self.tags[i] = tag;
        self.flags[i] = F_VALID | if is_prefetch { F_PREFETCH } else { F_USED };
        self.lru[i] = clock;
        self.rrpv[i] = if predicted_dead || is_prefetch {
            RRPV_MAX - 1
        } else {
            1
        };
        self.signature[i] = signature;
        self.ready[i] = ready_cycle;
        victim
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        // Prefer an invalid way.
        if let Some(idx) = self.flags[base..base + self.ways]
            .iter()
            .position(|&f| f & F_VALID == 0)
        {
            return idx;
        }
        match self.config.replacement {
            Replacement::Lru => {
                // First minimum wins, matching `Iterator::min_by_key` on the former
                // per-line struct scan.
                let mut best = 0usize;
                let mut best_lru = self.lru[base];
                for way in 1..self.ways {
                    let stamp = self.lru[base + way];
                    if stamp < best_lru {
                        best = way;
                        best_lru = stamp;
                    }
                }
                best
            }
            Replacement::Ship => {
                // RRIP victim selection: evict a line with RRPV_MAX, aging until one exists.
                loop {
                    if let Some(idx) = self.rrpv[base..base + self.ways]
                        .iter()
                        .position(|&r| r >= RRPV_MAX)
                    {
                        return idx;
                    }
                    for r in &mut self.rrpv[base..base + self.ways] {
                        *r = (*r + 1).min(RRPV_MAX);
                    }
                }
            }
        }
    }

    /// Invalidates the line containing `addr` if present (used for back-invalidation in
    /// multi-level fills and by tests).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_addr = addr & !(LINE_SIZE - 1);
        let (set, tag) = self.index_of(line_addr);
        if let Some(way) = self.find_way(set, tag) {
            let i = set * self.ways + way;
            self.tags[i] = INVALID_TAG;
            self.flags[i] &= !F_VALID;
            return true;
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & F_VALID != 0).count()
    }

    /// Total lookups performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Demand hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of prefetch fills performed.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Number of prefetched lines demanded at least once.
    pub fn useful_prefetches(&self) -> u64 {
        self.useful_prefetches
    }

    /// Number of prefetched lines evicted without ever being demanded.
    pub fn evicted_unused_prefetches(&self) -> u64 {
        self.evicted_unused_prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(replacement: Replacement) -> Cache {
        Cache::new(
            CacheConfig {
                name: "T",
                size_bytes: 4 * LINE_SIZE * 2, // 2 sets, 4 ways
                ways: 4,
                latency: 3,
                mshrs: 4,
                replacement,
            },
            CacheLevel::L1d,
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny_cache(Replacement::Lru);
        assert_eq!(c.lookup(0x1000, 0x400), LookupOutcome::Miss);
        assert!(c.fill(0x1000, false, 0x400, 0).is_none());
        assert!(c.lookup(0x1000, 0x400).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x1000, false, 0, 0);
        assert!(c.lookup(0x103f, 0).is_hit());
        assert!(!c.lookup(0x1040, 0).is_hit());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache(Replacement::Lru);
        // Fill 4 ways of set 0 (stride = 2 lines because there are 2 sets).
        let stride = 2 * LINE_SIZE;
        for i in 0..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        // Touch lines 1..3 so line 0 is LRU.
        for i in 1..4u64 {
            assert!(c.lookup(i * stride, 0).is_hit());
        }
        let ev = c.fill(4 * stride, false, 0, 0).expect("set was full");
        assert_eq!(ev.line_addr, 0);
        assert!(!c.probe(0));
        assert!(c.probe(4 * stride));
    }

    #[test]
    fn prefetch_first_use_is_reported_once() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x2000, true, 0x77, 0);
        match c.lookup(0x2000, 0x77) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(first_use_of_prefetch),
            LookupOutcome::Miss => panic!("expected hit"),
        }
        match c.lookup(0x2000, 0x77) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(!first_use_of_prefetch),
            LookupOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(c.useful_prefetches(), 1);
    }

    #[test]
    fn eviction_reports_prefetch_metadata() {
        let mut c = tiny_cache(Replacement::Lru);
        let stride = 2 * LINE_SIZE;
        c.fill(0, true, 0, 0); // unused prefetch, will become LRU victim
        for i in 1..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        let ev = c.fill(4 * stride, true, 0, 0).expect("eviction");
        assert_eq!(ev.line_addr, 0);
        assert!(ev.was_prefetch);
        assert!(!ev.was_used);
        assert!(ev.evicted_by_prefetch);
        assert_eq!(c.evicted_unused_prefetches(), 1);
    }

    #[test]
    fn dirty_bit_follows_stores() {
        let mut c = tiny_cache(Replacement::Lru);
        let stride = 2 * LINE_SIZE;
        c.fill(0, false, 0, 0);
        c.mark_dirty(0x10);
        for i in 1..4u64 {
            c.fill(i * stride, false, 0, 0);
        }
        let ev = c.fill(4 * stride, false, 0, 0).expect("eviction");
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x3000, false, 0, 0);
        assert!(c.probe(0x3000));
        assert!(c.invalidate(0x3000));
        assert!(!c.probe(0x3000));
        assert!(!c.invalidate(0x3000));
    }

    #[test]
    fn ship_replacement_still_bounds_occupancy() {
        let mut c = tiny_cache(Replacement::Ship);
        for i in 0..64u64 {
            c.fill(i * LINE_SIZE, i % 3 == 0, 0x400 + (i % 7), 0);
            c.lookup(i * LINE_SIZE, 0x400 + (i % 7));
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = tiny_cache(Replacement::Lru);
        c.fill(0x1000, true, 0, 0);
        assert!(c.fill(0x1000, false, 0, 0).is_none());
        // The demand refill clears the prefetch flag.
        match c.lookup(0x1000, 0) {
            LookupOutcome::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(!first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn sets_calculation() {
        let cfg = CacheConfig {
            name: "x",
            size_bytes: 48 * 1024,
            ways: 12,
            latency: 5,
            mshrs: 16,
            replacement: Replacement::Lru,
        };
        assert_eq!(cfg.sets(), 64);
    }

    #[test]
    fn non_power_of_two_set_counts_still_index_correctly() {
        // 3 sets × 2 ways: exercises the division fallback of the set indexer.
        let mut c = Cache::new(
            CacheConfig {
                name: "odd",
                size_bytes: 3 * 2 * LINE_SIZE,
                ways: 2,
                latency: 1,
                mshrs: 2,
                replacement: Replacement::Lru,
            },
            CacheLevel::L1d,
        );
        assert_eq!(c.config().sets(), 3);
        for i in 0..9u64 {
            c.fill(i * LINE_SIZE, false, 0, 0);
        }
        for i in 3..9u64 {
            assert!(c.probe(i * LINE_SIZE), "line {i} should be resident");
        }
        assert_eq!(c.occupancy(), 6);
    }
}
