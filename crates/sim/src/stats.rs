//! Simulation statistics: per-epoch telemetry ([`EpochStats`]) and whole-run aggregates
//! ([`SimStats`]).
//!
//! `EpochStats` is the state-feature source for coordination policies: it carries exactly the
//! measurements listed in Table 1 of the paper (prefetcher accuracy, OCP accuracy, bandwidth
//! usage, prefetch-induced cache pollution, and the per-mechanism shares of DRAM traffic)
//! plus the reward constituents of Table 2 (cycles, LLC misses, LLC miss latency, load count,
//! mispredicted branches).

/// Telemetry collected over one coordination epoch (a fixed number of retired instructions).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochStats {
    /// Epoch sequence number (0-based).
    pub epoch_index: u64,
    /// Instructions retired in this epoch.
    pub instructions: u64,
    /// Cycles elapsed during this epoch.
    pub cycles: u64,
    /// Load instructions retired.
    pub loads: u64,
    /// Store instructions retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,

    /// L1D demand misses.
    pub l1d_misses: u64,
    /// L2C demand misses.
    pub l2c_misses: u64,
    /// LLC demand misses (loads and stores that went off-chip).
    pub llc_misses: u64,
    /// Sum of load latencies for LLC-missing loads (cycles), for average miss latency.
    pub llc_miss_latency_sum: u64,

    /// Prefetch requests issued (after coordinator filtering), across all prefetchers.
    pub prefetches_issued: u64,
    /// Prefetch fills that were later demanded (first use of a prefetched line).
    pub prefetches_useful: u64,
    /// Useful prefetches whose data was still in flight when the demand arrived (the demand
    /// stalled on the prefetch instead of missing — useful, but late).
    pub prefetches_late: u64,
    /// Prefetch fills performed from off-chip main memory.
    pub prefetch_fills_from_dram: u64,
    /// Demand misses whose line had been evicted by a prefetch fill (cache pollution).
    pub pollution_misses: u64,

    /// Off-chip predictions made (speculative requests issued).
    pub ocp_predictions: u64,
    /// Off-chip predictions that were correct (the load did go off-chip).
    pub ocp_correct: u64,
    /// Demand loads that were served by main memory (the OCP's positive class; recall
    /// denominator).
    pub loads_off_chip: u64,

    /// DRAM requests issued by demands during this epoch.
    pub dram_demand_requests: u64,
    /// DRAM requests issued by prefetchers during this epoch.
    pub dram_prefetch_requests: u64,
    /// DRAM requests issued by the OCP during this epoch (includes wasted speculation).
    pub dram_ocp_requests: u64,
    /// DRAM writeback requests during this epoch.
    pub dram_writeback_requests: u64,
    /// Cycles the DRAM data bus was busy during this epoch.
    pub dram_busy_cycles: u64,
}

impl EpochStats {
    /// Prefetcher accuracy: useful prefetches over issued prefetches (Table 1).
    pub fn prefetcher_accuracy(&self) -> f64 {
        ratio(self.prefetches_useful, self.prefetches_issued)
    }

    /// OCP accuracy: correct off-chip predictions over total off-chip predictions (Table 1).
    pub fn ocp_accuracy(&self) -> f64 {
        ratio(self.ocp_correct, self.ocp_predictions)
    }

    /// Main-memory bandwidth usage: busy bus cycles over elapsed cycles (Table 1).
    pub fn bandwidth_usage(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.dram_busy_cycles as f64 / self.cycles as f64).min(1.0)
        }
    }

    /// Prefetch-induced cache pollution: prefetch-evicted demand misses over demand misses
    /// (Table 1).
    pub fn cache_pollution(&self) -> f64 {
        ratio(self.pollution_misses, self.llc_misses)
    }

    /// Total DRAM requests issued during this epoch.
    pub fn dram_total_requests(&self) -> u64 {
        self.dram_demand_requests
            + self.dram_prefetch_requests
            + self.dram_ocp_requests
            + self.dram_writeback_requests
    }

    /// Prefetcher share of DRAM traffic (Table 1).
    pub fn prefetch_bandwidth_share(&self) -> f64 {
        ratio(self.dram_prefetch_requests, self.dram_total_requests())
    }

    /// OCP share of DRAM traffic (Table 1).
    pub fn ocp_bandwidth_share(&self) -> f64 {
        ratio(self.dram_ocp_requests, self.dram_total_requests())
    }

    /// Demand share of DRAM traffic (Table 1).
    pub fn demand_bandwidth_share(&self) -> f64 {
        ratio(self.dram_demand_requests, self.dram_total_requests())
    }

    /// Instructions per cycle during this epoch.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average latency of loads that missed the LLC, in cycles.
    pub fn avg_llc_miss_latency(&self) -> f64 {
        ratio_f(self.llc_miss_latency_sum, self.llc_misses)
    }

    /// L1D demand misses per kilo-instruction.
    pub fn l1d_mpki(&self) -> f64 {
        mpki(self.l1d_misses, self.instructions)
    }

    /// LLC demand misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        mpki(self.llc_misses, self.instructions)
    }

    /// Prefetch coverage: the fraction of would-be off-chip demand misses that prefetching
    /// turned into hits, approximated as `useful / (useful + llc_misses)` (every useful
    /// prefetch covered a miss; every remaining LLC miss went uncovered).
    pub fn prefetch_coverage(&self) -> f64 {
        ratio(
            self.prefetches_useful,
            self.prefetches_useful + self.llc_misses,
        )
    }

    /// Prefetch timeliness: the fraction of useful prefetches whose data had fully arrived
    /// before the demand touched the line (`1 - late/useful`).
    pub fn prefetch_timeliness(&self) -> f64 {
        if self.prefetches_useful == 0 {
            0.0
        } else {
            1.0 - ratio(self.prefetches_late, self.prefetches_useful)
        }
    }

    /// OCP precision: correct off-chip predictions over predictions made. Identical to
    /// [`EpochStats::ocp_accuracy`] (the paper's Table 1 name); the precision/recall pair is
    /// the telemetry layer's vocabulary.
    pub fn ocp_precision(&self) -> f64 {
        self.ocp_accuracy()
    }

    /// OCP recall: correct off-chip predictions over demand loads that actually went
    /// off-chip.
    pub fn ocp_recall(&self) -> f64 {
        ratio(self.ocp_correct, self.loads_off_chip)
    }

    /// Adds another epoch's counters into this one (used by the telemetry layer to compose
    /// whole coordination epochs into fixed-size windows). `epoch_index` keeps the first
    /// epoch's index, so an aggregated window is identified by where it starts.
    pub fn accumulate(&mut self, e: &EpochStats) {
        // Exhaustive destructuring, no rest pattern: a counter added to `EpochStats` but
        // not summed here becomes a compile error instead of silently breaking the
        // windows-compose-exactly-to-aggregates guarantee (DESIGN.md §5).
        let EpochStats {
            epoch_index: _,
            instructions,
            cycles,
            loads,
            stores,
            branches,
            branch_mispredicts,
            l1d_misses,
            l2c_misses,
            llc_misses,
            llc_miss_latency_sum,
            prefetches_issued,
            prefetches_useful,
            prefetches_late,
            prefetch_fills_from_dram,
            pollution_misses,
            ocp_predictions,
            ocp_correct,
            loads_off_chip,
            dram_demand_requests,
            dram_prefetch_requests,
            dram_ocp_requests,
            dram_writeback_requests,
            dram_busy_cycles,
        } = *e;
        self.instructions += instructions;
        self.cycles += cycles;
        self.loads += loads;
        self.stores += stores;
        self.branches += branches;
        self.branch_mispredicts += branch_mispredicts;
        self.l1d_misses += l1d_misses;
        self.l2c_misses += l2c_misses;
        self.llc_misses += llc_misses;
        self.llc_miss_latency_sum += llc_miss_latency_sum;
        self.prefetches_issued += prefetches_issued;
        self.prefetches_useful += prefetches_useful;
        self.prefetches_late += prefetches_late;
        self.prefetch_fills_from_dram += prefetch_fills_from_dram;
        self.pollution_misses += pollution_misses;
        self.ocp_predictions += ocp_predictions;
        self.ocp_correct += ocp_correct;
        self.loads_off_chip += loads_off_chip;
        self.dram_demand_requests += dram_demand_requests;
        self.dram_prefetch_requests += dram_prefetch_requests;
        self.dram_ocp_requests += dram_ocp_requests;
        self.dram_writeback_requests += dram_writeback_requests;
        self.dram_busy_cycles += dram_busy_cycles;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        (num as f64 / den as f64).min(1.0)
    }
}

fn mpki(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        events as f64 * 1000.0 / instructions as f64
    }
}

fn ratio_f(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Whole-run aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Total loads.
    pub loads: u64,
    /// Total stores.
    pub stores: u64,
    /// Total branches.
    pub branches: u64,
    /// Total mispredicted branches.
    pub branch_mispredicts: u64,
    /// Total L1D misses.
    pub l1d_misses: u64,
    /// Total L2C misses.
    pub l2c_misses: u64,
    /// Total LLC misses.
    pub llc_misses: u64,
    /// Sum of latencies of LLC-missing loads.
    pub llc_miss_latency_sum: u64,
    /// Total prefetches issued.
    pub prefetches_issued: u64,
    /// Total useful prefetches.
    pub prefetches_useful: u64,
    /// Total useful-but-late prefetches (data still in flight at first demand use).
    pub prefetches_late: u64,
    /// Total prefetch fills served from DRAM.
    pub prefetch_fills_from_dram: u64,
    /// Prefetch fills from DRAM that were never used before eviction.
    pub prefetch_fills_from_dram_unused: u64,
    /// Total pollution misses.
    pub pollution_misses: u64,
    /// Total off-chip predictions.
    pub ocp_predictions: u64,
    /// Total correct off-chip predictions.
    pub ocp_correct: u64,
    /// Total demand loads served by main memory.
    pub loads_off_chip: u64,
    /// Total DRAM requests (all kinds).
    pub dram_total_requests: u64,
    /// Total DRAM demand requests.
    pub dram_demand_requests: u64,
    /// Total DRAM prefetch requests.
    pub dram_prefetch_requests: u64,
    /// Total DRAM OCP requests.
    pub dram_ocp_requests: u64,
    /// Epoch count.
    pub epochs: u64,
}

impl SimStats {
    /// Accumulates one epoch's telemetry into the run totals.
    pub fn absorb_epoch(&mut self, e: &EpochStats) {
        self.instructions += e.instructions;
        self.cycles += e.cycles;
        self.loads += e.loads;
        self.stores += e.stores;
        self.branches += e.branches;
        self.branch_mispredicts += e.branch_mispredicts;
        self.l1d_misses += e.l1d_misses;
        self.l2c_misses += e.l2c_misses;
        self.llc_misses += e.llc_misses;
        self.llc_miss_latency_sum += e.llc_miss_latency_sum;
        self.prefetches_issued += e.prefetches_issued;
        self.prefetches_useful += e.prefetches_useful;
        self.prefetches_late += e.prefetches_late;
        self.prefetch_fills_from_dram += e.prefetch_fills_from_dram;
        self.pollution_misses += e.pollution_misses;
        self.ocp_predictions += e.ocp_predictions;
        self.ocp_correct += e.ocp_correct;
        self.loads_off_chip += e.loads_off_chip;
        self.dram_total_requests += e.dram_total_requests();
        self.dram_demand_requests += e.dram_demand_requests;
        self.dram_prefetch_requests += e.dram_prefetch_requests;
        self.dram_ocp_requests += e.dram_ocp_requests;
        self.epochs += 1;
    }

    /// Whole-run instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Whole-run prefetcher accuracy.
    pub fn prefetcher_accuracy(&self) -> f64 {
        ratio(self.prefetches_useful, self.prefetches_issued)
    }

    /// Whole-run OCP accuracy.
    pub fn ocp_accuracy(&self) -> f64 {
        ratio(self.ocp_correct, self.ocp_predictions)
    }

    /// Average LLC miss latency over the whole run.
    pub fn avg_llc_miss_latency(&self) -> f64 {
        ratio_f(self.llc_miss_latency_sum, self.llc_misses)
    }

    /// Fraction of DRAM prefetch fills that were never used (Figure 3's metric).
    pub fn offchip_prefetch_inaccuracy(&self) -> f64 {
        ratio(
            self.prefetch_fills_from_dram_unused,
            self.prefetch_fills_from_dram,
        )
    }

    /// L1D misses per kilo-instruction over the whole run.
    pub fn l1d_mpki(&self) -> f64 {
        mpki(self.l1d_misses, self.instructions)
    }

    /// Whole-run prefetch coverage (see [`EpochStats::prefetch_coverage`]).
    pub fn prefetch_coverage(&self) -> f64 {
        ratio(
            self.prefetches_useful,
            self.prefetches_useful + self.llc_misses,
        )
    }

    /// Whole-run prefetch timeliness (see [`EpochStats::prefetch_timeliness`]).
    pub fn prefetch_timeliness(&self) -> f64 {
        if self.prefetches_useful == 0 {
            0.0
        } else {
            1.0 - ratio(self.prefetches_late, self.prefetches_useful)
        }
    }

    /// Whole-run OCP recall (see [`EpochStats::ocp_recall`]).
    pub fn ocp_recall(&self) -> f64 {
        ratio(self.ocp_correct, self.loads_off_chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_epoch() -> EpochStats {
        EpochStats {
            epoch_index: 3,
            instructions: 2048,
            cycles: 4096,
            loads: 512,
            stores: 128,
            branches: 256,
            branch_mispredicts: 16,
            l1d_misses: 100,
            l2c_misses: 60,
            llc_misses: 40,
            llc_miss_latency_sum: 8000,
            prefetches_issued: 50,
            prefetches_useful: 30,
            prefetches_late: 6,
            prefetch_fills_from_dram: 45,
            pollution_misses: 10,
            ocp_predictions: 40,
            ocp_correct: 36,
            loads_off_chip: 45,
            dram_demand_requests: 40,
            dram_prefetch_requests: 45,
            dram_ocp_requests: 5,
            dram_writeback_requests: 10,
            dram_busy_cycles: 2048,
        }
    }

    #[test]
    fn table1_feature_formulas() {
        let e = sample_epoch();
        assert!((e.prefetcher_accuracy() - 0.6).abs() < 1e-12);
        assert!((e.ocp_accuracy() - 0.9).abs() < 1e-12);
        assert!((e.bandwidth_usage() - 0.5).abs() < 1e-12);
        assert!((e.cache_pollution() - 0.25).abs() < 1e-12);
        assert_eq!(e.dram_total_requests(), 100);
        assert!((e.prefetch_bandwidth_share() - 0.45).abs() < 1e-12);
        assert!((e.ocp_bandwidth_share() - 0.05).abs() < 1e-12);
        assert!((e.demand_bandwidth_share() - 0.40).abs() < 1e-12);
        assert!((e.ipc() - 0.5).abs() < 1e-12);
        assert!((e.avg_llc_miss_latency() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_metric_formulas() {
        let e = sample_epoch();
        assert!((e.l1d_mpki() - 100.0 * 1000.0 / 2048.0).abs() < 1e-9);
        assert!((e.llc_mpki() - 40.0 * 1000.0 / 2048.0).abs() < 1e-9);
        assert!((e.prefetch_coverage() - 30.0 / 70.0).abs() < 1e-12);
        assert!((e.prefetch_timeliness() - 0.8).abs() < 1e-12);
        assert_eq!(e.ocp_precision(), e.ocp_accuracy());
        assert!((e.ocp_recall() - 0.8).abs() < 1e-12);
        // No useful prefetches / no off-chip loads: the ratios degrade to zero.
        let zero = EpochStats::default();
        assert_eq!(zero.prefetch_timeliness(), 0.0);
        assert_eq!(zero.ocp_recall(), 0.0);
    }

    #[test]
    fn accumulate_sums_every_counter() {
        let e = sample_epoch();
        let mut window = EpochStats {
            epoch_index: e.epoch_index,
            ..Default::default()
        };
        window.accumulate(&e);
        window.accumulate(&e);
        assert_eq!(window.instructions, 2 * e.instructions);
        assert_eq!(window.prefetches_late, 2 * e.prefetches_late);
        assert_eq!(window.loads_off_chip, 2 * e.loads_off_chip);
        assert_eq!(window.dram_busy_cycles, 2 * e.dram_busy_cycles);
        assert_eq!(
            window.epoch_index, 3,
            "window keeps its first epoch's index"
        );
        // A window absorbed into SimStats matches the epoch-by-epoch path exactly.
        let mut via_window = SimStats::default();
        via_window.absorb_epoch(&window);
        let mut via_epochs = SimStats::default();
        via_epochs.absorb_epoch(&e);
        via_epochs.absorb_epoch(&e);
        via_window.epochs = via_epochs.epochs;
        assert_eq!(via_window, via_epochs);
    }

    #[test]
    fn ratios_are_zero_when_denominator_is_zero() {
        let e = EpochStats::default();
        assert_eq!(e.prefetcher_accuracy(), 0.0);
        assert_eq!(e.ocp_accuracy(), 0.0);
        assert_eq!(e.bandwidth_usage(), 0.0);
        assert_eq!(e.cache_pollution(), 0.0);
        assert_eq!(e.ipc(), 0.0);
        assert_eq!(e.avg_llc_miss_latency(), 0.0);
    }

    #[test]
    fn sim_stats_absorbs_epochs() {
        let mut s = SimStats::default();
        let e = sample_epoch();
        s.absorb_epoch(&e);
        s.absorb_epoch(&e);
        assert_eq!(s.instructions, 4096);
        assert_eq!(s.cycles, 8192);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.llc_misses, 80);
        assert_eq!(s.dram_total_requests, 200);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.llc_mpki() - 80.0 * 1000.0 / 4096.0).abs() < 1e-9);
        assert!((s.prefetcher_accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_usage_saturates_at_one() {
        let e = EpochStats {
            cycles: 10,
            dram_busy_cycles: 100,
            ..Default::default()
        };
        assert_eq!(e.bandwidth_usage(), 1.0);
    }
}
