//! Batched record stepping for the profiled hot path.
//!
//! The per-instruction loop used to open a `trace_gen` span around every
//! `next_record()` call and a `core_step` span around every `step()` — 2 × 40 000 span
//! open/close pairs per quick cell, which dwarfed the simulation work they were supposed
//! to measure. [`StepBatch`] amortises that: one span fetches up to [`STEP_BATCH`]
//! records into a reused buffer, a second span steps them all. Phase *shares* stay
//! meaningful (the same work is inside the same phase), only the per-span overhead
//! shrinks by the batch length.
//!
//! Correctness: a trace source is a pure record stream — it never observes simulator
//! state — so fetching records ahead of stepping them cannot reorder or alter anything.
//! The driver steps exactly the records fetched, in order, and never fetches more than
//! the remaining instruction budget, so retire counts and epoch boundaries land on the
//! same instructions as the unbatched loop.

use crate::core::CoreEngine;
use crate::hierarchy::MemoryHierarchy;
use crate::trace::{TraceRecord, TraceSource};

/// Records fetched per `trace_gen` span and stepped per `core_step` span.
///
/// Big enough to make span overhead negligible (2 spans per 64 instructions), small
/// enough that the buffer stays in L1 and a partial final batch wastes nothing.
pub(crate) const STEP_BATCH: usize = 64;

/// A reusable fetch-then-step buffer (allocated once per run, not per batch).
pub(crate) struct StepBatch {
    records: Vec<TraceRecord>,
}

impl StepBatch {
    pub(crate) fn new() -> Self {
        Self {
            records: Vec::with_capacity(STEP_BATCH),
        }
    }

    /// Refills the buffer with up to `min(STEP_BATCH, budget)` records under one
    /// `trace_gen` span. Returns `true` when the trace ended before filling the request
    /// (the caller should stop after stepping what was fetched).
    pub(crate) fn refill(&mut self, trace: &mut dyn TraceSource, budget: u64) -> bool {
        let want = (STEP_BATCH as u64).min(budget) as usize;
        self.records.clear();
        let _span = athena_probe::span(athena_probe::Phase::TraceGen);
        while self.records.len() < want {
            match trace.next_record() {
                Some(record) => self.records.push(record),
                None => return true,
            }
        }
        false
    }

    /// Steps every buffered record, in fetch order, under one `core_step` span.
    pub(crate) fn step_all(&self, engine: &mut CoreEngine, hierarchy: &mut MemoryHierarchy) {
        if self.records.is_empty() {
            return;
        }
        let _span = athena_probe::span(athena_probe::Phase::CoreStep);
        for &record in &self.records {
            engine.step(record, hierarchy);
        }
    }
}
