//! Trace record types and the [`TraceSource`] abstraction.
//!
//! The simulator is trace-driven: it consumes a stream of [`TraceRecord`]s describing retired
//! instructions (ALU operations, loads, stores and conditional branches). Traces are normally
//! produced lazily by the generators in the `athena-workloads` crate, but any iterator of
//! records works.

/// The size of a cache line in bytes. All address arithmetic in the simulator assumes this.
pub const LINE_SIZE: u64 = 64;

/// The size of a virtual page in bytes (used for page-crossing checks and OCP features).
pub const PAGE_SIZE: u64 = 4096;

/// One retired instruction in a program trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of the instruction.
    pub pc: u64,
    /// What the instruction does, as far as the timing model cares.
    pub kind: InstrKind,
}

/// The classes of instruction the timing model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// A non-memory, non-branch instruction. Completes in one cycle.
    Alu,
    /// A load from `addr`.
    ///
    /// When `dep_on_recent_load` is set the load's address depends on the data returned by
    /// the most recent preceding load (pointer chasing), so its request cannot be issued
    /// before that load completes. This is how irregular, latency-bound workloads are
    /// expressed in traces.
    Load {
        /// Byte address accessed by the load.
        addr: u64,
        /// Whether the address generation depends on the previous load's data.
        dep_on_recent_load: bool,
    },
    /// A store to `addr`. Stores retire without stalling the core but do consume cache and
    /// DRAM bandwidth (write-allocate).
    Store {
        /// Byte address written by the store.
        addr: u64,
    },
    /// A conditional branch with its resolved direction.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
}

impl TraceRecord {
    /// Creates an ALU (non-memory, non-branch) record.
    pub fn alu(pc: u64) -> Self {
        Self {
            pc,
            kind: InstrKind::Alu,
        }
    }

    /// Creates a load record.
    pub fn load(pc: u64, addr: u64, dep_on_recent_load: bool) -> Self {
        Self {
            pc,
            kind: InstrKind::Load {
                addr,
                dep_on_recent_load,
            },
        }
    }

    /// Creates a store record.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            kind: InstrKind::Store { addr },
        }
    }

    /// Creates a conditional-branch record.
    pub fn branch(pc: u64, taken: bool) -> Self {
        Self {
            pc,
            kind: InstrKind::Branch { taken },
        }
    }

    /// Returns `true` if this record is a load.
    pub fn is_load(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. })
    }

    /// Returns `true` if this record is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, InstrKind::Store { .. })
    }

    /// Returns `true` if this record is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { .. })
    }

    /// Returns the memory address touched by this record, if any.
    pub fn addr(&self) -> Option<u64> {
        match self.kind {
            InstrKind::Load { addr, .. } | InstrKind::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// Returns the cache-line-aligned address touched by this record, if any.
    pub fn line_addr(&self) -> Option<u64> {
        self.addr().map(|a| a & !(LINE_SIZE - 1))
    }
}

/// A source of trace records.
///
/// Implemented for any iterator over [`TraceRecord`], and by the replaying generators in the
/// workload crate. Sources may be infinite; the simulator stops after the requested number of
/// instructions.
pub trait TraceSource {
    /// Produces the next instruction, or `None` if the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;
}

impl<I> TraceSource for I
where
    I: Iterator<Item = TraceRecord>,
{
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.next()
    }
}

/// Returns the cache-line-aligned form of `addr`.
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}

/// Returns the page-aligned form of `addr`.
pub fn page_of(addr: u64) -> u64 {
    addr & !(PAGE_SIZE - 1)
}

/// Returns the cache-line index of `addr` within its page (0..64 for 4 KiB pages).
pub fn line_offset_in_page(addr: u64) -> u64 {
    (addr & (PAGE_SIZE - 1)) / LINE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        let l = TraceRecord::load(0x400, 0x1234, true);
        assert!(l.is_load());
        assert!(!l.is_store());
        assert_eq!(l.addr(), Some(0x1234));
        assert_eq!(l.line_addr(), Some(0x1200));

        let s = TraceRecord::store(0x404, 0xfff);
        assert!(s.is_store());
        assert_eq!(s.line_addr(), Some(0xfc0));

        let b = TraceRecord::branch(0x408, true);
        assert!(b.is_branch());
        assert_eq!(b.addr(), None);

        let a = TraceRecord::alu(0x40c);
        assert_eq!(a.addr(), None);
        assert!(!a.is_branch());
    }

    #[test]
    fn address_helpers() {
        assert_eq!(line_of(0x1001), 0x1000);
        assert_eq!(line_of(0x103f), 0x1000);
        assert_eq!(line_of(0x1040), 0x1040);
        assert_eq!(page_of(0x1fff), 0x1000);
        assert_eq!(line_offset_in_page(0x1000), 0);
        assert_eq!(line_offset_in_page(0x1fc0), 63);
    }

    #[test]
    fn iterator_is_a_trace_source() {
        let mut src = vec![TraceRecord::alu(1), TraceRecord::alu(2)].into_iter();
        assert_eq!(
            TraceSource::next_record(&mut src),
            Some(TraceRecord::alu(1))
        );
        assert_eq!(
            TraceSource::next_record(&mut src),
            Some(TraceRecord::alu(2))
        );
        assert_eq!(TraceSource::next_record(&mut src), None);
    }
}
