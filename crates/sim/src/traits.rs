//! Extension traits: [`Prefetcher`], [`OffChipPredictor`] and [`Coordinator`].
//!
//! These are the three plug-in points of the simulator. Prefetchers and off-chip predictors
//! observe the memory hierarchy at well-defined hook points; a coordinator observes per-epoch
//! telemetry and decides which mechanisms are enabled (and how aggressive prefetching is)
//! during the following epoch.

use crate::cache::CacheLevel;
use crate::stats::EpochStats;

/// A memory access observed by a prefetcher at its cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Program counter of the triggering load or store.
    pub pc: u64,
    /// Byte address of the access.
    pub addr: u64,
    /// Core cycle at which the access was performed.
    pub cycle: u64,
    /// Whether the access hit in the cache at this level.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this was its first use.
    pub first_use_of_prefetch: bool,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// A prefetch request emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Byte (typically line-aligned) address to prefetch.
    pub addr: u64,
}

impl PrefetchRequest {
    /// Creates a prefetch request for the line containing `addr`.
    pub fn new(addr: u64) -> Self {
        Self { addr }
    }
}

/// Static description of an attached prefetcher, given to coordinators at attach time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetcherInfo {
    /// The prefetcher's display name.
    pub name: &'static str,
    /// The cache level it fills into.
    pub level: CacheLevel,
    /// Its maximum prefetch degree.
    pub max_degree: u32,
}

/// A hardware data prefetcher attached to one cache level.
///
/// A prefetcher is trained by every demand access that looks up its cache level and may emit
/// up to `degree()` prefetch requests per trigger. The coordinator may change the degree (or
/// disable the prefetcher entirely) at epoch boundaries.
pub trait Prefetcher {
    /// Display name of the prefetcher (e.g. `"pythia"`).
    fn name(&self) -> &'static str;

    /// The cache level this prefetcher trains on and fills into.
    fn level(&self) -> CacheLevel;

    /// Observes one demand access at this prefetcher's level and appends any prefetch
    /// requests it wants to issue to `out`. Implementations should respect `self.degree()`
    /// when deciding how many requests to emit.
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>);

    /// Feedback: a line previously prefetched by this prefetcher was demanded.
    fn on_prefetch_hit(&mut self, _line_addr: u64) {}

    /// Feedback: a line previously prefetched by this prefetcher was evicted without use.
    fn on_prefetch_evicted_unused(&mut self, _line_addr: u64) {}

    /// The maximum number of prefetch requests this prefetcher may issue per trigger when
    /// running at full aggressiveness.
    fn max_degree(&self) -> u32;

    /// The current prefetch degree.
    fn degree(&self) -> u32;

    /// Sets the prefetch degree. Implementations clamp the value to `1..=max_degree()`.
    fn set_degree(&mut self, degree: u32);

    /// Static description used by coordinators.
    fn info(&self) -> PrefetcherInfo {
        PrefetcherInfo {
            name: self.name(),
            level: self.level(),
            max_degree: self.max_degree(),
        }
    }
}

/// Context describing a demand load, given to off-chip predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadContext {
    /// Program counter of the load.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Cache-line offset within the 4 KiB page (0..64).
    pub line_offset_in_page: u8,
    /// Byte offset within the cache line (0..64).
    pub byte_offset: u8,
    /// Whether this is the first access to its page in recent history.
    pub first_access_to_page: bool,
    /// Hash of the last few load PCs (control-flow context).
    pub recent_pc_hash: u64,
}

/// An off-chip predictor (OCP).
///
/// An OCP makes a binary prediction for each demand load with a known address: will the load
/// be served by main memory? When it predicts "off-chip", the hierarchy issues a speculative
/// request directly to the memory controller, hiding the on-chip lookup latency from the
/// critical path.
pub trait OffChipPredictor {
    /// Display name of the predictor (e.g. `"popet"`).
    fn name(&self) -> &'static str;

    /// Predicts whether the load described by `ctx` will go off-chip.
    fn predict(&mut self, ctx: &LoadContext) -> bool;

    /// Confidence of predicting "off-chip" for `ctx`, in `[0, 1]`. Used by TLP-style
    /// prefetch filtering. The default maps the binary prediction to 0.0 / 1.0.
    fn confidence(&mut self, ctx: &LoadContext) -> f32 {
        if self.predict(ctx) {
            1.0
        } else {
            0.0
        }
    }

    /// Trains the predictor with the actual outcome of the load.
    fn train(&mut self, ctx: &LoadContext, went_off_chip: bool);

    /// Notification that a line was filled into a cache level (for tag-tracking predictors).
    fn on_fill(&mut self, _line_addr: u64, _level: CacheLevel) {}

    /// Notification that a line was evicted from a cache level.
    fn on_evict(&mut self, _line_addr: u64, _level: CacheLevel) {}
}

/// The decision a coordinator hands back at an epoch boundary, applied during the next epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinationDecision {
    /// Whether the off-chip predictor is allowed to issue speculative requests.
    pub enable_ocp: bool,
    /// Per-prefetcher enable flags (same order as the attached prefetchers).
    pub prefetcher_enable: Vec<bool>,
    /// Per-prefetcher degree (clamped by each prefetcher to `1..=max_degree`).
    pub prefetcher_degree: Vec<u32>,
}

impl CoordinationDecision {
    /// Everything enabled at full aggressiveness for `n` prefetchers with the given maximum
    /// degrees.
    pub fn all_on(max_degrees: &[u32]) -> Self {
        Self {
            enable_ocp: true,
            prefetcher_enable: vec![true; max_degrees.len()],
            prefetcher_degree: max_degrees.to_vec(),
        }
    }

    /// Everything disabled for `n` prefetchers.
    pub fn all_off(n: usize) -> Self {
        Self {
            enable_ocp: false,
            prefetcher_enable: vec![false; n],
            prefetcher_degree: vec![1; n],
        }
    }

    /// Returns `true` if any prefetcher is enabled.
    pub fn any_prefetcher_enabled(&self) -> bool {
        self.prefetcher_enable.iter().any(|&e| e)
    }
}

/// A snapshot of a *learning* coordinator's internal state, taken at an epoch boundary.
///
/// Counters are cumulative since the start of the run (per-interval deltas are recovered by
/// subtracting consecutive snapshots, which the `athena-telemetry` windowing layer does).
/// Non-learning coordinators have no internals worth sampling and return `None` from
/// [`Coordinator::telemetry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoordinatorTelemetry {
    /// The exploration rate in force (ε for ε-greedy agents; 0 for deterministic policies).
    pub epsilon: f64,
    /// Number of learning updates applied so far (SARSA updates for Athena).
    pub updates: u64,
    /// Mean Q-value of a uniformly random state-action pair under the store's hashing
    /// (see `QvStore::summary` in `athena-core` for the exact definition).
    pub q_mean: f64,
    /// Lower bound on any representable Q-value in the store.
    pub q_min: f64,
    /// Upper bound on any representable Q-value in the store.
    pub q_max: f64,
    /// Cumulative count of each action chosen so far, in the policy's own action order.
    pub action_histogram: Vec<u64>,
}

/// A prefetcher/OCP coordination policy.
///
/// The simulator calls [`Coordinator::attach`] once before the run starts and
/// [`Coordinator::on_epoch_end`] at the end of every epoch with that epoch's telemetry. The
/// returned decision is applied for the following epoch. Coordinators may also filter
/// individual L1D prefetch requests (used by TLP).
pub trait Coordinator {
    /// Display name of the policy (e.g. `"athena"`).
    fn name(&self) -> &'static str;

    /// Called once before simulation with descriptions of the attached prefetchers.
    fn attach(&mut self, prefetchers: &[PrefetcherInfo]);

    /// The decision applied during the very first epoch, before any telemetry exists. The
    /// default enables everything at full aggressiveness (the hardware reset state); static
    /// policies override it so that even the first epoch follows the policy.
    fn initial_decision(&mut self, prefetchers: &[PrefetcherInfo]) -> CoordinationDecision {
        let degrees: Vec<u32> = prefetchers.iter().map(|p| p.max_degree).collect();
        CoordinationDecision::all_on(&degrees)
    }

    /// Called at the end of every epoch. Returns the decision for the next epoch.
    fn on_epoch_end(&mut self, stats: &EpochStats) -> CoordinationDecision;

    /// Optional per-request filter for L1D prefetches. `off_chip_confidence` is the OCP's
    /// confidence that the prefetch would be served from main memory. Returning `false`
    /// drops the prefetch. The default keeps every request.
    fn filter_l1d_prefetch(&mut self, _req: &PrefetchRequest, _off_chip_confidence: f32) -> bool {
        true
    }

    /// Optional snapshot of the policy's learning internals, sampled by the telemetry layer
    /// at epoch boundaries (after [`Coordinator::on_epoch_end`] has applied that epoch's
    /// update). The default — for policies with no learned state — is `None`; the simulator
    /// only calls this when agent telemetry was explicitly enabled, so implementations may
    /// do O(storage) work here without affecting ordinary runs.
    fn telemetry(&self) -> Option<CoordinatorTelemetry> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_constructors() {
        let on = CoordinationDecision::all_on(&[4, 8]);
        assert!(on.enable_ocp);
        assert_eq!(on.prefetcher_enable, vec![true, true]);
        assert_eq!(on.prefetcher_degree, vec![4, 8]);
        assert!(on.any_prefetcher_enabled());

        let off = CoordinationDecision::all_off(2);
        assert!(!off.enable_ocp);
        assert!(!off.any_prefetcher_enabled());
        assert_eq!(off.prefetcher_degree.len(), 2);
    }

    #[test]
    fn prefetch_request_is_value_like() {
        let a = PrefetchRequest::new(0x1000);
        let b = PrefetchRequest::new(0x1000);
        assert_eq!(a, b);
    }
}
