//! # athena-sim
//!
//! Trace-driven CPU / cache-hierarchy / DRAM simulator substrate used by the Athena
//! reproduction. The simulator models:
//!
//! * a wide out-of-order core as a ROB-window timing model (issue width, commit width,
//!   reorder-buffer occupancy, branch misprediction penalty driven by a built-in gshare
//!   predictor, and load-to-load dependencies from the trace),
//! * a three-level cache hierarchy (private L1D, private L2C, shared LLC) with full content
//!   simulation, LRU and SHiP-style replacement, MSHR-bounded miss overlap and per-line
//!   prefetch metadata,
//! * a bandwidth-constrained DDR-style memory controller (banks, row buffers, a shared data
//!   bus sized from the configured GB/s) on which demand, prefetch and off-chip-predictor
//!   requests contend, and
//! * per-epoch telemetry ([`EpochStats`]) consumed by coordination policies.
//!
//! The crate also defines the three extension traits the rest of the workspace plugs into:
//! [`Prefetcher`], [`OffChipPredictor`] and [`Coordinator`].
//!
//! ```
//! use athena_sim::{SimConfig, Simulator, TraceRecord, InstrKind};
//!
//! // A tiny streaming trace: every 4th instruction loads the next cache line.
//! let trace = (0..4000u64).map(|i| {
//!     if i % 4 == 0 {
//!         TraceRecord::load(0x400 + (i % 16), 0x10_0000 + i * 16, false)
//!     } else {
//!         TraceRecord::alu(0x800)
//!     }
//! });
//!
//! let config = SimConfig::golden_cove_like();
//! let mut sim = Simulator::new(config);
//! let result = sim.run(trace, 4000);
//! assert!(result.cycles > 0);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod fastmap;
pub mod hierarchy;
pub mod multicore;
pub mod stats;
pub mod trace;
pub mod traits;

pub use branch::GsharePredictor;
pub use cache::{Cache, CacheConfig, CacheLevel, EvictedLine, LookupOutcome, Replacement};
pub use config::{CoreConfig, DramConfig, SimConfig};
pub use core::{CoreEngine, SimResult, Simulator};
pub use dram::{Dram, DramRequestKind, DramStats};
pub use hierarchy::{LoadOutcome, MemoryHierarchy};
pub use multicore::{MultiCoreResult, MultiCoreSimulator};
pub use stats::{EpochStats, SimStats};
pub use trace::{InstrKind, TraceRecord, TraceSource, LINE_SIZE, PAGE_SIZE};
pub use traits::{
    AccessEvent, CoordinationDecision, Coordinator, CoordinatorTelemetry, LoadContext,
    OffChipPredictor, PrefetchRequest, Prefetcher, PrefetcherInfo,
};
