//! Bandwidth-constrained DRAM / memory-controller model.
//!
//! The model captures the two properties the paper's observations depend on:
//!
//! 1. **Finite bandwidth** — every 64-byte transfer occupies a shared data bus for a number
//!    of cycles derived from the configured GB/s, so demand requests queue behind prefetch
//!    and off-chip-predictor traffic when the bus saturates.
//! 2. **Row-buffer locality** — accesses that hit an open row pay only tCAS, while row
//!    conflicts pay tRP + tRCD + tCAS, so streaming traffic is cheaper per request than
//!    scattered traffic.

use crate::config::SimConfig;

/// Classification of a main-memory request, used for bandwidth-share accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramRequestKind {
    /// A demand load or store miss.
    Demand,
    /// A prefetcher-generated fill.
    Prefetch,
    /// A speculative fetch issued by an off-chip predictor.
    Ocp,
    /// A dirty-line writeback.
    Writeback,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    next_free: u64,
}

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total requests served.
    pub total_requests: u64,
    /// Demand requests served.
    pub demand_requests: u64,
    /// Prefetch requests served.
    pub prefetch_requests: u64,
    /// OCP speculative requests served.
    pub ocp_requests: u64,
    /// Writeback requests served.
    pub writeback_requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses/conflicts.
    pub row_misses: u64,
    /// Total cycles the data bus was busy.
    pub bus_busy_cycles: u64,
    /// Sum over requests of (completion - request) latency, demand requests only.
    pub demand_latency_sum: u64,
}

/// The DRAM channel model.
#[derive(Debug, Clone)]
pub struct Dram {
    banks: Vec<Bank>,
    bus_next_free: u64,
    bus_cycles_per_line: u64,
    trcd: u64,
    trp: u64,
    tcas: u64,
    row_bytes: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model from the system configuration.
    pub fn new(config: &SimConfig) -> Self {
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    next_free: 0
                };
                config.dram.banks
            ],
            bus_next_free: 0,
            bus_cycles_per_line: config.dram_cycles_per_line(),
            trcd: config.ns_to_cycles(config.dram.trcd_ns),
            trp: config.ns_to_cycles(config.dram.trp_ns),
            tcas: config.ns_to_cycles(config.dram.tcas_ns),
            row_bytes: config.dram.row_buffer_bytes,
            stats: DramStats::default(),
        }
    }

    /// Cycles of bus occupancy charged per 64-byte line at the configured bandwidth.
    pub fn bus_cycles_per_line(&self) -> u64 {
        self.bus_cycles_per_line
    }

    /// Issues a request for the line containing `addr` at `request_cycle` and returns the
    /// cycle at which its data transfer completes.
    pub fn access(&mut self, addr: u64, request_cycle: u64, kind: DramRequestKind) -> u64 {
        let nbanks = self.banks.len() as u64;
        let row = addr / self.row_bytes;
        let bank_idx = (row % nbanks) as usize;
        let bank = &mut self.banks[bank_idx];

        let start = request_cycle.max(bank.next_free);
        let (array_latency, row_hit) = match bank.open_row {
            Some(open) if open == row => (self.tcas, true),
            Some(_) => (self.trp + self.trcd + self.tcas, false),
            None => (self.trcd + self.tcas, false),
        };
        bank.open_row = Some(row);

        let data_ready = start + array_latency;
        let bus_start = data_ready.max(self.bus_next_free);
        let done = bus_start + self.bus_cycles_per_line;
        self.bus_next_free = done;
        bank.next_free = data_ready.max(start + self.tcas);

        self.stats.total_requests += 1;
        self.stats.bus_busy_cycles += self.bus_cycles_per_line;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        match kind {
            DramRequestKind::Demand => {
                self.stats.demand_requests += 1;
                self.stats.demand_latency_sum += done - request_cycle;
            }
            DramRequestKind::Prefetch => self.stats.prefetch_requests += 1,
            DramRequestKind::Ocp => self.stats.ocp_requests += 1,
            DramRequestKind::Writeback => self.stats.writeback_requests += 1,
        }
        done
    }

    /// Returns the cycle at which the data bus next becomes free. Used by the hierarchy for
    /// bandwidth-usage telemetry.
    pub fn bus_next_free(&self) -> u64 {
        self.bus_next_free
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Takes a snapshot of the statistics (used for per-epoch deltas).
    pub fn stats_snapshot(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram_at(gbps: f64) -> Dram {
        let cfg = SimConfig::golden_cove_like().with_bandwidth(gbps);
        Dram::new(&cfg)
    }

    #[test]
    fn single_access_latency_includes_array_and_bus() {
        let mut d = dram_at(3.2);
        let done = d.access(0x10_0000, 100, DramRequestKind::Demand);
        // First access: tRCD + tCAS = 100 cycles, plus 80 cycles of bus occupancy.
        assert_eq!(done, 100 + 100 + 80);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_cheaper_than_row_conflict() {
        let mut d = dram_at(12.8);
        let first = d.access(0x10_0000, 0, DramRequestKind::Demand);
        // Same row again.
        let second = d.access(0x10_0040, first, DramRequestKind::Demand);
        // Different row, same bank (stride by row_bytes * banks).
        let third = d.access(0x10_0000 + 2048 * 8, second, DramRequestKind::Demand);
        let hit_latency = second - first;
        let conflict_latency = third - second;
        assert!(hit_latency < conflict_latency);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn bus_serialises_concurrent_requests() {
        let mut d = dram_at(3.2);
        // Ten requests all issued at cycle 0 to different banks: the bus forces them to
        // complete at least 80 cycles apart.
        let mut completions: Vec<u64> = (0..10u64)
            .map(|i| d.access(i * 2048, 0, DramRequestKind::Demand))
            .collect();
        completions.sort_unstable();
        for pair in completions.windows(2) {
            assert!(pair[1] - pair[0] >= 80, "bus did not serialise: {:?}", pair);
        }
    }

    #[test]
    fn higher_bandwidth_drains_queue_faster() {
        let mut slow = dram_at(1.6);
        let mut fast = dram_at(12.8);
        let slow_done = (0..20u64)
            .map(|i| slow.access(i * 4096, 0, DramRequestKind::Demand))
            .max()
            .unwrap();
        let fast_done = (0..20u64)
            .map(|i| fast.access(i * 4096, 0, DramRequestKind::Demand))
            .max()
            .unwrap();
        assert!(fast_done * 2 < slow_done);
    }

    #[test]
    fn request_kind_accounting() {
        let mut d = dram_at(3.2);
        d.access(0, 0, DramRequestKind::Demand);
        d.access(4096, 0, DramRequestKind::Prefetch);
        d.access(8192, 0, DramRequestKind::Ocp);
        d.access(12288, 0, DramRequestKind::Writeback);
        let s = d.stats();
        assert_eq!(s.total_requests, 4);
        assert_eq!(s.demand_requests, 1);
        assert_eq!(s.prefetch_requests, 1);
        assert_eq!(s.ocp_requests, 1);
        assert_eq!(s.writeback_requests, 1);
        assert_eq!(s.bus_busy_cycles, 4 * 80);
    }

    #[test]
    fn completion_never_precedes_request() {
        let mut d = dram_at(6.4);
        for i in 0..100u64 {
            let req_cycle = i * 7;
            let done = d.access(i * 64, req_cycle, DramRequestKind::Demand);
            assert!(done > req_cycle);
        }
    }
}
