//! The core timing model ([`CoreEngine`]) and the single-core simulation driver
//! ([`Simulator`]).
//!
//! The core is modelled as a ROB window: up to `issue_width` instructions enter the reorder
//! buffer per cycle, each instruction obtains a completion cycle (one cycle for ALU work,
//! branch-resolution plus a penalty for mispredicted branches, the memory hierarchy's answer
//! for loads), and instructions retire in order at up to `commit_width` per cycle. A load
//! whose trace record is marked dependent on the previous load cannot issue its memory
//! request before that load completes, which is how pointer-chasing (latency-bound) code is
//! expressed.

use std::collections::VecDeque;

use crate::batch::StepBatch;
use crate::branch::GsharePredictor;
use crate::config::SimConfig;
use crate::dram::DramStats;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{EpochStats, SimStats};
use crate::trace::{InstrKind, TraceRecord, TraceSource};
use crate::traits::{Coordinator, CoordinatorTelemetry, OffChipPredictor, Prefetcher};

/// The result of a single-core simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles taken.
    pub cycles: u64,
    /// Whole-run aggregate statistics.
    pub stats: SimStats,
    /// End-of-run DRAM-channel statistics (row-buffer behaviour, bus occupancy, per-kind
    /// request counts, demand latency sum). For a multi-core run every core reports the
    /// *shared* channel's totals, since there is one channel; single-core runs report
    /// their private channel.
    pub dram: DramStats,
    /// Telemetry of every epoch, in order. Useful for phase-level analysis and the
    /// case-study experiments.
    pub epochs: Vec<EpochStats>,
    /// Per-epoch snapshots of the coordinator's learning internals, positionally aligned
    /// with `epochs`: entry *i* is the snapshot taken when epoch *i* closed, `None` when
    /// the coordinator reported none for that epoch (a policy may legitimately warm up
    /// before it has internals worth sampling). Empty unless agent telemetry was enabled
    /// ([`Simulator::with_agent_telemetry`] / [`CoreEngine::enable_agent_telemetry`]) —
    /// sampling reads the whole QVStore once per epoch, so it is strictly opt-in.
    pub agent_epochs: Vec<Option<CoordinatorTelemetry>>,
}

impl SimResult {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The per-core instruction-stepping state machine.
///
/// Used directly by [`Simulator`] for single-core runs and by
/// [`crate::multicore::MultiCoreSimulator`] for round-robin multi-core runs.
pub struct CoreEngine {
    rob_size: usize,
    issue_width: u64,
    commit_width: usize,
    epoch_len: u64,
    mispredict_penalty: u64,

    rob: VecDeque<u64>,
    recent_retires: VecDeque<u64>,
    fetch_cycle: u64,
    issued_this_cycle: u64,
    last_alloc_cycle: u64,
    last_retire: u64,
    last_load_completion: u64,

    retired: u64,
    epoch_index: u64,
    epoch_start_cycle: u64,
    epoch_start_instr: u64,
    epoch_branches: u64,
    epoch_mispredicts: u64,

    branch_predictor: GsharePredictor,
    stats: SimStats,
    epochs: Vec<EpochStats>,
    collect_agent_telemetry: bool,
    agent_epochs: Vec<Option<CoordinatorTelemetry>>,
}

impl CoreEngine {
    /// Creates a fresh engine for a core described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        Self {
            rob_size: config.core.rob_size,
            issue_width: u64::from(config.core.issue_width.max(1)),
            commit_width: config.core.commit_width.max(1) as usize,
            epoch_len: config.epoch_len.max(1),
            mispredict_penalty: config.core.mispredict_penalty,
            rob: VecDeque::with_capacity(config.core.rob_size),
            recent_retires: VecDeque::with_capacity(config.core.commit_width as usize),
            fetch_cycle: 0,
            issued_this_cycle: 0,
            last_alloc_cycle: 0,
            last_retire: 0,
            last_load_completion: 0,
            retired: 0,
            epoch_index: 0,
            epoch_start_cycle: 0,
            epoch_start_instr: 0,
            epoch_branches: 0,
            epoch_mispredicts: 0,
            branch_predictor: GsharePredictor::default_sized(),
            stats: SimStats::default(),
            epochs: Vec::new(),
            collect_agent_telemetry: false,
            agent_epochs: Vec::new(),
        }
    }

    /// Enables per-epoch coordinator snapshots (see [`SimResult::agent_epochs`]). Disabled
    /// by default: the snapshot walks the agent's value store, and runs that do not ask for
    /// a timeline must not pay for one.
    pub fn enable_agent_telemetry(&mut self) {
        self.collect_agent_telemetry = true;
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current core cycle (retire time of the youngest retired instruction).
    pub fn cycles(&self) -> u64 {
        self.last_retire
    }

    /// Processes one trace record against `hierarchy`.
    pub fn step(&mut self, record: TraceRecord, hierarchy: &mut MemoryHierarchy) {
        // --- allocate into the ROB ---
        let rob_free_cycle = if self.rob.len() >= self.rob_size {
            self.rob.pop_front().unwrap_or(0)
        } else {
            0
        };
        let mut alloc = self.fetch_cycle.max(rob_free_cycle);
        if alloc == self.last_alloc_cycle {
            self.issued_this_cycle += 1;
            if self.issued_this_cycle >= self.issue_width {
                alloc += 1;
                self.issued_this_cycle = 0;
            }
        } else {
            self.issued_this_cycle = 1;
        }
        self.last_alloc_cycle = alloc;
        self.fetch_cycle = self.fetch_cycle.max(alloc);

        // --- execute ---
        let completion = match record.kind {
            InstrKind::Alu => alloc + 1,
            InstrKind::Branch { taken } => {
                self.epoch_branches += 1;
                let mispredicted = self.branch_predictor.predict_and_train(record.pc, taken);
                let resolve = alloc + 1;
                if mispredicted {
                    self.epoch_mispredicts += 1;
                    self.fetch_cycle = self.fetch_cycle.max(resolve + self.mispredict_penalty);
                }
                resolve
            }
            InstrKind::Load {
                addr,
                dep_on_recent_load,
            } => {
                let request_cycle = if dep_on_recent_load {
                    alloc.max(self.last_load_completion)
                } else {
                    alloc
                };
                let outcome = hierarchy.demand_load(record.pc, addr, request_cycle);
                self.last_load_completion = outcome.completion_cycle;
                outcome.completion_cycle
            }
            InstrKind::Store { addr } => {
                hierarchy.demand_store(record.pc, addr, alloc);
                alloc + 1
            }
        };

        // --- retire in order, bounded by commit width ---
        let mut retire = completion.max(self.last_retire);
        if self.recent_retires.len() >= self.commit_width {
            if let Some(&old) = self.recent_retires.front() {
                retire = retire.max(old + 1);
            }
            self.recent_retires.pop_front();
        }
        self.recent_retires.push_back(retire);
        self.last_retire = retire;
        self.rob.push_back(retire);
        self.retired += 1;

        // --- epoch boundary ---
        if self.retired - self.epoch_start_instr >= self.epoch_len {
            self.close_epoch(hierarchy);
        }
    }

    fn close_epoch(&mut self, hierarchy: &mut MemoryHierarchy) {
        let _span = athena_probe::span(athena_probe::Phase::CoordinatorUpdate);
        let core_side = EpochStats {
            epoch_index: self.epoch_index,
            instructions: self.retired - self.epoch_start_instr,
            cycles: self.last_retire.saturating_sub(self.epoch_start_cycle),
            branches: self.epoch_branches,
            branch_mispredicts: self.epoch_mispredicts,
            ..Default::default()
        };
        let e = hierarchy.end_epoch(&core_side);
        self.stats.absorb_epoch(&e);
        self.epochs.push(e);
        if self.collect_agent_telemetry {
            // Sampled after end_epoch, so the snapshot includes this epoch's SARSA update
            // and the action just chosen for the next epoch. One entry is pushed per
            // epoch — `None` included — so the vector stays positionally aligned with
            // `epochs` even for a policy that only reports telemetry intermittently.
            self.agent_epochs.push(hierarchy.coordinator_telemetry());
        }
        self.epoch_index += 1;
        self.epoch_start_cycle = self.last_retire;
        self.epoch_start_instr = self.retired;
        self.epoch_branches = 0;
        self.epoch_mispredicts = 0;
    }

    /// Closes the final partial epoch (if any) and produces the run result.
    pub fn finish(mut self, hierarchy: &mut MemoryHierarchy) -> SimResult {
        if self.retired > self.epoch_start_instr {
            self.close_epoch(hierarchy);
        }
        self.stats.prefetch_fills_from_dram = hierarchy.prefetch_fills_from_dram();
        self.stats.prefetch_fills_from_dram_unused = hierarchy.prefetch_fills_from_dram_unused();
        SimResult {
            instructions: self.retired,
            cycles: self.last_retire,
            stats: self.stats,
            dram: hierarchy.dram_stats(),
            epochs: self.epochs,
            agent_epochs: self.agent_epochs,
        }
    }
}

/// A single-core, trace-driven simulator instance.
///
/// Construct it, attach prefetchers / an OCP / a coordinator, then call [`Simulator::run`].
pub struct Simulator {
    config: SimConfig,
    hierarchy: MemoryHierarchy,
    agent_telemetry: bool,
}

impl Simulator {
    /// Creates a simulator with no prefetchers, no OCP and no coordinator attached.
    pub fn new(config: SimConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(config.clone());
        Self {
            config,
            hierarchy,
            agent_telemetry: false,
        }
    }

    /// Enables per-epoch coordinator snapshots in the results of subsequent runs (builder
    /// style; see [`SimResult::agent_epochs`]). Off by default — the disabled path costs
    /// nothing.
    pub fn with_agent_telemetry(mut self) -> Self {
        self.agent_telemetry = true;
        self
    }

    /// Attaches a data prefetcher (builder style).
    pub fn with_prefetcher(mut self, prefetcher: Box<dyn Prefetcher>) -> Self {
        self.hierarchy.attach_prefetcher(prefetcher);
        self
    }

    /// Attaches an off-chip predictor (builder style).
    pub fn with_ocp(mut self, ocp: Box<dyn OffChipPredictor>) -> Self {
        self.hierarchy.attach_ocp(ocp);
        self
    }

    /// Attaches a coordination policy (builder style). Attach prefetchers and the OCP first
    /// so the coordinator sees the final configuration.
    pub fn with_coordinator(mut self, coordinator: Box<dyn Coordinator>) -> Self {
        self.hierarchy.attach_coordinator(coordinator);
        self
    }

    /// Read access to the memory hierarchy (for tests and reporting).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Runs the simulation for at most `max_instructions` instructions from `trace`.
    ///
    /// With the profiler off this is a plain fetch/step loop with zero probe bookkeeping;
    /// with it on, records are fetched and stepped in batches so the `trace_gen` /
    /// `core_step` spans open once per batch instead of once per instruction (the record
    /// *sequence* and every step are identical either way — trace generation does not
    /// observe simulator state, so prefetching records cannot change a result byte).
    pub fn run<T: TraceSource>(&mut self, mut trace: T, max_instructions: u64) -> SimResult {
        let mut engine = CoreEngine::new(&self.config);
        if self.agent_telemetry {
            engine.enable_agent_telemetry();
        }
        if !athena_probe::profiling_enabled() {
            while engine.retired() < max_instructions {
                let Some(record) = trace.next_record() else {
                    break;
                };
                engine.step(record, &mut self.hierarchy);
            }
            return engine.finish(&mut self.hierarchy);
        }
        let mut batch = StepBatch::new();
        while engine.retired() < max_instructions {
            let exhausted = batch.refill(&mut trace, max_instructions - engine.retired());
            batch.step_all(&mut engine, &mut self.hierarchy);
            if exhausted {
                break;
            }
        }
        engine.finish(&mut self.hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu_trace(n: u64) -> impl Iterator<Item = TraceRecord> {
        (0..n).map(|i| TraceRecord::alu(0x400 + (i % 64) * 4))
    }

    #[test]
    fn alu_only_trace_approaches_issue_width_ipc() {
        let mut sim = Simulator::new(SimConfig::golden_cove_like());
        let r = sim.run(alu_trace(60_000), 60_000);
        assert_eq!(r.instructions, 60_000);
        // With a 6-wide core and no stalls, IPC should be close to 6.
        assert!(r.ipc() > 4.0, "ipc was {}", r.ipc());
        assert!(r.ipc() <= 6.05);
    }

    #[test]
    fn dependent_loads_are_slower_than_independent_loads() {
        let base = SimConfig::golden_cove_like();
        let make_trace = |dep: bool| {
            (0..20_000u64).map(move |i| {
                if i % 4 == 0 {
                    // Large stride so every load misses all caches.
                    TraceRecord::load(0x400, 0x1000_0000 + i * 4096, dep)
                } else {
                    TraceRecord::alu(0x800)
                }
            })
        };
        let mut sim_indep = Simulator::new(base.clone());
        let indep = sim_indep.run(make_trace(false), 20_000);
        let mut sim_dep = Simulator::new(base);
        let dep = sim_dep.run(make_trace(true), 20_000);
        assert!(
            dep.cycles > indep.cycles * 2,
            "dependent-load chain should be much slower: dep={} indep={}",
            dep.cycles,
            indep.cycles
        );
    }

    #[test]
    fn cache_hits_make_reuse_fast() {
        // A small working set reused many times should be far faster than a streaming
        // working set of the same instruction count.
        let small =
            (0..40_000u64).map(|i| TraceRecord::load(0x400, 0x10_0000 + (i % 64) * 64, false));
        let large = (0..40_000u64).map(|i| TraceRecord::load(0x400, 0x10_0000 + i * 4096, false));
        let mut sim_small = Simulator::new(SimConfig::golden_cove_like());
        let rs = sim_small.run(small, 40_000);
        let mut sim_large = Simulator::new(SimConfig::golden_cove_like());
        let rl = sim_large.run(large, 40_000);
        assert!(rs.ipc() > rl.ipc() * 3.0);
        assert!(rl.stats.llc_mpki() > 100.0);
        assert!(rs.stats.llc_mpki() < 5.0);
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        // Random (unpredictable) branches vs always-taken branches.
        let predictable = (0..30_000u64).map(|i| {
            if i % 3 == 0 {
                TraceRecord::branch(0x500, true)
            } else {
                TraceRecord::alu(0x800)
            }
        });
        let mut x = 0x1234_5678_9abc_def0u64;
        let random = (0..30_000u64).map(move |i| {
            if i % 3 == 0 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                TraceRecord::branch(0x500, x & 1 == 0)
            } else {
                TraceRecord::alu(0x800)
            }
        });
        let mut sp = Simulator::new(SimConfig::golden_cove_like());
        let rp = sp.run(predictable, 30_000);
        let mut sr = Simulator::new(SimConfig::golden_cove_like());
        let rr = sr.run(random, 30_000);
        assert!(rr.cycles > rp.cycles);
        assert!(rr.stats.branch_mispredicts > rp.stats.branch_mispredicts * 5);
    }

    #[test]
    fn epochs_partition_the_run() {
        let mut sim = Simulator::new(SimConfig::golden_cove_like().with_epoch_len(1000));
        let r = sim.run(alu_trace(10_500), 10_500);
        assert_eq!(r.epochs.len(), 11);
        let total_instr: u64 = r.epochs.iter().map(|e| e.instructions).sum();
        assert_eq!(total_instr, 10_500);
        let total_cycles: u64 = r.epochs.iter().map(|e| e.cycles).sum();
        assert_eq!(total_cycles, r.cycles);
    }

    #[test]
    fn run_stops_when_trace_ends() {
        let mut sim = Simulator::new(SimConfig::golden_cove_like());
        let r = sim.run(alu_trace(100), 1_000_000);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn bandwidth_constrained_streaming_is_slower() {
        let make = || (0..30_000u64).map(|i| TraceRecord::load(0x400, 0x2000_0000 + i * 64, false));
        let mut narrow = Simulator::new(SimConfig::golden_cove_like().with_bandwidth(1.6));
        let rn = narrow.run(make(), 30_000);
        let mut wide = Simulator::new(SimConfig::golden_cove_like().with_bandwidth(12.8));
        let rw = wide.run(make(), 30_000);
        assert!(
            rn.cycles as f64 > rw.cycles as f64 * 1.5,
            "narrow={} wide={}",
            rn.cycles,
            rw.cycles
        );
    }
}
