//! Gshare conditional branch predictor.
//!
//! The core uses a gshare predictor both to charge misprediction penalties in the timing
//! model and to supply the "number of mispredicted branches" metric that Athena's
//! uncorrelated reward component uses as a workload-phase-change signal.

/// A gshare branch predictor with a global history register and a table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` counters and `history_bits` of global history.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        Self {
            table: vec![1; 1usize << index_bits],
            history: 0,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// A reasonably sized default (16K counters, 12 bits of history).
    pub fn default_sized() -> Self {
        Self::new(14, 12)
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) % self.table.len()
    }

    /// Predicts the branch at `pc`, observes the actual `taken` outcome, updates the
    /// predictor, and returns `true` if the branch was mispredicted.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        let idx = self.index(pc);
        let predicted_taken = self.table[idx] >= 2;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        if taken {
            self.table[idx] = (self.table[idx] + 1).min(3);
        } else {
            self.table[idx] = self.table[idx].saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        mispredicted
    }

    /// Total branches predicted.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total branches mispredicted.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in [0, 1]; 0 if no branches were seen.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl Default for GsharePredictor {
    fn default() -> Self {
        Self::default_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_is_learned() {
        let mut p = GsharePredictor::default_sized();
        let mut late_mispredicts = 0;
        for i in 0..1000 {
            let m = p.predict_and_train(0x400, true);
            // The global history register needs its 12 bits to saturate before the index
            // stabilises, so only count mispredictions after a warm-up.
            if i >= 20 && m {
                late_mispredicts += 1;
            }
        }
        assert_eq!(late_mispredicts, 0);
        assert!(p.misprediction_rate() < 0.05);
    }

    #[test]
    fn alternating_pattern_is_learned_through_history() {
        let mut p = GsharePredictor::default_sized();
        let mut late_mispredicts = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let m = p.predict_and_train(0x500, taken);
            if i >= 200 && m {
                late_mispredicts += 1;
            }
        }
        assert!(
            late_mispredicts < 50,
            "history should capture the alternation, got {late_mispredicts}"
        );
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = GsharePredictor::default_sized();
        // A pseudo-random but deterministic direction stream.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut mispredicts = 0;
        let n = 10_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.predict_and_train(0x600 + (x % 16) * 4, x & 1 == 0) {
                mispredicts += 1;
            }
        }
        let rate = mispredicts as f64 / n as f64;
        assert!(
            rate > 0.3,
            "random branches should mispredict often, rate={rate}"
        );
    }

    #[test]
    fn counters_track_totals() {
        let mut p = GsharePredictor::new(8, 4);
        for i in 0..100u64 {
            p.predict_and_train(i * 4, i % 3 == 0);
        }
        assert_eq!(p.predictions(), 100);
        assert!(p.mispredictions() <= 100);
    }
}
