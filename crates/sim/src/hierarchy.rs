//! The memory hierarchy: three cache levels, the DRAM channel, attached prefetchers, the
//! off-chip predictor and per-epoch telemetry.
//!
//! This module glues together the content-simulating caches of [`crate::cache`] and the
//! bandwidth model of [`crate::dram`], and implements the three speculative paths the paper
//! studies:
//!
//! * **demand path** — loads/stores traverse L1D → L2C → LLC → DRAM, paying each level's
//!   lookup latency serially;
//! * **prefetch path** — prefetchers attached to L1D or L2C observe demand accesses at their
//!   level and issue fills that may come from a lower cache level or from DRAM;
//! * **off-chip prediction path** — when enabled, the OCP predicts for every demand load
//!   whether it will go off-chip and, if so, starts fetching from DRAM after only
//!   `ocp_issue_latency` cycles, hiding the on-chip lookup serialisation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::cache::{Cache, CacheLevel, EvictedLine, LookupOutcome};
use crate::config::SimConfig;
use crate::dram::{Dram, DramRequestKind, DramStats};
use crate::fastmap::{FxHashMap, FxHashSet};
use crate::stats::EpochStats;
use crate::trace::{line_of, line_offset_in_page, page_of};
use crate::traits::{
    AccessEvent, CoordinationDecision, Coordinator, LoadContext, OffChipPredictor, PrefetchRequest,
    Prefetcher,
};

/// Bound on the bookkeeping sets used for pollution and provenance tracking, to keep memory
/// usage flat on very long runs.
const TRACKING_SET_CAP: usize = 1 << 16;

/// The outcome of a demand load as seen by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Cycle at which the load's data is available to dependents.
    pub completion_cycle: u64,
    /// Whether the load was served by main memory.
    pub went_off_chip: bool,
}

/// The full memory subsystem of one core (plus the shared LLC/DRAM in single-core runs).
pub struct MemoryHierarchy {
    config: SimConfig,
    l1d: Cache,
    l2c: Cache,
    llc: Cache,
    dram: Rc<RefCell<Dram>>,

    prefetchers: Vec<Box<dyn Prefetcher>>,
    ocp: Option<Box<dyn OffChipPredictor>>,
    coordinator: Option<Box<dyn Coordinator>>,
    decision: CoordinationDecision,

    epoch: EpochStats,
    dram_at_epoch_start: DramStats,

    /// LLC lines evicted by prefetch fills; a subsequent demand miss on one of these is a
    /// pollution miss.
    pollution_victims: FxHashSet<u64>,
    /// Lines currently resident that were prefetched from DRAM and not yet demanded,
    /// mapped to the index of the prefetcher that requested them.
    dram_prefetch_provenance: FxHashMap<u64, usize>,
    /// Lines prefetched (from anywhere) and not yet used, mapped to prefetcher index, for
    /// usefulness feedback routing.
    prefetch_provenance: FxHashMap<u64, usize>,
    /// Recently touched pages, for the `first_access_to_page` OCP feature.
    recent_pages: VecDeque<u64>,
    /// Rolling hash of the last few load PCs, for OCP context features.
    recent_pc_hash: u64,

    /// Recycled per-trigger prefetch-request batches: `(prefetcher index, requests)`
    /// pairs filled and drained by [`MemoryHierarchy::trigger_prefetchers`]. Kept between
    /// calls (with their inner buffers) so the per-access hot path performs no heap
    /// allocation in steady state.
    pf_batches: Vec<(usize, Vec<PrefetchRequest>)>,
    /// Pool of empty request buffers recycled by `trigger_prefetchers`.
    pf_pool: Vec<Vec<PrefetchRequest>>,

    /// Cumulative counters that are not part of `EpochStats`.
    total_prefetch_fills_from_dram: u64,
    total_prefetch_fills_from_dram_unused: u64,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from the configuration with no prefetchers and no OCP attached.
    pub fn new(config: SimConfig) -> Self {
        let dram = Rc::new(RefCell::new(Dram::new(&config)));
        Self::with_shared_dram(config, dram)
    }

    /// Builds a hierarchy that shares a DRAM channel with other hierarchies (multi-core).
    pub fn with_shared_dram(config: SimConfig, dram: Rc<RefCell<Dram>>) -> Self {
        let l1d = Cache::new(config.l1d, CacheLevel::L1d);
        let l2c = Cache::new(config.l2c, CacheLevel::L2c);
        let llc = Cache::new(config.llc, CacheLevel::Llc);
        Self {
            config,
            l1d,
            l2c,
            llc,
            dram,
            prefetchers: Vec::new(),
            ocp: None,
            coordinator: None,
            decision: CoordinationDecision::all_on(&[]),
            epoch: EpochStats::default(),
            dram_at_epoch_start: DramStats::default(),
            pollution_victims: FxHashSet::default(),
            dram_prefetch_provenance: FxHashMap::default(),
            prefetch_provenance: FxHashMap::default(),
            recent_pages: VecDeque::with_capacity(64),
            recent_pc_hash: 0,
            pf_batches: Vec::new(),
            pf_pool: Vec::new(),
            total_prefetch_fills_from_dram: 0,
            total_prefetch_fills_from_dram_unused: 0,
        }
    }

    /// Attaches a prefetcher. Prefetchers are triggered in attach order.
    pub fn attach_prefetcher(&mut self, prefetcher: Box<dyn Prefetcher>) {
        self.prefetchers.push(prefetcher);
        let degrees: Vec<u32> = self.prefetchers.iter().map(|p| p.max_degree()).collect();
        self.decision = CoordinationDecision::all_on(&degrees);
    }

    /// Attaches the off-chip predictor.
    pub fn attach_ocp(&mut self, ocp: Box<dyn OffChipPredictor>) {
        self.ocp = Some(ocp);
    }

    /// Attaches the coordination policy. The coordinator is told about the currently
    /// attached prefetchers, so attach prefetchers first.
    pub fn attach_coordinator(&mut self, mut coordinator: Box<dyn Coordinator>) {
        let infos = self.prefetcher_infos();
        coordinator.attach(&infos);
        let initial = coordinator.initial_decision(&infos);
        self.coordinator = Some(coordinator);
        self.apply_decision(initial);
    }

    /// Returns the name of the attached coordinator, if any.
    pub fn coordinator_name(&self) -> Option<&'static str> {
        self.coordinator.as_ref().map(|c| c.name())
    }

    /// Snapshot of the attached coordinator's learning internals (`None` when no
    /// coordinator is attached or the policy has none). Called by the core loop only when
    /// agent telemetry was explicitly enabled, so it is off the ordinary hot path.
    pub fn coordinator_telemetry(&self) -> Option<crate::traits::CoordinatorTelemetry> {
        self.coordinator.as_ref().and_then(|c| c.telemetry())
    }

    /// Descriptions of the attached prefetchers (for coordinators).
    pub fn prefetcher_infos(&self) -> Vec<crate::traits::PrefetcherInfo> {
        self.prefetchers.iter().map(|p| p.info()).collect()
    }

    /// Applies a coordination decision: enables/disables mechanisms and sets degrees for the
    /// next epoch.
    pub fn apply_decision(&mut self, decision: CoordinationDecision) {
        for (idx, p) in self.prefetchers.iter_mut().enumerate() {
            if let Some(&deg) = decision.prefetcher_degree.get(idx) {
                p.set_degree(deg.max(1));
            }
        }
        self.decision = decision;
    }

    /// The decision currently in force.
    pub fn current_decision(&self) -> &CoordinationDecision {
        &self.decision
    }

    /// Snapshot of the DRAM channel statistics (for whole-run reporting). In multi-core
    /// runs this is the shared channel, so the numbers cover all cores.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.borrow().stats_snapshot()
    }

    /// Read access to the cache at `level` (for invariant tests and reporting).
    pub fn cache(&self, level: CacheLevel) -> &Cache {
        match level {
            CacheLevel::L1d => &self.l1d,
            CacheLevel::L2c => &self.l2c,
            CacheLevel::Llc => &self.llc,
        }
    }

    /// Whole-run count of prefetch fills brought from DRAM.
    pub fn prefetch_fills_from_dram(&self) -> u64 {
        self.total_prefetch_fills_from_dram
    }

    /// Whole-run count of DRAM prefetch fills evicted without use (Figure 3 numerator).
    pub fn prefetch_fills_from_dram_unused(&self) -> u64 {
        self.total_prefetch_fills_from_dram_unused
    }

    fn load_context(&mut self, pc: u64, addr: u64) -> LoadContext {
        let page = page_of(addr);
        let first = !self.recent_pages.contains(&page);
        if first {
            if self.recent_pages.len() >= 64 {
                self.recent_pages.pop_front();
            }
            self.recent_pages.push_back(page);
        }
        LoadContext {
            pc,
            addr,
            line_offset_in_page: line_offset_in_page(addr) as u8,
            byte_offset: (addr & 63) as u8,
            first_access_to_page: first,
            recent_pc_hash: self.recent_pc_hash,
        }
    }

    fn note_load_pc(&mut self, pc: u64) {
        self.recent_pc_hash = (self.recent_pc_hash << 7) ^ (self.recent_pc_hash >> 41) ^ pc;
    }

    /// Performs a demand load issued by the core at `cycle` and returns its completion.
    pub fn demand_load(&mut self, pc: u64, addr: u64, cycle: u64) -> LoadOutcome {
        self.epoch.loads += 1;
        let line = line_of(addr);
        let ctx = self.load_context(pc, addr);
        self.note_load_pc(pc);

        // Off-chip prediction happens as soon as the address is known.
        let ocp_enabled = self.decision.enable_ocp && self.ocp.is_some();
        let predicted_off_chip = if ocp_enabled {
            let p = {
                let _span = athena_probe::span(athena_probe::Phase::OcpPredict);
                self.ocp.as_mut().map(|o| o.predict(&ctx)).unwrap_or(false)
            };
            if p {
                self.epoch.ocp_predictions += 1;
            }
            p
        } else {
            false
        };

        // --- L1D ---
        let l1 = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.l1d.lookup(addr, pc)
        };
        self.feedback_prefetch_use(CacheLevel::L1d, line, &l1, cycle);
        self.trigger_prefetchers(CacheLevel::L1d, pc, addr, cycle, &l1, false);
        let l1_latency = self.l1d.latency();
        if let LookupOutcome::Hit { ready_cycle, .. } = l1 {
            self.finish_on_chip(&ctx, predicted_off_chip, cycle);
            return LoadOutcome {
                completion_cycle: (cycle + l1_latency).max(ready_cycle),
                went_off_chip: false,
            };
        }
        self.epoch.l1d_misses += 1;

        // --- L2C ---
        let l2_lookup_cycle = cycle + l1_latency;
        let l2 = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.l2c.lookup(addr, pc)
        };
        self.feedback_prefetch_use(CacheLevel::L2c, line, &l2, l2_lookup_cycle);
        self.trigger_prefetchers(CacheLevel::L2c, pc, addr, l2_lookup_cycle, &l2, false);
        let l2_latency = self.l2c.latency();
        if let LookupOutcome::Hit { ready_cycle, .. } = l2 {
            let completion = (l2_lookup_cycle + l2_latency).max(ready_cycle);
            self.fill_level(CacheLevel::L1d, line, false, pc, completion);
            self.finish_on_chip(&ctx, predicted_off_chip, cycle);
            return LoadOutcome {
                completion_cycle: completion,
                went_off_chip: false,
            };
        }
        self.epoch.l2c_misses += 1;

        // --- LLC ---
        let llc_lookup_cycle = l2_lookup_cycle + l2_latency;
        let llc = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.llc.lookup(addr, pc)
        };
        self.feedback_prefetch_use(CacheLevel::Llc, line, &llc, llc_lookup_cycle);
        let llc_latency = self.llc.latency();
        if let LookupOutcome::Hit { ready_cycle, .. } = llc {
            let completion = (llc_lookup_cycle + llc_latency).max(ready_cycle);
            self.fill_level(CacheLevel::L2c, line, false, pc, completion);
            self.fill_level(CacheLevel::L1d, line, false, pc, completion);
            self.finish_on_chip(&ctx, predicted_off_chip, cycle);
            return LoadOutcome {
                completion_cycle: completion,
                went_off_chip: false,
            };
        }

        // --- Off-chip ---
        self.epoch.llc_misses += 1;
        self.epoch.loads_off_chip += 1;
        if self.pollution_victims.remove(&line) {
            self.epoch.pollution_misses += 1;
        }

        let completion = {
            let _span = athena_probe::span(athena_probe::Phase::Dram);
            if predicted_off_chip {
                // The speculative request was issued `ocp_issue_latency` cycles after
                // address generation; the demand merges with it at the memory controller,
                // so the on-chip lookup latency is off the critical path.
                self.epoch.ocp_correct += 1;
                let done = self.dram.borrow_mut().access(
                    line,
                    cycle + self.config.ocp_issue_latency,
                    DramRequestKind::Ocp,
                );
                done.max(cycle + l1_latency)
            } else {
                let demand_issue = llc_lookup_cycle + llc_latency;
                self.dram
                    .borrow_mut()
                    .access(line, demand_issue, DramRequestKind::Demand)
            }
        };
        self.epoch.llc_miss_latency_sum += completion.saturating_sub(cycle);

        // Fill every level (demand fill).
        self.fill_level(CacheLevel::Llc, line, false, pc, completion);
        self.fill_level(CacheLevel::L2c, line, false, pc, completion);
        self.fill_level(CacheLevel::L1d, line, false, pc, completion);

        if let Some(ocp) = &mut self.ocp {
            let _span = athena_probe::span(athena_probe::Phase::OcpPredict);
            ocp.train(&ctx, true);
        }
        LoadOutcome {
            completion_cycle: completion,
            went_off_chip: true,
        }
    }

    /// Handles OCP bookkeeping for a load that was ultimately served on-chip.
    fn finish_on_chip(&mut self, ctx: &LoadContext, predicted_off_chip: bool, cycle: u64) {
        if predicted_off_chip {
            // Wasted speculative fetch: it still occupies the DRAM bus.
            let _span = athena_probe::span(athena_probe::Phase::Dram);
            self.dram.borrow_mut().access(
                line_of(ctx.addr),
                cycle + self.config.ocp_issue_latency,
                DramRequestKind::Ocp,
            );
        }
        if let Some(ocp) = &mut self.ocp {
            let _span = athena_probe::span(athena_probe::Phase::OcpPredict);
            ocp.train(ctx, false);
        }
    }

    /// Performs a demand store at `cycle`. Stores never stall the core but consume cache and
    /// DRAM bandwidth (write-allocate).
    pub fn demand_store(&mut self, pc: u64, addr: u64, cycle: u64) {
        self.epoch.stores += 1;
        let line = line_of(addr);

        let l1 = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.l1d.lookup(addr, pc)
        };
        self.feedback_prefetch_use(CacheLevel::L1d, line, &l1, cycle);
        self.trigger_prefetchers(CacheLevel::L1d, pc, addr, cycle, &l1, true);
        if l1.is_hit() {
            self.l1d.mark_dirty(addr);
            return;
        }
        self.epoch.l1d_misses += 1;

        // Stores never stall the core, but the lateness accounting still references the
        // cycle a demand would reach each level — mirroring the load path — so a
        // prefetch's timeliness is judged identically for loads and stores.
        let l2 = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.l2c.lookup(addr, pc)
        };
        let l2_lookup_cycle = cycle + self.l1d.latency();
        self.feedback_prefetch_use(CacheLevel::L2c, line, &l2, l2_lookup_cycle);
        self.trigger_prefetchers(CacheLevel::L2c, pc, addr, cycle, &l2, true);
        if l2.is_hit() {
            self.fill_level(CacheLevel::L1d, line, false, pc, cycle);
            self.l1d.mark_dirty(addr);
            return;
        }
        self.epoch.l2c_misses += 1;

        let llc = {
            let _span = athena_probe::span(athena_probe::Phase::CacheLookup);
            self.llc.lookup(addr, pc)
        };
        let llc_lookup_cycle = l2_lookup_cycle + self.l2c.latency();
        self.feedback_prefetch_use(CacheLevel::Llc, line, &llc, llc_lookup_cycle);
        if llc.is_hit() {
            self.fill_level(CacheLevel::L2c, line, false, pc, cycle);
            self.fill_level(CacheLevel::L1d, line, false, pc, cycle);
            self.l1d.mark_dirty(addr);
            return;
        }

        self.epoch.llc_misses += 1;
        if self.pollution_victims.remove(&line) {
            self.epoch.pollution_misses += 1;
        }
        let done = {
            let _span = athena_probe::span(athena_probe::Phase::Dram);
            self.dram
                .borrow_mut()
                .access(line, cycle, DramRequestKind::Demand)
        };
        self.fill_level(CacheLevel::Llc, line, false, pc, done);
        self.fill_level(CacheLevel::L2c, line, false, pc, done);
        self.fill_level(CacheLevel::L1d, line, false, pc, done);
        self.l1d.mark_dirty(addr);
    }

    /// Routes prefetch-usefulness feedback when a demand access touches a prefetched line.
    /// `lookup_cycle` is the cycle the demand looked this level up: a first use whose data
    /// is still in flight at that point is useful but *late* (the demand stalls on the
    /// prefetch instead of missing outright).
    fn feedback_prefetch_use(
        &mut self,
        level: CacheLevel,
        line: u64,
        outcome: &LookupOutcome,
        lookup_cycle: u64,
    ) {
        if let LookupOutcome::Hit {
            first_use_of_prefetch: true,
            ready_cycle,
        } = outcome
        {
            self.epoch.prefetches_useful += 1;
            if *ready_cycle > lookup_cycle {
                self.epoch.prefetches_late += 1;
            }
            if let Some(idx) = self.prefetch_provenance.remove(&line) {
                if let Some(p) = self.prefetchers.get_mut(idx) {
                    p.on_prefetch_hit(line);
                }
            }
            // A DRAM-sourced prefetch that got used is not "inaccurate" for Figure 3.
            self.dram_prefetch_provenance.remove(&line);
            let _ = level;
        }
    }

    /// Triggers every enabled prefetcher attached at `level` with this access and issues the
    /// prefetch requests they produce.
    fn trigger_prefetchers(
        &mut self,
        level: CacheLevel,
        pc: u64,
        addr: u64,
        cycle: u64,
        outcome: &LookupOutcome,
        is_store: bool,
    ) {
        if self.prefetchers.is_empty() {
            return;
        }
        let _span = athena_probe::span(athena_probe::Phase::PrefetchIssue);
        let ev = AccessEvent {
            pc,
            addr,
            cycle,
            hit: outcome.is_hit(),
            first_use_of_prefetch: matches!(
                outcome,
                LookupOutcome::Hit {
                    first_use_of_prefetch: true,
                    ..
                }
            ),
            is_store,
        };
        // The batch list and its request buffers are recycled across calls (issue order —
        // prefetchers in attach order, requests in production order — is unchanged).
        let mut batches = std::mem::take(&mut self.pf_batches);
        let mut pool = std::mem::take(&mut self.pf_pool);
        for (idx, p) in self.prefetchers.iter_mut().enumerate() {
            if p.level() != level {
                continue;
            }
            if !self
                .decision
                .prefetcher_enable
                .get(idx)
                .copied()
                .unwrap_or(true)
            {
                continue;
            }
            let mut out = pool.pop().unwrap_or_default();
            p.on_access(&ev, &mut out);
            if !out.is_empty() {
                batches.push((idx, out));
            } else {
                pool.push(out);
            }
        }
        for (idx, mut reqs) in batches.drain(..) {
            for req in reqs.drain(..) {
                self.issue_prefetch(idx, level, req, pc, cycle);
            }
            pool.push(reqs);
        }
        self.pf_batches = batches;
        self.pf_pool = pool;
    }

    /// Issues one prefetch request from prefetcher `idx` attached at `level`.
    fn issue_prefetch(
        &mut self,
        idx: usize,
        level: CacheLevel,
        req: PrefetchRequest,
        trigger_pc: u64,
        cycle: u64,
    ) {
        let line = line_of(req.addr);

        // TLP-style per-request filtering of L1D prefetches: the coordinator may drop a
        // prefetch whose data the OCP believes would come from off-chip main memory.
        if level == CacheLevel::L1d && self.coordinator.is_some() {
            let conf = self
                .ocp
                .as_mut()
                .map(|o| {
                    o.confidence(&LoadContext {
                        pc: trigger_pc,
                        addr: req.addr,
                        line_offset_in_page: line_offset_in_page(req.addr) as u8,
                        byte_offset: (req.addr & 63) as u8,
                        first_access_to_page: false,
                        recent_pc_hash: self.recent_pc_hash,
                    })
                })
                .unwrap_or(0.0);
            if let Some(coord) = &mut self.coordinator {
                if !coord.filter_l1d_prefetch(&req, conf) {
                    return;
                }
            }
        }

        // Already resident at the target level: the request is dropped before it costs
        // anything and is not counted as issued (matching ChampSim's accounting).
        let resident = match level {
            CacheLevel::L1d => self.l1d.probe(line),
            CacheLevel::L2c => self.l2c.probe(line),
            CacheLevel::Llc => self.llc.probe(line),
        };
        if resident {
            return;
        }
        self.epoch.prefetches_issued += 1;

        let from_dram = match level {
            CacheLevel::L1d => !(self.l2c.probe(line) || self.llc.probe(line)),
            CacheLevel::L2c | CacheLevel::Llc => !self.llc.probe(line),
        };

        // Data-ready time of the prefetched line: a DRAM fetch completes when its bus
        // transfer finishes; an on-chip source is ready after that level's lookup latency.
        let ready = if from_dram {
            let done = {
                let _span = athena_probe::span(athena_probe::Phase::Dram);
                self.dram
                    .borrow_mut()
                    .access(line, cycle, DramRequestKind::Prefetch)
            };
            self.epoch.prefetch_fills_from_dram += 1;
            self.total_prefetch_fills_from_dram += 1;
            if self.dram_prefetch_provenance.len() < TRACKING_SET_CAP {
                self.dram_prefetch_provenance.insert(line, idx);
            }
            // Off-chip prefetches fill the LLC on their way in.
            self.fill_level(CacheLevel::Llc, line, true, trigger_pc, done);
            done
        } else {
            cycle + self.llc.latency()
        };

        match level {
            CacheLevel::L1d => {
                self.fill_level(CacheLevel::L2c, line, true, trigger_pc, ready);
                self.fill_level(CacheLevel::L1d, line, true, trigger_pc, ready);
            }
            CacheLevel::L2c => {
                self.fill_level(CacheLevel::L2c, line, true, trigger_pc, ready);
            }
            CacheLevel::Llc => {}
        }
        if self.prefetch_provenance.len() < TRACKING_SET_CAP {
            self.prefetch_provenance.insert(line, idx);
        }
    }

    /// Queries the OCP's confidence that the line containing `addr` would be served off-chip
    /// if fetched right now. Used by the TLP filter.
    pub fn ocp_confidence_for(&mut self, pc: u64, addr: u64) -> f32 {
        let ctx = LoadContext {
            pc,
            addr,
            line_offset_in_page: line_offset_in_page(addr) as u8,
            byte_offset: (addr & 63) as u8,
            first_access_to_page: false,
            recent_pc_hash: self.recent_pc_hash,
        };
        self.ocp.as_mut().map(|o| o.confidence(&ctx)).unwrap_or(0.0)
    }

    /// The system configuration this hierarchy was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn fill_level(&mut self, level: CacheLevel, line: u64, is_prefetch: bool, pc: u64, ready: u64) {
        let evicted = match level {
            CacheLevel::L1d => self.l1d.fill(line, is_prefetch, pc, ready),
            CacheLevel::L2c => self.l2c.fill(line, is_prefetch, pc, ready),
            CacheLevel::Llc => {
                let ev = self.llc.fill(line, is_prefetch, pc, ready);
                if let Some(ocp) = &mut self.ocp {
                    ocp.on_fill(line, CacheLevel::Llc);
                }
                ev
            }
        };
        if let Some(ev) = evicted {
            self.handle_eviction(level, ev);
        }
    }

    fn handle_eviction(&mut self, level: CacheLevel, ev: EvictedLine) {
        match level {
            CacheLevel::L1d => {
                if ev.dirty {
                    self.l2c.mark_dirty(ev.line_addr);
                }
            }
            CacheLevel::L2c => {
                if ev.dirty {
                    self.llc.mark_dirty(ev.line_addr);
                }
            }
            CacheLevel::Llc => {
                if ev.dirty {
                    // Writebacks consume DRAM bandwidth at an arbitrary (current) time; the
                    // precise cycle does not affect the core's critical path in this model.
                    let _span = athena_probe::span(athena_probe::Phase::Dram);
                    let mut dram = self.dram.borrow_mut();
                    let when = dram.bus_next_free();
                    dram.access(ev.line_addr, when, DramRequestKind::Writeback);
                }
                if ev.evicted_by_prefetch && self.pollution_victims.len() < TRACKING_SET_CAP {
                    self.pollution_victims.insert(ev.line_addr);
                }
                if let Some(ocp) = &mut self.ocp {
                    ocp.on_evict(ev.line_addr, CacheLevel::Llc);
                }
            }
        }
        if ev.was_prefetch && !ev.was_used {
            if let Some(idx) = self.prefetch_provenance.remove(&ev.line_addr) {
                if let Some(p) = self.prefetchers.get_mut(idx) {
                    p.on_prefetch_evicted_unused(ev.line_addr);
                }
            }
            if self
                .dram_prefetch_provenance
                .remove(&ev.line_addr)
                .is_some()
            {
                self.total_prefetch_fills_from_dram_unused += 1;
            }
        }
    }

    /// Closes the current epoch: fills in the DRAM-side counters, returns the epoch
    /// telemetry, and resets the per-epoch state. The core-side counters (instructions,
    /// cycles, branches) must already have been written into the epoch by the caller.
    pub fn finish_epoch(&mut self, core_side: &EpochStats) -> EpochStats {
        let dram_now = self.dram.borrow().stats_snapshot();
        let mut e = self.epoch;
        e.epoch_index = core_side.epoch_index;
        e.instructions = core_side.instructions;
        e.cycles = core_side.cycles;
        e.branches = core_side.branches;
        e.branch_mispredicts = core_side.branch_mispredicts;
        e.dram_demand_requests =
            dram_now.demand_requests - self.dram_at_epoch_start.demand_requests;
        e.dram_prefetch_requests =
            dram_now.prefetch_requests - self.dram_at_epoch_start.prefetch_requests;
        e.dram_ocp_requests = dram_now.ocp_requests - self.dram_at_epoch_start.ocp_requests;
        e.dram_writeback_requests =
            dram_now.writeback_requests - self.dram_at_epoch_start.writeback_requests;
        e.dram_busy_cycles = dram_now.bus_busy_cycles - self.dram_at_epoch_start.bus_busy_cycles;

        self.dram_at_epoch_start = dram_now;
        self.epoch = EpochStats::default();
        e
    }

    /// Closes the epoch and, if a coordinator is attached, consults it and applies the
    /// decision it returns for the next epoch. Returns the epoch's telemetry.
    pub fn end_epoch(&mut self, core_side: &EpochStats) -> EpochStats {
        let stats = self.finish_epoch(core_side);
        if let Some(coord) = &mut self.coordinator {
            let decision = coord.on_epoch_end(&stats);
            for (idx, p) in self.prefetchers.iter_mut().enumerate() {
                if let Some(&deg) = decision.prefetcher_degree.get(idx) {
                    p.set_degree(deg.max(1));
                }
            }
            self.decision = decision;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PrefetcherInfo;

    /// A trivial next-line prefetcher used only for hierarchy tests.
    struct TestNextLine {
        degree: u32,
        level: CacheLevel,
    }

    impl Prefetcher for TestNextLine {
        fn name(&self) -> &'static str {
            "test-next-line"
        }
        fn level(&self) -> CacheLevel {
            self.level
        }
        fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
            for d in 1..=self.degree {
                out.push(PrefetchRequest::new(ev.addr + u64::from(d) * 64));
            }
        }
        fn max_degree(&self) -> u32 {
            4
        }
        fn degree(&self) -> u32 {
            self.degree
        }
        fn set_degree(&mut self, degree: u32) {
            self.degree = degree.clamp(1, 4);
        }
    }

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::tiny())
    }

    #[test]
    fn load_latency_grows_with_miss_depth() {
        let mut h = hierarchy();
        // Cold miss goes to DRAM.
        let cold = h.demand_load(0x400, 0x10_0000, 0);
        assert!(cold.went_off_chip);
        // Second access to the same line hits in L1.
        let hot = h.demand_load(0x400, 0x10_0000, cold.completion_cycle);
        assert!(!hot.went_off_chip);
        let l1_latency = hot.completion_cycle - cold.completion_cycle;
        assert!(
            l1_latency < cold.completion_cycle,
            "L1 hit should be much faster"
        );
        assert_eq!(l1_latency, 4);
    }

    #[test]
    fn epoch_counts_misses_and_loads() {
        let mut h = hierarchy();
        for i in 0..10u64 {
            h.demand_load(0x400, 0x20_0000 + i * 4096, i * 10);
        }
        let core = EpochStats {
            instructions: 10,
            cycles: 100,
            ..Default::default()
        };
        let e = h.finish_epoch(&core);
        assert_eq!(e.loads, 10);
        assert_eq!(e.llc_misses, 10);
        assert_eq!(e.dram_demand_requests, 10);
        assert!(e.llc_miss_latency_sum > 0);
        // Epoch counters reset afterwards.
        let e2 = h.finish_epoch(&core);
        assert_eq!(e2.loads, 0);
        assert_eq!(e2.dram_demand_requests, 0);
    }

    #[test]
    fn prefetcher_converts_misses_into_hits() {
        let mut base = hierarchy();
        let mut with_pf = hierarchy();
        with_pf.attach_prefetcher(Box::new(TestNextLine {
            degree: 2,
            level: CacheLevel::L2c,
        }));

        let mut base_offchip = 0;
        let mut pf_offchip = 0;
        for i in 0..200u64 {
            let addr = 0x40_0000 + i * 64;
            if base.demand_load(0x400, addr, i * 20).went_off_chip {
                base_offchip += 1;
            }
            if with_pf.demand_load(0x400, addr, i * 20).went_off_chip {
                pf_offchip += 1;
            }
        }
        assert!(
            pf_offchip * 2 < base_offchip,
            "prefetching should cut off-chip demand misses: base={base_offchip} pf={pf_offchip}"
        );
        let core = EpochStats::default();
        let e = with_pf.finish_epoch(&core);
        assert!(e.prefetches_issued > 0);
        assert!(e.prefetches_useful > 0);
        assert!(e.prefetcher_accuracy() > 0.5);
    }

    #[test]
    fn disabled_prefetcher_issues_nothing() {
        let mut h = hierarchy();
        h.attach_prefetcher(Box::new(TestNextLine {
            degree: 2,
            level: CacheLevel::L2c,
        }));
        h.apply_decision(CoordinationDecision {
            enable_ocp: false,
            prefetcher_enable: vec![false],
            prefetcher_degree: vec![1],
        });
        for i in 0..50u64 {
            h.demand_load(0x400, 0x50_0000 + i * 64, i * 20);
        }
        let e = h.finish_epoch(&EpochStats::default());
        assert_eq!(e.prefetches_issued, 0);
        assert_eq!(e.dram_prefetch_requests, 0);
    }

    /// An OCP that always predicts off-chip — maximally aggressive, useful for testing the
    /// speculative path.
    struct AlwaysOffChip;
    impl OffChipPredictor for AlwaysOffChip {
        fn name(&self) -> &'static str {
            "always"
        }
        fn predict(&mut self, _ctx: &LoadContext) -> bool {
            true
        }
        fn train(&mut self, _ctx: &LoadContext, _went_off_chip: bool) {}
    }

    #[test]
    fn ocp_hides_onchip_lookup_latency() {
        let mut no_ocp = hierarchy();
        let mut with_ocp = hierarchy();
        with_ocp.attach_ocp(Box::new(AlwaysOffChip));

        // Cold loads to distinct lines: both go off-chip; the OCP one should complete sooner
        // because the request is issued 6 cycles after address generation instead of after
        // the full hierarchy lookup.
        let a = no_ocp.demand_load(0x400, 0x60_0000, 1000);
        let b = with_ocp.demand_load(0x400, 0x60_0000, 1000);
        assert!(a.went_off_chip && b.went_off_chip);
        assert!(
            b.completion_cycle < a.completion_cycle,
            "OCP should reduce off-chip latency: {} vs {}",
            b.completion_cycle,
            a.completion_cycle
        );
        let saved = a.completion_cycle - b.completion_cycle;
        // On-chip lookup serialisation in the tiny config is 4 + 12 + 40 = 56 cycles; the OCP
        // request is issued at +6, so ~50 cycles should be hidden.
        assert_eq!(saved, 50);
    }

    #[test]
    fn wrong_ocp_prediction_wastes_bandwidth() {
        let mut h = hierarchy();
        h.attach_ocp(Box::new(AlwaysOffChip));
        // Warm the line, then hit it: the predictor still predicts off-chip, wasting a DRAM
        // access.
        h.demand_load(0x400, 0x70_0000, 0);
        let before = h.dram_stats().ocp_requests;
        h.demand_load(0x400, 0x70_0000, 500);
        let after = h.dram_stats().ocp_requests;
        assert_eq!(after - before, 1);
        let e = h.finish_epoch(&EpochStats::default());
        assert_eq!(e.ocp_predictions, 2);
        assert_eq!(e.ocp_correct, 1);
    }

    #[test]
    fn ocp_disabled_by_decision() {
        let mut h = hierarchy();
        h.attach_ocp(Box::new(AlwaysOffChip));
        h.apply_decision(CoordinationDecision {
            enable_ocp: false,
            prefetcher_enable: vec![],
            prefetcher_degree: vec![],
        });
        h.demand_load(0x400, 0x80_0000, 0);
        let e = h.finish_epoch(&EpochStats::default());
        assert_eq!(e.ocp_predictions, 0);
        assert_eq!(e.dram_ocp_requests, 0);
    }

    #[test]
    fn pollution_is_detected() {
        // Aggressive useless prefetching into a tiny LLC evicts demand lines; re-demanding
        // them must count pollution misses.
        let mut h = hierarchy();
        struct Useless {
            degree: u32,
            next: u64,
        }
        impl Prefetcher for Useless {
            fn name(&self) -> &'static str {
                "useless"
            }
            fn level(&self) -> CacheLevel {
                CacheLevel::L2c
            }
            fn on_access(&mut self, _ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
                // Prefetch a stream of far-away lines nobody will ever demand.
                for _ in 0..self.degree {
                    out.push(PrefetchRequest::new(0xdead_0000 + self.next * 64));
                    self.next += 1;
                }
            }
            fn max_degree(&self) -> u32 {
                8
            }
            fn degree(&self) -> u32 {
                self.degree
            }
            fn set_degree(&mut self, degree: u32) {
                self.degree = degree;
            }
        }
        h.attach_prefetcher(Box::new(Useless { degree: 8, next: 0 }));

        // A working set that fits the tiny LLC (64 KB = 1024 lines): use 512 lines, touch it
        // twice. Without pollution the second pass would hit.
        let lines = 512u64;
        let mut cycle = 0;
        for pass in 0..3 {
            for i in 0..lines {
                let addr = 0x100_0000 + i * 64;
                let out = h.demand_load(0x400 + (i % 8), addr, cycle);
                cycle = out.completion_cycle + 10;
                let _ = pass;
            }
        }
        let e = h.finish_epoch(&EpochStats::default());
        assert!(
            e.pollution_misses > 0,
            "aggressive useless prefetching must cause pollution misses"
        );
        assert!(e.cache_pollution() > 0.0);
    }

    #[test]
    fn stores_allocate_and_mark_dirty() {
        let mut h = hierarchy();
        h.demand_store(0x500, 0x90_0000, 0);
        let out = h.demand_load(0x500, 0x90_0000, 100);
        assert!(!out.went_off_chip, "store should have allocated the line");
        let e = h.finish_epoch(&EpochStats::default());
        assert_eq!(e.stores, 1);
        assert_eq!(e.loads, 1);
    }

    #[test]
    fn prefetcher_info_reflects_attachments() {
        let mut h = hierarchy();
        h.attach_prefetcher(Box::new(TestNextLine {
            degree: 2,
            level: CacheLevel::L1d,
        }));
        h.attach_prefetcher(Box::new(TestNextLine {
            degree: 4,
            level: CacheLevel::L2c,
        }));
        let infos = h.prefetcher_infos();
        assert_eq!(
            infos,
            vec![
                PrefetcherInfo {
                    name: "test-next-line",
                    level: CacheLevel::L1d,
                    max_degree: 4
                },
                PrefetcherInfo {
                    name: "test-next-line",
                    level: CacheLevel::L2c,
                    max_degree: 4
                },
            ]
        );
    }
}
