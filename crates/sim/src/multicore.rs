//! Multi-core simulation: several cores with private hierarchies sharing one DRAM channel.
//!
//! Each core has its own private L1D/L2C and its own LLC slice (capacity-equivalent to the
//! paper's 3 MB/core shared LLC), but all cores contend for the same DRAM data bus, which is
//! the first-order interference effect the paper's multi-core experiments exercise. Cores are
//! advanced round-robin in fixed instruction quanta so their local clocks stay approximately
//! aligned; this is an approximation of a globally synchronised event queue, adequate for
//! trend-level reproduction of the four- and eight-core mixes (Figures 15 and 16).

use std::cell::RefCell;
use std::rc::Rc;

use crate::batch::StepBatch;
use crate::config::SimConfig;
use crate::core::{CoreEngine, SimResult};
use crate::dram::Dram;
use crate::hierarchy::MemoryHierarchy;
use crate::trace::TraceSource;
use crate::traits::{Coordinator, OffChipPredictor, Prefetcher};

/// Number of instructions each core advances before yielding to the next core.
const QUANTUM: u64 = 512;

/// Result of a multi-core run: one [`SimResult`] per core, in core order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreResult {
    /// Per-core results.
    pub cores: Vec<SimResult>,
}

impl MultiCoreResult {
    /// Geometric mean of per-core IPCs.
    pub fn geomean_ipc(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self.cores.iter().map(|c| c.ipc().max(1e-9).ln()).sum();
        (log_sum / self.cores.len() as f64).exp()
    }

    /// Geometric-mean speedup of this run's per-core IPCs relative to `baseline`'s, the
    /// normalisation used throughout the paper's multi-core evaluation.
    pub fn geomean_speedup_over(&self, baseline: &MultiCoreResult) -> f64 {
        assert_eq!(self.cores.len(), baseline.cores.len());
        if self.cores.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .cores
            .iter()
            .zip(&baseline.cores)
            .map(|(a, b)| (a.ipc().max(1e-9) / b.ipc().max(1e-9)).ln())
            .sum();
        (log_sum / self.cores.len() as f64).exp()
    }
}

struct CoreSlot {
    engine: CoreEngine,
    hierarchy: MemoryHierarchy,
    trace: Box<dyn TraceSource>,
    done: bool,
}

/// A multi-core simulator with a shared DRAM channel.
pub struct MultiCoreSimulator {
    config: SimConfig,
    dram: Rc<RefCell<Dram>>,
    cores: Vec<CoreSlot>,
    agent_telemetry: bool,
}

impl MultiCoreSimulator {
    /// Creates a multi-core simulator. The configured per-core bandwidth is multiplied by
    /// `expected_cores` when sizing the shared channel, matching the paper's methodology of
    /// keeping per-core bandwidth constant as the core count grows.
    pub fn new(config: SimConfig, expected_cores: usize) -> Self {
        let shared_config = config
            .clone()
            .with_bandwidth(config.dram.bandwidth_gbps * expected_cores.max(1) as f64);
        let dram = Rc::new(RefCell::new(Dram::new(&shared_config)));
        Self {
            config,
            dram,
            cores: Vec::new(),
            agent_telemetry: false,
        }
    }

    /// Enables per-epoch coordinator snapshots on every core added *afterwards* (see
    /// [`SimResult::agent_epochs`]); call it before [`MultiCoreSimulator::add_core`]. Off
    /// by default.
    pub fn with_agent_telemetry(mut self) -> Self {
        self.agent_telemetry = true;
        self
    }

    /// Adds a core running `trace`, with the given prefetchers, optional OCP and optional
    /// coordinator.
    pub fn add_core(
        &mut self,
        trace: Box<dyn TraceSource>,
        prefetchers: Vec<Box<dyn Prefetcher>>,
        ocp: Option<Box<dyn OffChipPredictor>>,
        coordinator: Option<Box<dyn Coordinator>>,
    ) {
        let mut hierarchy =
            MemoryHierarchy::with_shared_dram(self.config.clone(), Rc::clone(&self.dram));
        for p in prefetchers {
            hierarchy.attach_prefetcher(p);
        }
        if let Some(o) = ocp {
            hierarchy.attach_ocp(o);
        }
        if let Some(c) = coordinator {
            hierarchy.attach_coordinator(c);
        }
        let mut engine = CoreEngine::new(&self.config);
        if self.agent_telemetry {
            engine.enable_agent_telemetry();
        }
        self.cores.push(CoreSlot {
            engine,
            hierarchy,
            trace,
            done: false,
        });
    }

    /// Number of cores added so far.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Runs every core for `instructions_per_core` instructions (or until its trace ends)
    /// and returns the per-core results.
    ///
    /// Like [`crate::Simulator::run`], each core's quantum is advanced through a
    /// fetch-then-step batch: a span-free plain loop with the profiler off, batched
    /// `trace_gen` / `core_step` spans with it on. The round-robin schedule and every
    /// per-record step are identical either way.
    pub fn run(mut self, instructions_per_core: u64) -> MultiCoreResult {
        let profiled = athena_probe::profiling_enabled();
        let mut batch = StepBatch::new();
        loop {
            let mut any_progress = false;
            for slot in &mut self.cores {
                if slot.done || slot.engine.retired() >= instructions_per_core {
                    slot.done = true;
                    continue;
                }
                let target = (slot.engine.retired() + QUANTUM).min(instructions_per_core);
                if profiled {
                    while slot.engine.retired() < target && !slot.done {
                        let exhausted =
                            batch.refill(&mut *slot.trace, target - slot.engine.retired());
                        batch.step_all(&mut slot.engine, &mut slot.hierarchy);
                        if exhausted {
                            slot.done = true;
                        }
                    }
                } else {
                    while slot.engine.retired() < target {
                        match slot.trace.next_record() {
                            Some(rec) => slot.engine.step(rec, &mut slot.hierarchy),
                            None => {
                                slot.done = true;
                                break;
                            }
                        }
                    }
                }
                any_progress = true;
            }
            if !any_progress {
                break;
            }
        }
        MultiCoreResult {
            cores: self
                .cores
                .into_iter()
                .map(|mut slot| slot.engine.finish(&mut slot.hierarchy))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    fn streaming_trace(seed: u64) -> Box<dyn TraceSource> {
        Box::new((0..u64::MAX).map(move |i| {
            if i % 3 == 0 {
                TraceRecord::load(0x400 + seed, 0x1000_0000 * (seed + 1) + i * 64, false)
            } else {
                TraceRecord::alu(0x800)
            }
        }))
    }

    #[test]
    fn per_core_results_are_produced() {
        let mut mc = MultiCoreSimulator::new(SimConfig::tiny(), 4);
        for c in 0..4 {
            mc.add_core(streaming_trace(c), Vec::new(), None, None);
        }
        assert_eq!(mc.core_count(), 4);
        let result = mc.run(5_000);
        assert_eq!(result.cores.len(), 4);
        for core in &result.cores {
            assert_eq!(core.instructions, 5_000);
            assert!(core.ipc() > 0.0);
        }
        assert!(result.geomean_ipc() > 0.0);
    }

    #[test]
    fn shared_bus_creates_interference() {
        // One core streaming alone vs the same core sharing the channel with three other
        // bandwidth-hungry cores (total bandwidth scaled for 1 core in both cases, so the
        // neighbours genuinely steal bandwidth).
        let solo = {
            let mut mc = MultiCoreSimulator::new(SimConfig::tiny(), 1);
            mc.add_core(streaming_trace(0), Vec::new(), None, None);
            mc.run(10_000)
        };
        let crowded = {
            let mut mc = MultiCoreSimulator::new(SimConfig::tiny(), 1);
            for c in 0..4 {
                mc.add_core(streaming_trace(c), Vec::new(), None, None);
            }
            mc.run(10_000)
        };
        assert!(
            crowded.cores[0].cycles > solo.cores[0].cycles,
            "sharing a fixed-size channel must slow core 0 down: solo={} crowded={}",
            solo.cores[0].cycles,
            crowded.cores[0].cycles
        );
    }

    #[test]
    fn speedup_normalisation_is_relative() {
        let run = |n_cores: usize| {
            let mut mc = MultiCoreSimulator::new(SimConfig::tiny(), n_cores);
            for c in 0..n_cores as u64 {
                mc.add_core(streaming_trace(c), Vec::new(), None, None);
            }
            mc.run(3_000)
        };
        let a = run(2);
        let b = run(2);
        let s = a.geomean_speedup_over(&b);
        assert!(
            (s - 1.0).abs() < 1e-9,
            "identical runs must have speedup 1, got {s}"
        );
    }
}
