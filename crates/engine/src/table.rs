//! Tabular experiment results: pretty printing, CSV and JSON export.
//!
//! (Moved here from `athena-harness` so the engine's report writer can serialise tables
//! without a circular dependency; the harness re-exports it unchanged.)

use std::fmt;

use crate::json::Json;

/// A rectangular results table: one row per configuration/policy, one column per category
/// or parameter value, with a title matching the paper figure it reproduces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Table title, e.g. `"Figure 7: speedup in CD1 <popet, pythia>"`.
    pub title: String,
    /// Name of the row-label column, e.g. `"policy"`.
    pub row_label: String,
    /// Column headers, e.g. workload categories.
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        row_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            title: title.into(),
            row_label: row_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Returns the value at (row label, column name), if present.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, values)| values[col])
    }

    /// Serialises the table as CSV (header row first). Labels containing commas, quotes or
    /// newlines are quoted per RFC 4180 — tab3's row labels (`alpha=0.2, gamma=0.3`) would
    /// otherwise split across columns.
    pub fn to_csv(&self) -> String {
        let field = |s: &str| -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&field(&self.row_label));
        for c in &self.columns {
            out.push(',');
            out.push_str(&field(c));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&field(label));
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serialises the table as a JSON value (for the engine's machine-readable reports).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::str(&self.title)),
            ("row_label", Json::str(&self.row_label)),
            (
                "columns",
                Json::arr(self.columns.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::arr(
                    self.rows
                        .iter()
                        .map(|(label, values)| {
                            Json::obj(vec![
                                ("label", Json::str(label)),
                                (
                                    "values",
                                    Json::arr(values.iter().map(|&v| Json::num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.row_label.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:<label_width$}", self.row_label)?;
        for c in &self.columns {
            write!(f, "  {c:>20}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_width$}")?;
            for v in values {
                write!(f, "  {v:>20.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Figure X",
            "policy",
            vec!["adverse".to_string(), "friendly".to_string()],
        );
        t.push_row("naive", vec![0.9, 1.2]);
        t.push_row("athena", vec![1.05, 1.19]);
        t
    }

    #[test]
    fn get_by_row_and_column() {
        let t = table();
        assert_eq!(t.get("athena", "adverse"), Some(1.05));
        assert_eq!(t.get("athena", "missing"), None);
        assert_eq!(t.get("missing", "adverse"), None);
    }

    #[test]
    fn csv_round_trips_structure() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "policy,adverse,friendly");
        assert!(lines[1].starts_with("naive,0.9000"));
    }

    #[test]
    fn display_contains_title_and_rows() {
        let text = format!("{}", table());
        assert!(text.contains("Figure X"));
        assert!(text.contains("athena"));
    }

    #[test]
    fn csv_quotes_labels_containing_commas() {
        let mut t = ExperimentTable::new("DSE", "configuration", vec!["overall".to_string()]);
        t.push_row("alpha=0.2, gamma=0.3", vec![1.01]);
        t.push_row("plain", vec![1.02]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[1], "\"alpha=0.2, gamma=0.3\",1.0100");
        assert_eq!(lines[2], "plain,1.0200");
    }

    #[test]
    fn json_export_has_rows_and_columns() {
        let text = table().to_json().to_string();
        assert!(text.contains("\"title\":\"Figure X\""));
        assert!(text.contains("\"columns\":[\"adverse\",\"friendly\"]"));
        assert!(text.contains("\"label\":\"athena\""));
        assert!(text.contains("1.05"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = table();
        t.push_row("bad", vec![1.0]);
    }
}
