//! Lossless JSON wire serialisation of engine values that cross a process boundary.
//!
//! Two families live here:
//!
//! * **Configurations** — [`config_to_json`] / [`config_from_json`] / [`load_config`]
//!   round-trip an [`AthenaConfig`] exactly (floats via Rust's shortest-round-trip
//!   formatting, the agent seed as a lossless hex string). The tune CLI writes winning
//!   configurations with these and the `figures` harness loads them back as the `tuned`
//!   policy; the loaded configuration compares equal to the explored one field for field.
//! * **Jobs** — [`job_json`] / [`job_from_json`] serialise a whole [`Job`] (workload or
//!   mix, system configuration, coordinator, budget, seed, seed policy, telemetry
//!   request), so a distributed coordinator ([`crate::dist`]) can ship cells to worker
//!   processes. Fidelity is the whole point: a reconstructed job must be *the same cell*,
//!   so [`job_from_json`] re-derives [`Job::identity_hash`] on the receiving side and
//!   rejects any payload whose transmitted identity disagrees — a lossy wire format is a
//!   protocol error, never a silently different result.
//!
//! Every struct this module serialises is destructured exhaustively, so a field added to
//! a job constituent later is a compile error here rather than a silently lossy wire.

use std::path::{Path, PathBuf};

use athena_core::{AthenaConfig, Feature, RewardWeights};
use athena_sim::{CacheConfig, CoreConfig, DramConfig, Replacement, SimConfig};
use athena_workloads::{MixCategory, Pattern, Suite, WorkloadMix, WorkloadSpec};

use crate::job::{FileWorkload, Job, SeedPolicy, TelemetrySpec, WorkloadRef};
use crate::json::Json;
use crate::kinds::{CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
use crate::report::{u64_json, u64_value, DIST_EVENT_SCHEMA};

// ---------------------------------------------------------------------------------------
// Worker event forwarding (the EVENT frame payload of `crate::dist`).
// ---------------------------------------------------------------------------------------

/// The decoded payload of one worker→coordinator `EVENT` frame: the probe lines one cell
/// emitted while running on the worker, plus enough identity to attribute them.
pub(crate) struct DistEvent {
    /// The cell's batch index (must be outstanding on the sending worker).
    pub index: usize,
    /// The worker's OS pid, stamped onto the forwarded lines.
    pub pid: u64,
    /// The cell's rendered event lines, verbatim as the worker's local sink wrote them.
    pub lines: Vec<String>,
}

/// Builds the `EVENT` frame payload for one cell's buffered probe lines.
pub(crate) fn dist_event_payload(index: u64, pid: u64, lines: &[String]) -> Vec<u8> {
    DIST_EVENT_SCHEMA
        .document(vec![
            ("index", u64_json(index)),
            ("pid", u64_json(pid)),
            ("lines", Json::arr(lines.iter().map(Json::str).collect())),
        ])
        .to_string()
        .into_bytes()
}

/// Decodes an `EVENT` frame payload built by [`dist_event_payload`].
pub(crate) fn dist_event_from_json(doc: &Json) -> Result<DistEvent, String> {
    if !DIST_EVENT_SCHEMA.matches(doc) {
        return Err(format!(
            "event frame does not declare schema '{}'",
            DIST_EVENT_SCHEMA.id()
        ));
    }
    Ok(DistEvent {
        index: usize_field(doc, "index")?,
        pid: u64_field(doc, "pid")?,
        lines: field(doc, "lines")?
            .as_array()
            .ok_or("field 'lines' is not an array")?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "event lines must be strings".to_string())
            })
            .collect::<Result<_, String>>()?,
    })
}

// ---------------------------------------------------------------------------------------
// AthenaConfig round trip (moved here from the tune crate, which re-exports it: the
// distributed protocol ships explicit Athena configurations inside jobs, so the
// serialiser has to live below both consumers).
// ---------------------------------------------------------------------------------------

/// Serialises a configuration as a JSON object.
pub fn config_to_json(cfg: &AthenaConfig) -> Json {
    Json::obj(vec![
        ("alpha", Json::num(cfg.alpha)),
        ("gamma", Json::num(cfg.gamma)),
        ("epsilon", Json::num(cfg.epsilon)),
        ("tau", Json::num(cfg.tau)),
        (
            "features",
            Json::arr(
                cfg.features
                    .iter()
                    .map(|f| Json::str(f.short_name()))
                    .collect(),
            ),
        ),
        (
            "reward_weights",
            Json::arr(
                cfg.reward_weights
                    .as_array()
                    .iter()
                    .map(|&w| Json::num(w))
                    .collect(),
            ),
        ),
        (
            "use_uncorrelated_reward",
            Json::Bool(cfg.use_uncorrelated_reward),
        ),
        ("planes", Json::int(cfg.planes)),
        ("rows_per_plane", Json::int(cfg.rows_per_plane)),
        ("q_step", Json::num(cfg.q_step)),
        ("seed", Json::hex(cfg.seed)),
    ])
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

/// Deserialises a configuration from a JSON object produced by [`config_to_json`].
///
/// Accepts either the bare configuration object or any document wrapping one under a
/// `"config"` key (e.g. the `best.json` the tune CLI writes, which carries the claimed
/// scores alongside).
pub fn config_from_json(doc: &Json) -> Result<AthenaConfig, String> {
    let doc = doc.get("config").unwrap_or(doc);
    let features = field(doc, "features")?
        .as_array()
        .ok_or("field 'features' is not an array")?
        .iter()
        .map(|f| {
            let name = f.as_str().ok_or("feature names must be strings")?;
            Feature::from_short_name(name).ok_or_else(|| format!("unknown feature '{name}'"))
        })
        .collect::<Result<Vec<Feature>, String>>()?;
    let weights = field(doc, "reward_weights")?
        .as_array()
        .ok_or("field 'reward_weights' is not an array")?;
    if weights.len() != 5 {
        return Err(format!(
            "reward_weights must hold 5 values, found {}",
            weights.len()
        ));
    }
    let mut lambda = [0.0; 5];
    for (slot, w) in lambda.iter_mut().zip(weights) {
        *slot = w.as_f64().ok_or("reward weights must be numbers")?;
    }
    Ok(AthenaConfig {
        alpha: num_field(doc, "alpha")?,
        gamma: num_field(doc, "gamma")?,
        epsilon: num_field(doc, "epsilon")?,
        tau: num_field(doc, "tau")?,
        features,
        reward_weights: RewardWeights::from_array(lambda),
        use_uncorrelated_reward: field(doc, "use_uncorrelated_reward")?
            .as_bool()
            .ok_or("field 'use_uncorrelated_reward' is not a boolean")?,
        planes: num_field(doc, "planes")? as usize,
        rows_per_plane: num_field(doc, "rows_per_plane")? as usize,
        q_step: num_field(doc, "q_step")?,
        seed: field(doc, "seed")?
            .as_hex_u64()
            .ok_or("field 'seed' is not a \"0x…\" hex string")?,
    })
}

/// Loads a configuration from a JSON file (bare or `"config"`-wrapped; see
/// [`config_from_json`]).
pub fn load_config(path: impl AsRef<Path>) -> Result<AthenaConfig, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
    config_from_json(&doc).map_err(|e| format!("invalid config in '{}': {e}", path.display()))
}

// ---------------------------------------------------------------------------------------
// Job wire serialisation.
// ---------------------------------------------------------------------------------------

/// Reads a `u64` field written by [`u64_json`] (plain integral number or hex string).
fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    u64_value(field(doc, key)?).ok_or_else(|| format!("field '{key}' is not a u64"))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    field(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    field(doc, key)?
        .as_bool()
        .ok_or_else(|| format!("field '{key}' is not a boolean"))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, String> {
    Ok(u64_field(doc, key)? as usize)
}

fn u32_field(doc: &Json, key: &str) -> Result<u32, String> {
    u64_field(doc, key)?
        .try_into()
        .map_err(|_| format!("field '{key}' does not fit in u32"))
}

fn pattern_json(p: &Pattern) -> Json {
    match *p {
        Pattern::Stream {
            footprint,
            loads_per_iter,
        } => Json::obj(vec![
            ("kind", Json::str("stream")),
            ("footprint", u64_json(footprint)),
            ("loads_per_iter", u64_json(loads_per_iter as u64)),
        ]),
        Pattern::Strided { footprint, stride } => Json::obj(vec![
            ("kind", Json::str("strided")),
            ("footprint", u64_json(footprint)),
            ("stride", u64_json(stride)),
        ]),
        Pattern::Spatial {
            regions,
            footprint_mask,
        } => Json::obj(vec![
            ("kind", Json::str("spatial")),
            ("regions", u64_json(regions)),
            ("footprint_mask", u64_json(footprint_mask as u64)),
        ]),
        Pattern::PointerChase { nodes, burst_pct } => Json::obj(vec![
            ("kind", Json::str("pointer-chase")),
            ("nodes", u64_json(nodes)),
            ("burst_pct", u64_json(burst_pct as u64)),
        ]),
        Pattern::HashProbe {
            footprint,
            locality_pct,
        } => Json::obj(vec![
            ("kind", Json::str("hash-probe")),
            ("footprint", u64_json(footprint)),
            ("locality_pct", u64_json(locality_pct as u64)),
        ]),
        Pattern::GraphFrontier {
            vertices,
            neighbours,
        } => Json::obj(vec![
            ("kind", Json::str("graph-frontier")),
            ("vertices", u64_json(vertices)),
            ("neighbours", u64_json(neighbours as u64)),
        ]),
        Pattern::MixedPhase {
            phase_len,
            stream_footprint,
            chase_nodes,
        } => Json::obj(vec![
            ("kind", Json::str("mixed-phase")),
            ("phase_len", u64_json(phase_len)),
            ("stream_footprint", u64_json(stream_footprint)),
            ("chase_nodes", u64_json(chase_nodes)),
        ]),
        Pattern::ComputeBranchy {
            hot_bytes,
            cold_bytes,
            cold_pct,
            hard_branch_pct,
        } => Json::obj(vec![
            ("kind", Json::str("compute-branchy")),
            ("hot_bytes", u64_json(hot_bytes)),
            ("cold_bytes", u64_json(cold_bytes)),
            ("cold_pct", u64_json(cold_pct as u64)),
            ("hard_branch_pct", u64_json(hard_branch_pct as u64)),
        ]),
    }
}

fn pattern_from_json(doc: &Json) -> Result<Pattern, String> {
    Ok(match str_field(doc, "kind")? {
        "stream" => Pattern::Stream {
            footprint: u64_field(doc, "footprint")?,
            loads_per_iter: u32_field(doc, "loads_per_iter")?,
        },
        "strided" => Pattern::Strided {
            footprint: u64_field(doc, "footprint")?,
            stride: u64_field(doc, "stride")?,
        },
        "spatial" => Pattern::Spatial {
            regions: u64_field(doc, "regions")?,
            footprint_mask: u32_field(doc, "footprint_mask")?,
        },
        "pointer-chase" => Pattern::PointerChase {
            nodes: u64_field(doc, "nodes")?,
            burst_pct: u32_field(doc, "burst_pct")?,
        },
        "hash-probe" => Pattern::HashProbe {
            footprint: u64_field(doc, "footprint")?,
            locality_pct: u32_field(doc, "locality_pct")?,
        },
        "graph-frontier" => Pattern::GraphFrontier {
            vertices: u64_field(doc, "vertices")?,
            neighbours: u32_field(doc, "neighbours")?,
        },
        "mixed-phase" => Pattern::MixedPhase {
            phase_len: u64_field(doc, "phase_len")?,
            stream_footprint: u64_field(doc, "stream_footprint")?,
            chase_nodes: u64_field(doc, "chase_nodes")?,
        },
        "compute-branchy" => Pattern::ComputeBranchy {
            hot_bytes: u64_field(doc, "hot_bytes")?,
            cold_bytes: u64_field(doc, "cold_bytes")?,
            cold_pct: u32_field(doc, "cold_pct")?,
            hard_branch_pct: u32_field(doc, "hard_branch_pct")?,
        },
        other => return Err(format!("unknown pattern kind '{other}'")),
    })
}

fn suite_name(s: Suite) -> &'static str {
    match s {
        Suite::Spec => "SPEC",
        Suite::Parsec => "PARSEC",
        Suite::Ligra => "Ligra",
        Suite::Cvp => "CVP",
        Suite::GoogleLike => "Google",
    }
}

fn suite_from_name(name: &str) -> Result<Suite, String> {
    Ok(match name {
        "SPEC" => Suite::Spec,
        "PARSEC" => Suite::Parsec,
        "Ligra" => Suite::Ligra,
        "CVP" => Suite::Cvp,
        "Google" => Suite::GoogleLike,
        other => return Err(format!("unknown suite '{other}'")),
    })
}

fn workload_spec_json(spec: &WorkloadSpec) -> Json {
    let WorkloadSpec {
        name,
        suite,
        pattern,
        seed,
        designed_friendly,
    } = spec;
    Json::obj(vec![
        ("name", Json::str(name)),
        ("suite", Json::str(suite_name(*suite))),
        ("pattern", pattern_json(pattern)),
        ("seed", u64_json(*seed)),
        ("designed_friendly", Json::Bool(*designed_friendly)),
    ])
}

fn workload_spec_from_json(doc: &Json) -> Result<WorkloadSpec, String> {
    Ok(WorkloadSpec {
        name: str_field(doc, "name")?.to_string(),
        suite: suite_from_name(str_field(doc, "suite")?)?,
        pattern: pattern_from_json(field(doc, "pattern")?)?,
        seed: u64_field(doc, "seed")?,
        designed_friendly: bool_field(doc, "designed_friendly")?,
    })
}

fn mix_category_name(c: MixCategory) -> &'static str {
    match c {
        MixCategory::PrefetcherAdverse => "prefetcher-adverse",
        MixCategory::PrefetcherFriendly => "prefetcher-friendly",
        MixCategory::Random => "random",
    }
}

fn mix_category_from_name(name: &str) -> Result<MixCategory, String> {
    Ok(match name {
        "prefetcher-adverse" => MixCategory::PrefetcherAdverse,
        "prefetcher-friendly" => MixCategory::PrefetcherFriendly,
        "random" => MixCategory::Random,
        other => return Err(format!("unknown mix category '{other}'")),
    })
}

fn cache_config_json(c: &CacheConfig) -> Json {
    let CacheConfig {
        name,
        size_bytes,
        ways,
        latency,
        mshrs,
        replacement,
    } = *c;
    Json::obj(vec![
        ("name", Json::str(name)),
        ("size_bytes", u64_json(size_bytes)),
        ("ways", Json::int(ways)),
        ("latency", u64_json(latency)),
        ("mshrs", Json::int(mshrs)),
        (
            "replacement",
            Json::str(match replacement {
                Replacement::Lru => "lru",
                Replacement::Ship => "ship",
            }),
        ),
    ])
}

fn cache_config_from_json(doc: &Json) -> Result<CacheConfig, String> {
    // `CacheConfig::name` is a `&'static str`; the engine only ever ships the three
    // hierarchy levels, so map them back to their static spellings rather than leak.
    let name = match str_field(doc, "name")? {
        "L1D" => "L1D",
        "L2C" => "L2C",
        "LLC" => "LLC",
        other => return Err(format!("unknown cache name '{other}'")),
    };
    Ok(CacheConfig {
        name,
        size_bytes: u64_field(doc, "size_bytes")?,
        ways: usize_field(doc, "ways")?,
        latency: u64_field(doc, "latency")?,
        mshrs: usize_field(doc, "mshrs")?,
        replacement: match str_field(doc, "replacement")? {
            "lru" => Replacement::Lru,
            "ship" => Replacement::Ship,
            other => return Err(format!("unknown replacement policy '{other}'")),
        },
    })
}

fn sim_config_json(c: &SimConfig) -> Json {
    let SimConfig {
        core,
        l1d,
        l2c,
        llc,
        dram,
        ocp_issue_latency,
        epoch_len,
        coordinator_update_latency,
    } = c;
    let CoreConfig {
        issue_width,
        commit_width,
        rob_size,
        mispredict_penalty,
        frequency_ghz,
    } = *core;
    let DramConfig {
        bandwidth_gbps,
        banks,
        row_buffer_bytes,
        trcd_ns,
        trp_ns,
        tcas_ns,
    } = *dram;
    Json::obj(vec![
        (
            "core",
            Json::obj(vec![
                ("issue_width", u64_json(issue_width as u64)),
                ("commit_width", u64_json(commit_width as u64)),
                ("rob_size", Json::int(rob_size)),
                ("mispredict_penalty", u64_json(mispredict_penalty)),
                ("frequency_ghz", Json::num(frequency_ghz)),
            ]),
        ),
        ("l1d", cache_config_json(l1d)),
        ("l2c", cache_config_json(l2c)),
        ("llc", cache_config_json(llc)),
        (
            "dram",
            Json::obj(vec![
                ("bandwidth_gbps", Json::num(bandwidth_gbps)),
                ("banks", Json::int(banks)),
                ("row_buffer_bytes", u64_json(row_buffer_bytes)),
                ("trcd_ns", Json::num(trcd_ns)),
                ("trp_ns", Json::num(trp_ns)),
                ("tcas_ns", Json::num(tcas_ns)),
            ]),
        ),
        ("ocp_issue_latency", u64_json(*ocp_issue_latency)),
        ("epoch_len", u64_json(*epoch_len)),
        (
            "coordinator_update_latency",
            u64_json(*coordinator_update_latency),
        ),
    ])
}

fn sim_config_from_json(doc: &Json) -> Result<SimConfig, String> {
    let core = field(doc, "core")?;
    let dram = field(doc, "dram")?;
    Ok(SimConfig {
        core: CoreConfig {
            issue_width: u32_field(core, "issue_width")?,
            commit_width: u32_field(core, "commit_width")?,
            rob_size: usize_field(core, "rob_size")?,
            mispredict_penalty: u64_field(core, "mispredict_penalty")?,
            frequency_ghz: num_field(core, "frequency_ghz")?,
        },
        l1d: cache_config_from_json(field(doc, "l1d")?)?,
        l2c: cache_config_from_json(field(doc, "l2c")?)?,
        llc: cache_config_from_json(field(doc, "llc")?)?,
        dram: DramConfig {
            bandwidth_gbps: num_field(dram, "bandwidth_gbps")?,
            banks: usize_field(dram, "banks")?,
            row_buffer_bytes: u64_field(dram, "row_buffer_bytes")?,
            trcd_ns: num_field(dram, "trcd_ns")?,
            trp_ns: num_field(dram, "trp_ns")?,
            tcas_ns: num_field(dram, "tcas_ns")?,
        },
        ocp_issue_latency: u64_field(doc, "ocp_issue_latency")?,
        epoch_len: u64_field(doc, "epoch_len")?,
        coordinator_update_latency: u64_field(doc, "coordinator_update_latency")?,
    })
}

fn prefetcher_from_name(name: &str) -> Result<PrefetcherKind, String> {
    Ok(match name {
        "ipcp" => PrefetcherKind::Ipcp,
        "berti" => PrefetcherKind::Berti,
        "pythia" => PrefetcherKind::Pythia,
        "spp+ppf" => PrefetcherKind::SppPpf,
        "mlop" => PrefetcherKind::Mlop,
        "sms" => PrefetcherKind::Sms,
        "next-line" => PrefetcherKind::NextLine,
        "stride" => PrefetcherKind::Stride,
        other => return Err(format!("unknown prefetcher '{other}'")),
    })
}

fn ocp_from_name(name: &str) -> Result<OcpKind, String> {
    Ok(match name {
        "popet" => OcpKind::Popet,
        "hmp" => OcpKind::Hmp,
        "ttp" => OcpKind::Ttp,
        other => return Err(format!("unknown off-chip predictor '{other}'")),
    })
}

fn system_config_json(c: &SystemConfig) -> Json {
    let SystemConfig {
        sim,
        prefetchers,
        ocp,
    } = c;
    Json::obj(vec![
        ("sim", sim_config_json(sim)),
        (
            "prefetchers",
            Json::arr(prefetchers.iter().map(|p| Json::str(p.name())).collect()),
        ),
        (
            "ocp",
            match ocp {
                Some(o) => Json::str(o.name()),
                None => Json::Null,
            },
        ),
    ])
}

fn system_config_from_json(doc: &Json) -> Result<SystemConfig, String> {
    let prefetchers = field(doc, "prefetchers")?
        .as_array()
        .ok_or("field 'prefetchers' is not an array")?
        .iter()
        .map(|p| prefetcher_from_name(p.as_str().ok_or("prefetcher names must be strings")?))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SystemConfig {
        sim: sim_config_from_json(field(doc, "sim")?)?,
        prefetchers,
        ocp: match doc.get("ocp") {
            None | Some(Json::Null) => None,
            Some(o) => Some(ocp_from_name(
                o.as_str().ok_or("field 'ocp' is not a string")?,
            )?),
        },
    })
}

fn coordinator_json(c: &CoordinatorKind) -> Json {
    let mut pairs = vec![("kind", Json::str(c.name()))];
    match c {
        CoordinatorKind::Fixed { ocp, prefetchers } => {
            pairs.push(("ocp", Json::Bool(*ocp)));
            pairs.push(("prefetchers", Json::Bool(*prefetchers)));
        }
        CoordinatorKind::AthenaWith(cfg) => pairs.push(("config", config_to_json(cfg))),
        _ => {}
    }
    Json::obj(pairs)
}

fn coordinator_from_json(doc: &Json) -> Result<CoordinatorKind, String> {
    Ok(match str_field(doc, "kind")? {
        "baseline" => CoordinatorKind::Baseline,
        "ocp-only" => CoordinatorKind::OcpOnly,
        "prefetchers-only" => CoordinatorKind::PrefetchersOnly,
        "naive" => CoordinatorKind::Naive,
        "fixed" => CoordinatorKind::Fixed {
            ocp: bool_field(doc, "ocp")?,
            prefetchers: bool_field(doc, "prefetchers")?,
        },
        "hpac" => CoordinatorKind::Hpac,
        "mab" => CoordinatorKind::Mab,
        "tlp" => CoordinatorKind::Tlp,
        "athena" => CoordinatorKind::Athena,
        "athena*" => CoordinatorKind::AthenaWith(config_from_json(field(doc, "config")?)?),
        other => return Err(format!("unknown coordinator '{other}'")),
    })
}

fn workload_ref_json(cell: &WorkloadRef) -> Json {
    match cell {
        WorkloadRef::Single(spec) => Json::obj(vec![
            ("kind", Json::str("single")),
            ("spec", workload_spec_json(spec)),
        ]),
        WorkloadRef::Multi(mix) => {
            let WorkloadMix {
                category,
                name,
                workloads,
            } = mix;
            Json::obj(vec![
                ("kind", Json::str("multi")),
                ("category", Json::str(mix_category_name(*category))),
                ("name", Json::str(name)),
                (
                    "workloads",
                    Json::arr(workloads.iter().map(workload_spec_json).collect()),
                ),
            ])
        }
        WorkloadRef::File(file) => {
            let FileWorkload { name, path } = file;
            Json::obj(vec![
                ("kind", Json::str("file")),
                ("name", Json::str(name)),
                ("path", Json::str(path.display().to_string())),
            ])
        }
    }
}

fn workload_ref_from_json(doc: &Json) -> Result<WorkloadRef, String> {
    Ok(match str_field(doc, "kind")? {
        "single" => WorkloadRef::Single(workload_spec_from_json(field(doc, "spec")?)?),
        "multi" => WorkloadRef::Multi(WorkloadMix {
            category: mix_category_from_name(str_field(doc, "category")?)?,
            name: str_field(doc, "name")?.to_string(),
            workloads: field(doc, "workloads")?
                .as_array()
                .ok_or("field 'workloads' is not an array")?
                .iter()
                .map(workload_spec_from_json)
                .collect::<Result<_, String>>()?,
        }),
        "file" => WorkloadRef::File(FileWorkload {
            name: str_field(doc, "name")?.to_string(),
            path: PathBuf::from(str_field(doc, "path")?),
        }),
        other => return Err(format!("unknown workload kind '{other}'")),
    })
}

/// Serialises a whole job — every field, bit-exactly — for shipping to a worker process.
/// The transmitted `identity` is the sender's [`Job::identity_hash`]; [`job_from_json`]
/// re-derives it on the receiving side and rejects a mismatch.
pub fn job_json(job: &Job) -> Json {
    let Job {
        experiment,
        cell,
        config,
        coordinator,
        instructions,
        seed,
        seed_policy,
        telemetry,
    } = job;
    Json::obj(vec![
        ("experiment", Json::str(experiment)),
        ("cell", workload_ref_json(cell)),
        ("config", system_config_json(config)),
        ("coordinator", coordinator_json(coordinator)),
        ("instructions", u64_json(*instructions)),
        ("seed", Json::hex(*seed)),
        (
            "seed_policy",
            Json::str(match seed_policy {
                SeedPolicy::Config => "config",
                SeedPolicy::Derived => "derived",
            }),
        ),
        (
            "telemetry",
            match telemetry {
                Some(t) => Json::obj(vec![(
                    "window_instructions",
                    u64_json(t.window_instructions),
                )]),
                None => Json::Null,
            },
        ),
        ("identity", Json::hex(job.identity_hash())),
    ])
}

/// Reconstructs the exact [`Job`] serialised by [`job_json`].
///
/// As a lossiness tripwire, the reconstructed job's [`Job::identity_hash`] must equal the
/// transmitted `identity` — the identity covers every output-affecting facet of the cell
/// (including the full `Debug` rendering of the simulator configuration), so any float or
/// field that failed to round-trip exactly surfaces here as a hard error instead of a
/// silently different result on the worker.
pub fn job_from_json(doc: &Json) -> Result<Job, String> {
    let job = Job {
        experiment: str_field(doc, "experiment")?.to_string(),
        cell: workload_ref_from_json(field(doc, "cell")?)?,
        config: system_config_from_json(field(doc, "config")?)?,
        coordinator: coordinator_from_json(field(doc, "coordinator")?)?,
        instructions: u64_field(doc, "instructions")?,
        seed: field(doc, "seed")?
            .as_hex_u64()
            .ok_or("field 'seed' is not a \"0x…\" hex string")?,
        seed_policy: match str_field(doc, "seed_policy")? {
            "config" => SeedPolicy::Config,
            "derived" => SeedPolicy::Derived,
            other => return Err(format!("unknown seed policy '{other}'")),
        },
        telemetry: match doc.get("telemetry") {
            None | Some(Json::Null) => None,
            Some(t) => Some(TelemetrySpec {
                window_instructions: u64_field(t, "window_instructions")?,
            }),
        },
    };
    let sent = field(doc, "identity")?
        .as_hex_u64()
        .ok_or("field 'identity' is not a \"0x…\" hex string")?;
    let derived = job.identity_hash();
    if sent != derived {
        return Err(format!(
            "job identity mismatch for cell '{}': wire says {sent:#018x}, reconstruction \
             derives {derived:#018x} — the wire format lost information",
            job.label()
        ));
    }
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::default_athena_config;
    use athena_workloads::{all_workloads, mixes};

    fn exotic_config() -> AthenaConfig {
        AthenaConfig {
            alpha: 0.30000000000000004, // deliberately not shortest-decimal-friendly
            gamma: 1.0 / 3.0,
            epsilon: 0.05,
            tau: 0.12,
            features: vec![Feature::CachePollution, Feature::OcpBandwidthShare],
            reward_weights: RewardWeights::from_array([1.6, 0.1, 0.2, 0.6, 1.0]),
            use_uncorrelated_reward: false,
            planes: 4,
            rows_per_plane: 32,
            q_step: 0.025,
            seed: u64::MAX - 17,
        }
    }

    #[test]
    fn configs_round_trip_exactly() {
        for cfg in [
            AthenaConfig::default(),
            AthenaConfig::stateless(),
            default_athena_config(),
            exotic_config(),
        ] {
            let doc = config_to_json(&cfg);
            let parsed = config_from_json(&Json::parse(&doc.to_pretty()).unwrap()).unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn wrapped_documents_are_accepted() {
        let cfg = exotic_config();
        let wrapped = Json::obj(vec![
            ("schema", Json::str("athena-tune-config-v1")),
            ("speedup", Json::num(1.23)),
            ("config", config_to_json(&cfg)),
        ]);
        assert_eq!(config_from_json(&wrapped).unwrap(), cfg);
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        let mut doc = config_to_json(&AthenaConfig::default());
        let Json::Obj(pairs) = &mut doc else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "tau");
        let err = config_from_json(&doc).unwrap_err();
        assert!(err.contains("tau"), "{err}");

        let bad_feature = Json::parse(
            &config_to_json(&AthenaConfig::default())
                .to_string()
                .replace("\"PA\"", "\"XX\""),
        )
        .unwrap();
        assert!(config_from_json(&bad_feature)
            .unwrap_err()
            .contains("unknown feature"));
    }

    #[test]
    fn config_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("athena-wire-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        let cfg = exotic_config();
        std::fs::write(&path, config_to_json(&cfg).to_pretty()).unwrap();
        assert_eq!(load_config(&path).unwrap(), cfg);
        std::fs::remove_file(&path).unwrap();
        assert!(load_config(&path).unwrap_err().contains("cannot read"));
    }

    fn cd_variants() -> Vec<SystemConfig> {
        vec![
            SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet),
            SystemConfig::cd2(PrefetcherKind::Ipcp, OcpKind::Hmp),
            SystemConfig::cd3(PrefetcherKind::Mlop, PrefetcherKind::Sms, OcpKind::Ttp),
            SystemConfig::cd4(
                PrefetcherKind::Berti,
                PrefetcherKind::SppPpf,
                OcpKind::Popet,
            ),
            SystemConfig::prefetchers_only(PrefetcherKind::NextLine, PrefetcherKind::Stride),
            SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet)
                .with_bandwidth(1.6)
                .with_ocp_issue_latency(30),
        ]
    }

    #[test]
    fn jobs_round_trip_across_every_cell_shape() {
        let specs = all_workloads();
        let mut jobs = vec![
            Job::single(
                "fig7",
                specs[0].clone(),
                cd_variants()[0].clone(),
                CoordinatorKind::Athena,
                40_000,
            ),
            Job::multicore(
                "fig13",
                mixes(4, 1, 7)[0].clone(),
                cd_variants()[1].clone(),
                CoordinatorKind::Hpac,
                10_000,
            ),
            Job::from_file(
                "fig7",
                &specs[1].name,
                "/tmp/some/dir/trace.bin",
                cd_variants()[2].clone(),
                CoordinatorKind::Fixed {
                    ocp: true,
                    prefetchers: false,
                },
                40_000,
            ),
            Job::single(
                "dse",
                specs[2].clone(),
                cd_variants()[3].clone(),
                CoordinatorKind::AthenaWith(exotic_config()),
                15_000,
            )
            .with_derived_seed(),
            Job::single(
                "timeline",
                specs[3].clone(),
                cd_variants()[4].clone(),
                CoordinatorKind::Mab,
                40_000,
            )
            .with_telemetry(4096),
        ];
        jobs.push(jobs[0].clone().with_athena_config(exotic_config()));
        for job in jobs {
            let text = job_json(&job).to_string();
            let back = job_from_json(&Json::parse(&text).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", job.label()));
            assert_eq!(back, job, "cell {} did not round-trip", job.label());
            assert_eq!(back.identity_hash(), job.identity_hash());
        }
    }

    #[test]
    fn every_workload_in_the_suite_round_trips() {
        // Covers all eight pattern classes and all five suites via the real catalogues.
        for spec in all_workloads()
            .into_iter()
            .chain(athena_workloads::tuning_workloads())
            .chain(athena_workloads::google_like_workloads())
        {
            let doc = workload_spec_json(&spec);
            let back = workload_spec_from_json(&Json::parse(&doc.to_string()).unwrap()).unwrap();
            assert_eq!(back, spec, "workload {} did not round-trip", spec.name);
        }
    }

    #[test]
    fn a_tampered_job_fails_the_identity_tripwire() {
        let job = Job::single(
            "fig7",
            all_workloads()[0].clone(),
            cd_variants()[0].clone(),
            CoordinatorKind::Athena,
            40_000,
        );
        let tampered = job_json(&job).to_string().replace("40000", "39999");
        let err = job_from_json(&Json::parse(&tampered).unwrap()).unwrap_err();
        assert!(err.contains("identity mismatch"), "{err}");
    }
}
