//! The engine side of the persistent result store: job-aware keys, the record payload
//! format, and the shared handle batches consult.
//!
//! `athena-store` itself knows nothing about jobs — it stores opaque payloads under
//! `(identity, variant)` keys. This module supplies the two halves the engine needs on
//! top:
//!
//! * **Keys** — [`record_key`] pairs [`Job::identity_hash`] (which facets make a cell
//!   *the same cell*) with [`variant_hash`] (the facets that are excluded from the
//!   identity but still change the output: the seed policy and the telemetry request).
//!   Two jobs with equal keys produce bit-identical outputs, so a stored record can stand
//!   in for a simulation.
//! * **Payloads** — [`StoreHandle::encode`] / [`StoreHandle::decode`] wrap the lossless
//!   [`crate::report::job_output_json`] serialisation in a small self-describing envelope
//!   ([`crate::report::RESULT_RECORD_SCHEMA`]) carrying the cell's experiment, label and
//!   hashes, so `results query` can browse a store without re-deriving jobs.
//!
//! Failure discipline: decode and store errors inside a batch are **loud** — the engine
//! panics with the store directory and cell label rather than silently re-simulating over
//! a store that lied. A store you cannot trust is a store you must look at.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use athena_store::{RecordKey, ResultStore, StoreError, StorePolicy};

use crate::job::{Job, JobOutput, SeedPolicy};
use crate::json::Json;
use crate::report::{job_output_from_json, job_output_json, RESULT_RECORD_SCHEMA};
use crate::seed::SeedHasher;

/// The output-variant hash of a job: the facets [`Job::identity_hash`] deliberately
/// excludes but that still affect the produced [`JobOutput`] — the seed policy (it picks
/// which seed the agent actually uses) and the telemetry request (it decides whether a
/// timeline is attached and how wide its windows are). Cached results are keyed by
/// `(identity, variant)` so a telemetry run never shadows a plain run of the same cell.
pub fn variant_hash(job: &Job) -> u64 {
    let mut h = SeedHasher::new();
    h.write_str(match job.seed_policy {
        SeedPolicy::Config => "config",
        SeedPolicy::Derived => "derived",
    });
    match job.telemetry {
        None => h.write_str("none"),
        Some(t) => {
            h.write_str("window");
            h.write_u64(t.window_instructions);
        }
    }
    h.finish()
}

/// The store key of a job: `(identity_hash, variant_hash)`.
pub fn record_key(job: &Job) -> RecordKey {
    RecordKey {
        identity: job.identity_hash(),
        variant: variant_hash(job),
    }
}

/// A shared, thread-safe handle to one open [`ResultStore`] plus the [`StorePolicy`]
/// governing how batches use it. Cloning shares the same open store (and its single
/// writer lock).
#[derive(Clone)]
pub struct StoreHandle {
    dir: PathBuf,
    policy: StorePolicy,
    store: Arc<Mutex<ResultStore>>,
}

impl fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreHandle")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl PartialEq for StoreHandle {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir && self.policy == other.policy
    }
}

impl Eq for StoreHandle {}

impl StoreHandle {
    /// Opens the store in `dir` under `policy`. Policies that never write
    /// ([`StorePolicy::ReadOnly`], [`StorePolicy::Off`]) open read-only and take no lock.
    pub fn open(dir: impl Into<PathBuf>, policy: StorePolicy) -> Result<Self, StoreError> {
        let dir = dir.into();
        let store = ResultStore::open(&dir, !policy.writes())?;
        Ok(Self {
            dir,
            policy,
            store: Arc::new(Mutex::new(store)),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The policy batches run under.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// Locks and returns the underlying store (for stats/gc/verify-style maintenance).
    pub fn lock(&self) -> MutexGuard<'_, ResultStore> {
        self.store.lock().expect("result store mutex poisoned")
    }

    /// Serialises one finished cell into a store record payload.
    pub fn encode(job: &Job, output: &JobOutput) -> Vec<u8> {
        let key = record_key(job);
        RESULT_RECORD_SCHEMA
            .document(vec![
                ("experiment", Json::str(&job.experiment)),
                ("label", Json::str(job.label())),
                ("workload", Json::str(job.cell.name())),
                ("coordinator", Json::str(job.coordinator.name())),
                ("identity", Json::hex(key.identity)),
                ("variant", Json::hex(key.variant)),
                ("seed", Json::hex(job.seed)),
                ("instructions", Json::hex(job.instructions)),
                ("output", job_output_json(output)),
            ])
            .to_string()
            .into_bytes()
    }

    /// Reconstructs the exact [`JobOutput`] from a record payload written by
    /// [`StoreHandle::encode`].
    pub fn decode(payload: &[u8]) -> Result<JobOutput, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let doc = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        if !RESULT_RECORD_SCHEMA.matches(&doc) {
            return Err(format!(
                "payload does not declare schema '{}'",
                RESULT_RECORD_SCHEMA.id()
            ));
        }
        job_output_from_json(doc.get("output").ok_or("payload has no 'output' field")?)
    }

    /// Looks up a cached output for `job`, verifying the record checksum and decoding the
    /// payload. `Ok(None)` means the cell must be simulated.
    ///
    /// # Panics
    ///
    /// Panics when the store is corrupt or a record fails to decode — a lying cache must
    /// never be silently recomputed over (see the module docs).
    pub fn fetch(&self, job: &Job) -> Option<JobOutput> {
        if !self.policy.reads() {
            return None;
        }
        let key = record_key(job);
        let payload = self.lock().get(key).unwrap_or_else(|e| {
            panic!(
                "result store {}: lookup for cell '{}' (record {:016x}.{:016x}) failed: {e}",
                self.dir.display(),
                job.label(),
                key.identity,
                key.variant
            )
        })?;
        let output = Self::decode(&payload).unwrap_or_else(|e| {
            panic!(
                "result store {}: record {:016x}.{:016x} for cell '{}' does not decode: {e}",
                self.dir.display(),
                key.identity,
                key.variant,
                job.label()
            )
        });
        Some(output)
    }

    /// Appends one finished cell's result.
    ///
    /// # Panics
    ///
    /// Panics when the append fails (full disk, store gone) — a partially persisted sweep
    /// must fail where it happened, not on some later warm run.
    pub fn persist(&self, job: &Job, output: &JobOutput) {
        if !self.policy.writes() {
            return;
        }
        let payload = Self::encode(job, output);
        let key = record_key(job);
        self.lock().put(key, &payload).unwrap_or_else(|e| {
            panic!(
                "result store {}: persisting cell '{}' (record {:016x}.{:016x}) failed: {e}",
                self.dir.display(),
                job.label(),
                key.identity,
                key.variant
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::kinds::{CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
    use athena_workloads::{all_workloads, mixes};

    fn cd1() -> SystemConfig {
        SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet)
    }

    fn one_job() -> Job {
        Job::single(
            "store-test",
            all_workloads()[0].clone(),
            cd1(),
            CoordinatorKind::Athena,
            6_000,
        )
    }

    #[test]
    fn variant_separates_seed_policy_and_telemetry_but_not_identity() {
        let base = one_job();
        assert_eq!(record_key(&base), record_key(&one_job()));
        let derived = one_job().with_derived_seed();
        assert_eq!(base.identity_hash(), derived.identity_hash());
        assert_ne!(variant_hash(&base), variant_hash(&derived));
        let observed = one_job().with_telemetry(4096);
        assert_eq!(base.identity_hash(), observed.identity_hash());
        assert_ne!(variant_hash(&base), variant_hash(&observed));
        assert_ne!(
            variant_hash(&observed),
            variant_hash(&one_job().with_telemetry(8192))
        );
    }

    #[test]
    fn encode_decode_round_trips_single_core_outputs() {
        let job = one_job().with_telemetry(2048);
        let output = job.run();
        let payload = StoreHandle::encode(&job, &output);
        assert_eq!(StoreHandle::decode(&payload).unwrap(), output);
    }

    #[test]
    fn encode_decode_round_trips_multicore_outputs() {
        let job = Job::multicore(
            "store-test",
            mixes(2, 1, 7)[0].clone(),
            cd1(),
            CoordinatorKind::Athena,
            4_000,
        );
        let output = job.run();
        let payload = StoreHandle::encode(&job, &output);
        assert_eq!(StoreHandle::decode(&payload).unwrap(), output);
    }

    #[test]
    fn decode_rejects_foreign_documents() {
        assert!(StoreHandle::decode(b"not json").is_err());
        assert!(StoreHandle::decode(b"{\"schema\":\"athena-tune-v1\"}").is_err());
        assert!(StoreHandle::decode(
            format!("{{\"schema\":\"{}\"}}", RESULT_RECORD_SCHEMA.id()).as_bytes()
        )
        .is_err());
    }

    #[test]
    fn handle_round_trips_through_a_store_directory() {
        let dir =
            std::env::temp_dir().join(format!("athena-engine-store-{}-handle", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let job = one_job();
        let output = job.run();
        {
            let handle = StoreHandle::open(&dir, StorePolicy::ReadWrite).unwrap();
            assert_eq!(handle.fetch(&job), None);
            handle.persist(&job, &output);
            assert_eq!(handle.fetch(&job), Some(output.clone()));
        }
        let reread = StoreHandle::open(&dir, StorePolicy::ReadOnly).unwrap();
        assert_eq!(reread.fetch(&job), Some(output.clone()));
        // Refresh never reads; Off neither reads nor writes.
        let refresh = StoreHandle::open(&dir, StorePolicy::ReadOnly).unwrap();
        assert_eq!(refresh.policy(), StorePolicy::ReadOnly);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
