//! Mechanism registries and system configurations (cache designs CD1–CD4).
//!
//! (Moved here from `athena-harness` so a [`crate::Job`] — one simulation cell — can be a
//! plain data value owned by the engine; the harness re-exports everything unchanged.)

use athena_coordinators::{FixedCombo, Hpac, Mab, NaiveAll, Tlp};
use athena_core::{AthenaAgent, AthenaConfig};
use athena_ocp::{Hmp, Popet, Ttp};
use athena_prefetchers::{Berti, Ipcp, Mlop, NextLine, Pythia, Sms, SppPpf, StridePrefetcher};
use athena_sim::{CacheLevel, Coordinator, OffChipPredictor, Prefetcher, SimConfig};

use crate::seed::SeedHasher;

/// The prefetchers the harness can instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// IPCP at the L1 data cache.
    Ipcp,
    /// Berti at the L1 data cache.
    Berti,
    /// Pythia at the L2 cache.
    Pythia,
    /// SPP + PPF at the L2 cache.
    SppPpf,
    /// MLOP at the L2 cache.
    Mlop,
    /// SMS at the L2 cache.
    Sms,
    /// Reference next-line prefetcher at the L2 cache.
    NextLine,
    /// Reference stride prefetcher at the L2 cache.
    Stride,
}

impl PrefetcherKind {
    /// Instantiates the prefetcher.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::Ipcp => Box::new(Ipcp::new()),
            PrefetcherKind::Berti => Box::new(Berti::new()),
            PrefetcherKind::Pythia => Box::new(Pythia::new()),
            PrefetcherKind::SppPpf => Box::new(SppPpf::new()),
            PrefetcherKind::Mlop => Box::new(Mlop::new()),
            PrefetcherKind::Sms => Box::new(Sms::new()),
            PrefetcherKind::NextLine => Box::new(NextLine::new(CacheLevel::L2c, 4)),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(CacheLevel::L2c)),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            PrefetcherKind::Ipcp => "ipcp",
            PrefetcherKind::Berti => "berti",
            PrefetcherKind::Pythia => "pythia",
            PrefetcherKind::SppPpf => "spp+ppf",
            PrefetcherKind::Mlop => "mlop",
            PrefetcherKind::Sms => "sms",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Stride => "stride",
        }
    }
}

/// The off-chip predictors the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OcpKind {
    /// POPET (Hermes perceptron).
    Popet,
    /// HMP hybrid hit/miss predictor.
    Hmp,
    /// TTP tag-tracking predictor.
    Ttp,
}

impl OcpKind {
    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn OffChipPredictor> {
        match self {
            OcpKind::Popet => Box::new(Popet::new()),
            OcpKind::Hmp => Box::new(Hmp::new()),
            OcpKind::Ttp => Box::new(Ttp::new()),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            OcpKind::Popet => "popet",
            OcpKind::Hmp => "hmp",
            OcpKind::Ttp => "ttp",
        }
    }
}

/// The coordination policy applied to a run.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorKind {
    /// Baseline: prefetchers and OCP statically disabled (no coordination hardware).
    Baseline,
    /// OCP enabled, prefetchers disabled.
    OcpOnly,
    /// Prefetchers enabled, OCP disabled.
    PrefetchersOnly,
    /// Naive: everything enabled at full aggressiveness.
    Naive,
    /// An arbitrary static combination (OCP on/off, all prefetchers on/off).
    Fixed {
        /// Enable the OCP.
        ocp: bool,
        /// Enable the prefetchers.
        prefetchers: bool,
    },
    /// HPAC (heuristic thresholds), adapted for OCP.
    Hpac,
    /// MAB (discounted-UCB bandit), adapted for OCP.
    Mab,
    /// TLP (off-chip-prediction-guided L1D prefetch filtering).
    Tlp,
    /// Athena with the paper's default configuration adapted for short simulations.
    Athena,
    /// Athena with an explicit configuration (ablations, DSE).
    AthenaWith(AthenaConfig),
}

impl CoordinatorKind {
    /// Instantiates the coordinator.
    pub fn build(&self) -> Box<dyn Coordinator> {
        match self {
            CoordinatorKind::Baseline => Box::new(FixedCombo::baseline()),
            CoordinatorKind::OcpOnly => Box::new(FixedCombo::ocp_only()),
            CoordinatorKind::PrefetchersOnly => Box::new(FixedCombo::prefetchers_only()),
            CoordinatorKind::Naive => Box::new(NaiveAll::new()),
            CoordinatorKind::Fixed { ocp, prefetchers } => {
                Box::new(FixedCombo::new(*ocp, *prefetchers))
            }
            CoordinatorKind::Hpac => Box::new(Hpac::new()),
            CoordinatorKind::Mab => Box::new(Mab::new()),
            CoordinatorKind::Tlp => Box::new(Tlp::new()),
            CoordinatorKind::Athena => Box::new(AthenaAgent::new(default_athena_config())),
            CoordinatorKind::AthenaWith(cfg) => Box::new(AthenaAgent::new(cfg.clone())),
        }
    }

    /// Instantiates the coordinator with the given exploration seed in place of the
    /// configuration's fixed one. Stateless kinds ignore the seed, so this only changes the
    /// behaviour of the Athena variants (their ε-greedy exploration stream).
    ///
    /// Used by jobs running under [`crate::SeedPolicy::Derived`], where each cell's seed is
    /// a pure function of the cell's identity (see [`crate::seed`]).
    pub fn build_seeded(&self, seed: u64) -> Box<dyn Coordinator> {
        match self {
            CoordinatorKind::Athena => Box::new(AthenaAgent::new(AthenaConfig {
                seed,
                ..default_athena_config()
            })),
            CoordinatorKind::AthenaWith(cfg) => Box::new(AthenaAgent::new(AthenaConfig {
                seed,
                ..cfg.clone()
            })),
            other => other.build(),
        }
    }

    /// A display label that, unlike [`CoordinatorKind::name`], distinguishes explicit
    /// Athena configurations (DSE grid points, ablation steps) by their hyperparameters,
    /// so per-cell report records can be mapped back to the configuration that produced
    /// them.
    pub fn describe(&self) -> String {
        match self {
            CoordinatorKind::AthenaWith(cfg) => format!(
                "athena*(a{},g{},e{},t{},f{}{})",
                cfg.alpha,
                cfg.gamma,
                cfg.epsilon,
                cfg.tau,
                cfg.features.len(),
                if cfg.use_uncorrelated_reward {
                    ",ucr"
                } else {
                    ""
                }
            ),
            other => other.name().to_string(),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            CoordinatorKind::Baseline => "baseline",
            CoordinatorKind::OcpOnly => "ocp-only",
            CoordinatorKind::PrefetchersOnly => "prefetchers-only",
            CoordinatorKind::Naive => "naive",
            CoordinatorKind::Fixed { .. } => "fixed",
            CoordinatorKind::Hpac => "hpac",
            CoordinatorKind::Mab => "mab",
            CoordinatorKind::Tlp => "tlp",
            CoordinatorKind::Athena => "athena",
            CoordinatorKind::AthenaWith(_) => "athena*",
        }
    }
}

/// The Athena configuration the harness uses by default.
///
/// It is Table 3's configuration with one deviation: the exploration rate ε is raised from
/// 0.0 to 0.05. The paper's runs are 150–500 M instructions long (tens of thousands of
/// epochs), which gives a zero-ε agent enough workload-induced state variation to explore;
/// our reproduction runs are roughly three orders of magnitude shorter, so a small explicit
/// exploration rate is needed to visit all four actions. The deviation is recorded in
/// DESIGN.md and EXPERIMENTS.md.
pub fn default_athena_config() -> AthenaConfig {
    AthenaConfig {
        epsilon: 0.05,
        ..AthenaConfig::default()
    }
}

/// A full single-core system configuration: cache design plus mechanism choices.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The simulator (core, caches, DRAM) parameters.
    pub sim: SimConfig,
    /// Prefetchers, in attach order (L1D prefetchers first by convention).
    pub prefetchers: Vec<PrefetcherKind>,
    /// The off-chip predictor, if the design includes one.
    pub ocp: Option<OcpKind>,
}

impl SystemConfig {
    /// CD1: OCP + one L2C prefetcher (the paper's default design).
    pub fn cd1(l2c: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c],
            ocp: Some(ocp),
        }
    }

    /// CD2: OCP + one L1D prefetcher.
    pub fn cd2(l1d: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l1d],
            ocp: Some(ocp),
        }
    }

    /// CD3: OCP + two L2C prefetchers.
    pub fn cd3(l2c_a: PrefetcherKind, l2c_b: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c_a, l2c_b],
            ocp: Some(ocp),
        }
    }

    /// CD4: OCP + one L1D prefetcher + one L2C prefetcher.
    pub fn cd4(l1d: PrefetcherKind, l2c: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l1d, l2c],
            ocp: Some(ocp),
        }
    }

    /// CD3 without an OCP (the prefetcher-only generalisability study, §7.6).
    pub fn prefetchers_only(l2c_a: PrefetcherKind, l2c_b: PrefetcherKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c_a, l2c_b],
            ocp: None,
        }
    }

    /// Returns a copy with a different main-memory bandwidth (GB/s per core).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.sim = self.sim.with_bandwidth(gbps);
        self
    }

    /// Returns a copy with a different OCP request issue latency (cycles).
    pub fn with_ocp_issue_latency(mut self, cycles: u64) -> Self {
        self.sim = self.sim.with_ocp_issue_latency(cycles);
        self
    }

    /// Human-readable description, e.g. `CD1<popet, pythia>`.
    pub fn describe(&self) -> String {
        let prefetchers: Vec<&str> = self.prefetchers.iter().map(|p| p.name()).collect();
        match &self.ocp {
            Some(ocp) => format!("<{}, {}>", ocp.name(), prefetchers.join("+")),
            None => format!("<{}>", prefetchers.join("+")),
        }
    }

    /// A seed-derivation fingerprint covering *every* parameter of the configuration,
    /// including the simulator knobs that [`SystemConfig::describe`] elides (bandwidth, OCP
    /// issue latency, …), so sensitivity-sweep variants of the same cache design derive
    /// distinct job seeds.
    ///
    /// The `SimConfig` contribution hashes its `Debug` representation on purpose: a field
    /// added to the config later is covered automatically, where an explicit field list
    /// would silently omit it and let two semantically different configs share a seed. The
    /// trade-off is that derived seeds are stable within a revision of the code, not across
    /// revisions that change the config's shape — acceptable, because a config-shape change
    /// changes what a cell *means*.
    pub(crate) fn hash_into(&self, hasher: &mut SeedHasher) {
        hasher.write_str(&self.describe());
        hasher.write_str(&format!("{:?}", self.sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_designs_have_the_right_shape() {
        let cd1 = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        assert_eq!(cd1.prefetchers.len(), 1);
        assert!(cd1.ocp.is_some());
        let cd4 = SystemConfig::cd4(PrefetcherKind::Ipcp, PrefetcherKind::Pythia, OcpKind::Popet);
        assert_eq!(cd4.prefetchers.len(), 2);
        assert_eq!(cd4.describe(), "<popet, ipcp+pythia>");
        let no_ocp = SystemConfig::prefetchers_only(PrefetcherKind::Sms, PrefetcherKind::Pythia);
        assert!(no_ocp.ocp.is_none());
    }

    #[test]
    fn every_kind_builds() {
        for p in [
            PrefetcherKind::Ipcp,
            PrefetcherKind::Berti,
            PrefetcherKind::Pythia,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Mlop,
            PrefetcherKind::Sms,
            PrefetcherKind::NextLine,
            PrefetcherKind::Stride,
        ] {
            assert_eq!(p.build().name(), p.name());
        }
        for o in [OcpKind::Popet, OcpKind::Hmp, OcpKind::Ttp] {
            assert_eq!(o.build().name(), o.name());
        }
        for c in [
            CoordinatorKind::Baseline,
            CoordinatorKind::Naive,
            CoordinatorKind::Hpac,
            CoordinatorKind::Mab,
            CoordinatorKind::Tlp,
            CoordinatorKind::Athena,
        ] {
            let _ = c.build();
            let _ = c.build_seeded(42);
        }
    }

    #[test]
    fn athena_with_describe_carries_hyperparameters() {
        let cfg = default_athena_config().with_hyperparameters(0.2, 0.6, 0.05, 0.12);
        let a = CoordinatorKind::AthenaWith(cfg.clone());
        let b = CoordinatorKind::AthenaWith(cfg.with_hyperparameters(0.9, 0.6, 0.05, 0.12));
        assert_eq!(a.describe(), "athena*(a0.2,g0.6,e0.05,t0.12,f4,ucr)");
        assert_ne!(
            a.describe(),
            b.describe(),
            "grid points stay distinguishable"
        );
        assert_eq!(CoordinatorKind::Athena.describe(), "athena");
    }

    #[test]
    fn config_fingerprint_separates_sweep_variants() {
        let a = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        let b = a.clone().with_bandwidth(1.6);
        assert_eq!(a.describe(), b.describe());
        let mut ha = SeedHasher::new();
        a.hash_into(&mut ha);
        let mut hb = SeedHasher::new();
        b.hash_into(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}
