//! Deterministic per-job seed derivation.
//!
//! Every [`crate::Job`] carries a seed that is a pure function of the *identity* of its
//! simulation cell — experiment name, workload (or mix), system configuration, coordination
//! policy and instruction budget — and never of scheduling state (worker id, submission
//! order, wall-clock). Two consequences:
//!
//! * results are bit-identical whether a batch runs on one worker or sixteen, and whether
//!   jobs are submitted in enumeration order or shuffled;
//! * re-running a single failed cell in isolation reproduces the original run exactly,
//!   because nothing about the rest of the batch feeds into its seed.
//!
//! The hash is streaming FNV-1a over length-delimited parts, finished through a SplitMix64
//! avalanche so that near-identical cell identities (e.g. `fig12c` at 6 vs 18 cycles of OCP
//! issue latency) land far apart in seed space.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny streaming hasher for seed derivation: FNV-1a over delimited parts, SplitMix64
/// finalisation.
///
/// ```
/// use athena_engine::SeedHasher;
///
/// let mut h = SeedHasher::new();
/// h.write_str("fig7");
/// h.write_str("410.bwaves-1963B");
/// h.write_u64(400_000);
/// let seed = h.finish();
/// assert_ne!(seed, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SeedHasher {
    state: u64,
}

impl SeedHasher {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string part. Parts are length-delimited, so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a 64-bit integer part (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Returns the derived seed. The hasher can keep absorbing parts afterwards.
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

impl Default for SeedHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalisation step: a strong avalanche over the raw FNV state.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a seed from string parts alone (convenience over [`SeedHasher`]).
pub fn derive_seed(parts: &[&str]) -> u64 {
    let mut h = SeedHasher::new();
    for p in parts {
        h.write_str(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_across_calls() {
        assert_eq!(
            derive_seed(&["fig7", "w1", "cfg"]),
            derive_seed(&["fig7", "w1", "cfg"])
        );
    }

    #[test]
    fn seeds_separate_nearby_identities() {
        let a = derive_seed(&["fig12c", "w1", "6-cycles"]);
        let b = derive_seed(&["fig12c", "w1", "18-cycles"]);
        assert_ne!(a, b);
        // The avalanche should flip roughly half the bits, not just a few.
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn parts_are_length_delimited() {
        assert_ne!(derive_seed(&["ab", "c"]), derive_seed(&["a", "bc"]));
        assert_ne!(derive_seed(&["ab"]), derive_seed(&["ab", ""]));
    }

    #[test]
    fn u64_parts_participate() {
        let mut a = SeedHasher::new();
        a.write_str("x");
        a.write_u64(400_000);
        let mut b = SeedHasher::new();
        b.write_str("x");
        b.write_u64(40_000);
        assert_ne!(a.finish(), b.finish());
    }
}
