//! Distributed experiment execution: coordinator-side sharding and the worker serve loop.
//!
//! The in-process pool ([`crate::pool`]) caps a sweep at one process. This module adds
//! the process boundary: a coordinator ([`DistPool`]) splits a batch of [`Job`]s into
//! per-worker shards, spawns worker processes (any binary that calls [`serve`] — the
//! `figures`/`tune` CLIs do so under `--worker`), streams per-cell result records back
//! over the workers' stdio, and merges them **in submission order**, so every table and
//! leaderboard is byte-identical at any worker count — exactly the contract the
//! in-process pool honours.
//!
//! # Wire protocol
//!
//! Both directions speak length-delimited, checksummed frames over pipes:
//!
//! ```text
//! [kind: u8] [len: u32 LE] [fnv64(payload): u64 LE] [payload: len bytes]
//! ```
//!
//! Payloads are JSON documents declaring a [`crate::report::Schema`]
//! (`athena-dist-*-v1`); the checksum is the same FNV-1a 64 the result store uses
//! ([`athena_store::fnv64`]). The conversation is strictly: worker sends `HELLO`;
//! coordinator sends one `SHARD` (an indexed job list, jobs serialised by
//! [`crate::wire::job_json`], plus the coordinator's profiling switch); worker answers
//! one `EVENT` frame (the cell's buffered probe lines and, when profiling, its phase
//! profile — `athena-dist-event-v1`) followed by one `RESULT` per cell — successful
//! cells wrapped in the self-describing `athena-result-record-v1` envelope the result
//! store writes — then `DONE`; coordinator closes the worker's stdin and the worker
//! exits. `EVENT` frames are observability only: the coordinator parks them per cell and
//! replays them into the `--events` log at the cell's deterministic merge point, so
//! observation never feeds back into results. A dead worker's parked events are
//! discarded with it — a partial shard never leaks half-true lines into the log.
//!
//! # Failure discipline
//!
//! The two failure classes are deliberately treated differently:
//!
//! * **Death** — EOF or a truncated frame on a worker's stdout (crash, SIGKILL, broken
//!   pipe). The coordinator reassigns the worker's unfinished cells to a freshly spawned
//!   worker, at most [`MAX_ATTEMPTS`] attempts per cell, then fails loudly. Because a
//!   cell's result is a pure function of the job, a retried cell is the *same* cell.
//! * **Corruption** — a complete frame whose checksum or schema does not match, or a
//!   result record whose `(identity, variant)` key disagrees with the job it claims to
//!   answer. The coordinator panics immediately: a lying record is never merged, and
//!   never silently recomputed over.
//!
//! Worker-side *cell* panics are neither: they are caught per cell (exactly like the
//! in-process pool does) and travel back as `error` results, merging as that cell's
//! `Err` outcome with no retry.
//!
//! Every lifecycle step emits a structured event ([`athena_probe::Event`]:
//! `worker_joined`, `shard_dispatched`, `worker_died`, `cell_reassigned`) so a
//! distributed run is observable after the fact.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use athena_probe::{metrics, CellOrigin, Event, Phase, PhaseProfile, ProbeSink};
use athena_store::fnv64;

use crate::job::{Job, JobOutput};
use crate::json::Json;
use crate::report::{
    phase_profile_from_json, u64_json, u64_value, DIST_DONE_SCHEMA, DIST_HELLO_SCHEMA,
    DIST_RESULT_SCHEMA, DIST_SHARD_SCHEMA, EVENTS_SCHEMA, RESULT_RECORD_SCHEMA,
};
use crate::store::{record_key, StoreHandle};
use crate::wire::{dist_event_from_json, dist_event_payload, job_from_json, job_json};

/// Maximum attempts per cell before a repeatedly dying assignment fails the batch.
pub const MAX_ATTEMPTS: u32 = 3;

/// How long the coordinator waits for *any* worker message before declaring the batch
/// stalled. Generous on purpose: it only exists to turn a hung worker into a loud
/// failure instead of an eternal one.
const RECV_TIMEOUT: Duration = Duration::from_secs(600);

/// Frames larger than this are rejected as corrupt (a length field this big is garbage,
/// not a real shard or record).
const MAX_FRAME_LEN: u32 = 1 << 30;

const KIND_HELLO: u8 = 1;
const KIND_SHARD: u8 = 2;
const KIND_RESULT: u8 = 3;
const KIND_DONE: u8 = 4;
const KIND_EVENT: u8 = 5;

/// Bytes of a frame's fixed header (`kind` + `len` + checksum), counted by the
/// frame-byte metrics alongside the payload.
const FRAME_HEADER_BYTES: u64 = 1 + 4 + 8;

// ---------------------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    metrics().frames_sent.incr();
    metrics()
        .frame_bytes_sent
        .add(FRAME_HEADER_BYTES + payload.len() as u64);
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary; an EOF *inside* a
/// frame surfaces as `ErrorKind::UnexpectedEof` (truncation — the sender died
/// mid-write); a complete frame that fails its checksum, carries an unknown kind, or an
/// absurd length surfaces as `ErrorKind::InvalidData` (corruption).
fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut kind = [0u8; 1];
    if r.read(&mut kind)? == 0 {
        return Ok(None);
    }
    if !(KIND_HELLO..=KIND_EVENT).contains(&kind[0]) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame kind {}", kind[0]),
        ));
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    let checksum = u64::from_le_bytes(checksum);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = fnv64(&payload);
    if actual != checksum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: header says {checksum:#018x}, payload hashes to {actual:#018x}"),
        ));
    }
    metrics().frames_received.incr();
    metrics()
        .frame_bytes_received
        .add(FRAME_HEADER_BYTES + len as u64);
    Ok(Some((kind[0], payload)))
}

// ---------------------------------------------------------------------------------------
// Worker command and pool configuration.
// ---------------------------------------------------------------------------------------

/// How the coordinator launches one worker process: a program, its arguments, and extra
/// environment variables. The launched process must enter [`serve`] (the harness CLIs do
/// so under their `--worker` flag; the default command is the coordinator's own binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    /// Program to execute.
    pub program: PathBuf,
    /// Arguments passed to the program (e.g. `["--worker"]`).
    pub args: Vec<String>,
    /// Extra environment variables set on the worker (the rest of the environment is
    /// inherited). Tests use this to inject faults per pool without touching the
    /// process-global environment.
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command launching `program` with the given arguments and no extra environment.
    pub fn new(program: impl Into<PathBuf>, args: &[&str]) -> Self {
        Self {
            program: program.into(),
            args: args.iter().map(|a| a.to_string()).collect(),
            envs: Vec::new(),
        }
    }

    /// The coordinator's own binary run with `--worker` — the standard self-spawning
    /// setup of the `figures` and `tune` CLIs.
    pub fn self_worker() -> Result<Self, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot resolve the current executable: {e}"))?;
        Ok(Self::new(exe, &["--worker"]))
    }

    /// Returns a copy with one extra environment variable set on spawned workers.
    pub fn with_env(mut self, key: &str, value: &str) -> Self {
        self.envs.push((key.to_string(), value.to_string()));
        self
    }
}

/// A distributed executor: runs job batches on `workers` spawned worker processes
/// instead of in-process threads, with in-order merge and bounded retry (see the module
/// docs). Plug one into an engine with [`crate::Engine::with_dist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistPool {
    command: WorkerCommand,
    workers: usize,
}

impl DistPool {
    /// A pool spawning up to `workers` processes per batch via `command`.
    pub fn new(command: WorkerCommand, workers: usize) -> Self {
        Self {
            command,
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured worker launch command.
    pub fn command(&self) -> &WorkerCommand {
        &self.command
    }

    /// Runs every job on the worker processes and returns one [`RemoteCell`] per job, in
    /// submission order: the cell's outcome (`Ok((output, worker-measured wall clock))`,
    /// or `Err(message)` for a cell that panicked on a worker) together with its
    /// observability sidecar — the worker it ran on, the probe event lines the worker
    /// forwarded, and its phase profile when profiling is on. With `progress`, a live
    /// per-worker status line is kept on stderr.
    ///
    /// # Panics
    ///
    /// Panics on corruption (a frame or record that lies — see the module docs), when a
    /// cell's assignment has died [`MAX_ATTEMPTS`] times, when a worker cannot be
    /// spawned, or when no worker produces any message for a very long time.
    pub fn run_jobs(
        &self,
        probe: Option<&ProbeSink>,
        progress: bool,
        jobs: &[Job],
    ) -> Vec<RemoteCell> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let mut batch = Batch {
            pool: self,
            probe,
            progress,
            jobs,
            outcomes: vec![None; jobs.len()],
            forwarded: (0..jobs.len()).map(|_| None).collect(),
            filled: 0,
            attempts: vec![0u32; jobs.len()],
            workers: Vec::new(),
            completed: BTreeMap::new(),
            reassigned: 0,
            started: Instant::now(),
        };
        batch.run();
        let forwarded = std::mem::take(&mut batch.forwarded);
        batch
            .outcomes
            .drain(..)
            .zip(forwarded)
            .map(|(slot, events)| {
                let (origin, profile, events) = match events {
                    Some(f) => (Some(f.origin), f.profile, f.lines),
                    None => (None, None, Vec::new()),
                };
                RemoteCell {
                    outcome: slot.expect("every cell resolved"),
                    origin,
                    profile,
                    events,
                }
            })
            .collect()
    }
}

/// One cell's result and observability sidecar as returned by [`DistPool::run_jobs`].
#[derive(Debug, Clone)]
pub struct RemoteCell {
    /// The cell's outcome: output plus worker-measured wall clock, or the panic message.
    pub outcome: Result<(JobOutput, Duration), String>,
    /// The worker that produced the merged answer (`None` only if the worker forwarded
    /// no events — a pre-EVENT-frame worker binary).
    pub origin: Option<CellOrigin>,
    /// The cell's phase profile, parsed from the forwarded `cell_finished` event when
    /// profiling is on.
    pub profile: Option<PhaseProfile>,
    /// The cell's forwarded probe event lines, rendered deterministic fragments ready
    /// for [`ProbeSink::emit_rendered`] — worker attribution appended, `t_ms` stripped
    /// (the coordinator's sink restamps it at merge).
    pub events: Vec<String>,
}

/// A worker's buffered observability for one cell, parked until that cell merges.
struct ForwardedCell {
    origin: CellOrigin,
    profile: Option<PhaseProfile>,
    lines: Vec<String>,
}

// ---------------------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------------------

/// What a worker's reader thread forwards to the coordinator loop.
enum MsgBody {
    /// A complete, checksum-verified frame.
    Frame(u8, Vec<u8>),
    /// Clean EOF on the worker's stdout.
    Eof,
    /// The stream died mid-frame (truncation, crash).
    Died(String),
    /// A complete frame failed its checksum / carried garbage.
    Corrupt(String),
}

struct Msg {
    worker: usize,
    body: MsgBody,
}

struct Worker {
    id: usize,
    child: Child,
    /// Kept open until the worker's shard is done; dropping it signals the worker to
    /// exit its serve loop.
    stdin: Option<ChildStdin>,
    /// Cell indices assigned to this worker and not yet answered.
    outstanding: BTreeSet<usize>,
    /// Whether the worker's `DONE` frame (or a benign EOF) arrived.
    finished: bool,
}

struct Batch<'a> {
    pool: &'a DistPool,
    probe: Option<&'a ProbeSink>,
    progress: bool,
    jobs: &'a [Job],
    outcomes: Vec<Option<Result<(JobOutput, Duration), String>>>,
    /// Per-cell observability forwarded over `EVENT` frames, parked here until the
    /// cell's `RESULT` merges (and discarded if its worker dies first — a dead worker's
    /// partial events never reach the log).
    forwarded: Vec<Option<ForwardedCell>>,
    filled: usize,
    attempts: Vec<u32>,
    workers: Vec<Worker>,
    /// Cells completed per worker id, for the `--progress` breakdown.
    completed: BTreeMap<usize, usize>,
    /// Cells re-dispatched after worker deaths.
    reassigned: usize,
    started: Instant,
}

impl Drop for Batch<'_> {
    fn drop(&mut self) {
        // Leave no orphans behind, whether the batch completed, panicked on corruption,
        // or gave up on a dying assignment.
        for w in &mut self.workers {
            w.stdin.take();
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

impl Batch<'_> {
    fn emit(&self, event: &Event) {
        if let Some(sink) = self.probe {
            sink.emit(event);
        }
    }

    fn run(&mut self) {
        let (tx, rx) = mpsc::channel::<Msg>();
        let n = self.pool.workers.min(self.jobs.len());
        // Round-robin static shards: worker w starts with cells w, w+n, w+2n, …
        for w in 0..n {
            let cells: Vec<usize> = (w..self.jobs.len()).step_by(n).collect();
            self.spawn_worker(w, &cells, &tx);
        }
        let mut next_id = n;
        while self.filled < self.jobs.len() {
            let msg = match rx.recv_timeout(RECV_TIMEOUT) {
                Ok(msg) => msg,
                Err(_) => panic!(
                    "distributed batch stalled: no worker message for {}s with {} of {} \
                     cells unresolved",
                    RECV_TIMEOUT.as_secs(),
                    self.jobs.len() - self.filled,
                    self.filled
                ),
            };
            let slot = self
                .workers
                .iter()
                .position(|w| w.id == msg.worker)
                .expect("message from a known worker");
            match msg.body {
                MsgBody::Frame(KIND_HELLO, payload) => self.check_hello(msg.worker, &payload),
                MsgBody::Frame(KIND_EVENT, payload) => self.buffer_events(slot, &payload),
                MsgBody::Frame(KIND_RESULT, payload) => self.merge_result(slot, &payload),
                MsgBody::Frame(KIND_DONE, _) => {
                    self.workers[slot].finished = true;
                    // Closing stdin tells the worker its shard was the last one.
                    self.workers[slot].stdin.take();
                }
                MsgBody::Frame(kind, _) => panic!(
                    "distributed worker #{}: protocol violation: unexpected frame kind {kind}",
                    msg.worker
                ),
                MsgBody::Eof | MsgBody::Died(_) => {
                    let detail = match msg.body {
                        MsgBody::Died(detail) => detail,
                        _ => "stream ended before DONE".to_string(),
                    };
                    let unfinished: Vec<usize> =
                        self.workers[slot].outstanding.iter().copied().collect();
                    if self.workers[slot].finished || unfinished.is_empty() {
                        // Normal exit after DONE, or a death that cost nothing.
                        self.workers[slot].finished = true;
                        continue;
                    }
                    self.emit(&Event::WorkerDied {
                        worker: msg.worker,
                        outstanding: unfinished.len(),
                        error: detail.clone(),
                    });
                    self.reassigned += unfinished.len();
                    metrics().cell_retries.add(unfinished.len() as u64);
                    for &i in &unfinished {
                        // The dead worker's partial events must not outlive it: the
                        // replacement worker re-runs the cell and re-forwards.
                        self.forwarded[i] = None;
                        self.attempts[i] += 1;
                        assert!(
                            self.attempts[i] < MAX_ATTEMPTS,
                            "cell '{}' lost its worker {MAX_ATTEMPTS} times (last: {detail}); \
                             giving up on the batch",
                            self.jobs[i].label()
                        );
                    }
                    self.workers[slot].finished = true;
                    self.workers[slot].outstanding.clear();
                    let to_worker = next_id;
                    next_id += 1;
                    for &i in &unfinished {
                        self.emit(&Event::CellReassigned {
                            experiment: self.jobs[i].experiment.clone(),
                            label: self.jobs[i].label(),
                            from_worker: msg.worker,
                            to_worker,
                        });
                    }
                    self.spawn_worker(to_worker, &unfinished, &tx);
                }
                MsgBody::Corrupt(detail) => panic!(
                    "distributed worker #{} sent a corrupt frame ({detail}); refusing to \
                     merge anything it said — rerun, and if this repeats check the host",
                    msg.worker
                ),
            }
        }
    }

    /// Spawns one worker, ships its shard, and starts its reader thread. A shard that
    /// cannot be written (worker died before reading it) is reported back through the
    /// channel as a death, so the normal reassignment path retries it.
    fn spawn_worker(&mut self, id: usize, cells: &[usize], tx: &mpsc::Sender<Msg>) {
        let cmd = &self.pool.command;
        let mut child = Command::new(&cmd.program)
            .args(&cmd.args)
            .envs(cmd.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                panic!(
                    "cannot spawn distributed worker '{}': {e}",
                    cmd.program.display()
                )
            });
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        self.emit(&Event::WorkerJoined {
            worker: id,
            pid: child.id() as u64,
        });
        let payload = shard_payload(self.jobs, cells);
        self.emit(&Event::ShardDispatched {
            worker: id,
            cells: cells.len(),
            bytes: payload.len(),
        });
        let reader_tx = tx.clone();
        std::thread::spawn(move || {
            let mut stdout = io::BufReader::new(stdout);
            loop {
                let body = match read_frame(&mut stdout) {
                    Ok(Some((kind, payload))) => MsgBody::Frame(kind, payload),
                    Ok(None) => MsgBody::Eof,
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        MsgBody::Corrupt(e.to_string())
                    }
                    Err(e) => MsgBody::Died(e.to_string()),
                };
                let last = !matches!(body, MsgBody::Frame(..));
                if reader_tx.send(Msg { worker: id, body }).is_err() || last {
                    return;
                }
            }
        });
        let shard_sent = write_frame(&mut stdin, KIND_SHARD, &payload);
        self.workers.push(Worker {
            id,
            child,
            stdin: Some(stdin),
            outstanding: cells.iter().copied().collect(),
            finished: false,
        });
        if let Err(e) = shard_sent {
            // The worker died before reading its shard; the reader thread will also see
            // EOF, but the write error is the more precise diagnosis.
            let _ = tx.send(Msg {
                worker: id,
                body: MsgBody::Died(format!("shard could not be written: {e}")),
            });
        }
    }

    fn check_hello(&self, worker: usize, payload: &[u8]) {
        let doc = parse_payload(worker, payload);
        if !DIST_HELLO_SCHEMA.matches(&doc) {
            panic!(
                "distributed worker #{worker} did not speak the '{}' handshake — wrong \
                 program or version behind the worker command?",
                DIST_HELLO_SCHEMA.id()
            );
        }
    }

    /// Verifies and parks one `EVENT` frame: the probe lines a worker's cell emitted,
    /// forwarded ahead of that cell's `RESULT`. The lines are validated (schema, kind,
    /// cell identity — a checksum-valid frame whose content lies is corruption and
    /// panics), rewritten from worker-local lines into deterministic fragments carrying
    /// the worker's identity, and buffered until the cell merges.
    fn buffer_events(&mut self, slot: usize, payload: &[u8]) {
        let worker = self.workers[slot].id;
        let doc = parse_payload(worker, payload);
        let event = dist_event_from_json(&doc).unwrap_or_else(|e| {
            panic!("distributed worker #{worker}: bad event frame: {e} — refusing to merge")
        });
        let index = event.index;
        assert!(
            self.workers[slot].outstanding.contains(&index),
            "distributed worker #{worker} sent events for cell {index}, which it does not own"
        );
        let job = &self.jobs[index];
        let label = job.label();
        let mut profile = None;
        let mut lines = Vec::with_capacity(event.lines.len());
        for line in &event.lines {
            let parsed = Json::parse(line).unwrap_or_else(|e| {
                panic!(
                    "distributed worker #{worker}: forwarded event line for cell {index} is \
                     not JSON: {e}"
                )
            });
            assert!(
                EVENTS_SCHEMA.matches(&parsed),
                "distributed worker #{worker}: forwarded event line does not declare \
                 schema '{}': {line}",
                EVENTS_SCHEMA.id()
            );
            let kind = parsed.get("kind").and_then(Json::as_str).unwrap_or("");
            assert!(
                matches!(kind, "cell_started" | "cell_finished" | "cell_panicked"),
                "distributed worker #{worker}: forwarded a non-cell event '{kind}'"
            );
            assert_eq!(
                parsed.get("label").and_then(Json::as_str),
                Some(label.as_str()),
                "distributed worker #{worker}: forwarded an event for the wrong cell \
                 (frame says index {index} = '{label}'): {line}"
            );
            if kind == "cell_finished" {
                if let Some(p) = parsed.get("profile") {
                    profile = Some(phase_profile_from_json(p).unwrap_or_else(|e| {
                        panic!(
                            "distributed worker #{worker}: cell {index} forwarded an \
                             undecodable profile: {e}"
                        )
                    }));
                }
            }
            // Byte-faithful forwarding: keep the worker's rendering of the deterministic
            // fields verbatim (re-rendering floats could change bytes), cut the worker-
            // local `t_ms` tail, and append the attribution fields.
            let cut = line.rfind(",\"t_ms\":").unwrap_or_else(|| {
                panic!("distributed worker #{worker}: forwarded event line has no t_ms: {line}")
            });
            lines.push(format!(
                "{},\"worker\":{worker},\"pid\":{}",
                &line[1..cut],
                event.pid
            ));
        }
        self.forwarded[index] = Some(ForwardedCell {
            origin: CellOrigin {
                worker,
                pid: event.pid,
            },
            profile,
            lines,
        });
    }

    /// Repaints the `--progress` status line with the distributed breakdown: overall
    /// completion, live workers, cells completed per worker, and reassignment count.
    fn print_progress(&self) {
        if !self.progress || self.filled == 0 {
            return;
        }
        let total = self.jobs.len();
        let done = self.filled;
        let live = self.workers.iter().filter(|w| !w.finished).count();
        let per: Vec<String> = self
            .completed
            .iter()
            .map(|(w, c)| format!("w{w}:{c}"))
            .collect();
        let eta = self.started.elapsed().as_secs_f64() / done as f64 * (total - done) as f64;
        eprint!(
            "\r[{done}/{total} cells on {live} workers ({per}), {reassigned} reassigned, \
             ~{eta:.0}s left]  ",
            per = per.join(" "),
            reassigned = self.reassigned,
        );
    }

    /// Verifies and merges one `RESULT` frame. Every mismatch in here is corruption — a
    /// checksum-valid frame whose *content* lies — and panics rather than merging.
    fn merge_result(&mut self, slot: usize, payload: &[u8]) {
        let worker = self.workers[slot].id;
        let doc = parse_payload(worker, payload);
        assert!(
            DIST_RESULT_SCHEMA.matches(&doc),
            "distributed worker #{worker}: result frame does not declare schema '{}'",
            DIST_RESULT_SCHEMA.id()
        );
        let index = doc
            .get("index")
            .and_then(u64_value)
            .unwrap_or_else(|| panic!("distributed worker #{worker}: result has no cell index"))
            as usize;
        assert!(
            self.workers[slot].outstanding.remove(&index),
            "distributed worker #{worker} answered cell {index}, which it does not own"
        );
        let job = &self.jobs[index];
        let wall = Duration::from_nanos(doc.get("wall_nanos").and_then(u64_value).unwrap_or(0));
        let outcome = if let Some(error) = doc.get("error") {
            let message = error
                .as_str()
                .unwrap_or_else(|| {
                    panic!("distributed worker #{worker}: non-string error for cell {index}")
                })
                .to_string();
            Err(message)
        } else {
            let record = doc.get("record").unwrap_or_else(|| {
                panic!("distributed worker #{worker}: result for cell {index} has no record")
            });
            assert!(
                RESULT_RECORD_SCHEMA.matches(record),
                "distributed worker #{worker}: cell {index} record does not declare \
                 schema '{}'",
                RESULT_RECORD_SCHEMA.id()
            );
            let key = record_key(job);
            let sent_identity = record.get("identity").and_then(Json::as_hex_u64);
            let sent_variant = record.get("variant").and_then(Json::as_hex_u64);
            if sent_identity != Some(key.identity) || sent_variant != Some(key.variant) {
                panic!(
                    "distributed worker #{worker} sent a lying record for cell '{}': \
                     claims key {}.{}, the job's key is {:016x}.{:016x} — refusing to merge",
                    job.label(),
                    sent_identity.map_or("?".into(), |v| format!("{v:016x}")),
                    sent_variant.map_or("?".into(), |v| format!("{v:016x}")),
                    key.identity,
                    key.variant
                );
            }
            let output = record
                .get("output")
                .ok_or("record has no 'output' field".to_string())
                .and_then(crate::report::job_output_from_json)
                .unwrap_or_else(|e| {
                    panic!(
                        "distributed worker #{worker}: record for cell '{}' does not \
                         decode: {e}",
                        job.label()
                    )
                });
            Ok((output, wall))
        };
        assert!(
            self.outcomes[index].is_none(),
            "cell {index} resolved twice — workers overlapped"
        );
        self.outcomes[index] = Some(outcome);
        self.filled += 1;
        metrics().cell_wall_nanos.record(wall.as_nanos() as u64);
        metrics().record_worker_cell(worker, wall.as_nanos() as u64);
        *self.completed.entry(worker).or_insert(0) += 1;
        self.print_progress();
    }
}

fn parse_payload(worker: usize, payload: &[u8]) -> Json {
    let text = std::str::from_utf8(payload).unwrap_or_else(|e| {
        panic!("distributed worker #{worker}: frame payload is not UTF-8: {e}")
    });
    Json::parse(text)
        .unwrap_or_else(|e| panic!("distributed worker #{worker}: frame payload is not JSON: {e}"))
}

fn shard_payload(jobs: &[Job], cells: &[usize]) -> Vec<u8> {
    let cells = cells
        .iter()
        .map(|&i| {
            Json::obj(vec![
                ("index", u64_json(i as u64)),
                ("job", job_json(&jobs[i])),
            ])
        })
        .collect();
    DIST_SHARD_SCHEMA
        .document(vec![
            ("cells", Json::arr(cells)),
            // The coordinator's profiling switch rides along so workers accrue phase
            // profiles exactly when an in-process run would.
            ("profile", Json::Bool(athena_probe::profiling_enabled())),
        ])
        .to_string()
        .into_bytes()
}

// ---------------------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------------------

/// Optional fault injection, for the cross-process test harness. Workers read these
/// environment variables once at startup; each marker-file fault fires exactly once
/// across a whole test run (respawned workers find the marker claimed and behave).
struct Faults {
    /// `ATHENA_DIST_FAULT_DIE`: SIGKILL this worker right after it sends its first
    /// result of a shard (mid-shard death).
    die: Option<PathBuf>,
    /// `ATHENA_DIST_FAULT_TRUNCATE`: write half of the first result frame, then exit.
    truncate: Option<PathBuf>,
    /// `ATHENA_DIST_FAULT_CORRUPT`: flip one payload bit of the first result frame
    /// *after* computing its checksum.
    corrupt: Option<PathBuf>,
    /// `ATHENA_DIST_FAULT_PANIC`: panic inside any cell whose label contains this
    /// substring (exercising per-cell panic isolation across the process boundary).
    panic_label: Option<String>,
}

impl Faults {
    fn from_env() -> Self {
        let path = |key: &str| std::env::var_os(key).map(PathBuf::from);
        Self {
            die: path("ATHENA_DIST_FAULT_DIE"),
            truncate: path("ATHENA_DIST_FAULT_TRUNCATE"),
            corrupt: path("ATHENA_DIST_FAULT_CORRUPT"),
            panic_label: std::env::var("ATHENA_DIST_FAULT_PANIC").ok(),
        }
    }

    /// Atomically claims a marker file; only one worker ever wins one, so a fault fires
    /// once even when several workers race for it or a replacement worker respawns.
    fn claim(marker: &Option<PathBuf>) -> bool {
        let Some(path) = marker else { return false };
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .is_ok()
    }
}

/// Kills the current process with SIGKILL (the hardest death a worker can die — no
/// destructors, no flushing), falling back to `abort` if no `kill` binary exists.
fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    // SIGKILL delivery can race the return from `status`; abort covers the gap (and
    // non-unix hosts).
    std::process::abort();
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Runs the worker serve loop over this process's stdin/stdout until the coordinator
/// closes the pipe: handshake, then one shard at a time — run every cell (panics caught
/// per cell, exactly like the in-process pool), stream one `RESULT` frame per cell and a
/// `DONE` frame per shard.
///
/// The harness CLIs call this under their `--worker` flag; any binary that does the same
/// can serve a [`DistPool`].
///
/// # Panics
///
/// Panics if the coordinator side of the pipe breaks mid-protocol or sends garbage — a
/// worker with a broken coordinator has nothing useful left to do, and the coordinator
/// treats the resulting death as exactly that.
pub fn serve() {
    let faults = Faults::from_env();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = io::BufWriter::new(stdout.lock());
    let pid = std::process::id() as u64;
    let hello = DIST_HELLO_SCHEMA.document(vec![("pid", u64_json(pid))]);
    write_frame(&mut output, KIND_HELLO, hello.to_string().as_bytes())
        .expect("worker cannot write its handshake");
    // Cells run under an in-memory probe sink; each cell's lines are drained into one
    // EVENT frame sent just before that cell's RESULT, so the coordinator always has a
    // cell's observability by the time the cell merges.
    let local_probe = ProbeSink::buffered();
    loop {
        let frame = read_frame(&mut input).unwrap_or_else(|e| {
            panic!("worker: cannot read from the coordinator: {e}");
        });
        let Some((kind, payload)) = frame else {
            return; // Coordinator closed our stdin: shutdown.
        };
        assert_eq!(
            kind, KIND_SHARD,
            "worker: expected a SHARD frame, got {kind}"
        );
        let doc =
            Json::parse(std::str::from_utf8(&payload).expect("worker: shard payload is not UTF-8"))
                .unwrap_or_else(|e| panic!("worker: shard payload is not JSON: {e}"));
        assert!(
            DIST_SHARD_SCHEMA.matches(&doc),
            "worker: shard does not declare schema '{}'",
            DIST_SHARD_SCHEMA.id()
        );
        athena_probe::set_profiling(doc.get("profile").and_then(Json::as_bool).unwrap_or(false));
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .expect("worker: shard has no 'cells' array");
        for (nth, cell) in cells.iter().enumerate() {
            let index = cell
                .get("index")
                .and_then(u64_value)
                .expect("worker: shard cell has no index");
            let job = job_from_json(cell.get("job").expect("worker: shard cell has no job"))
                .unwrap_or_else(|e| panic!("worker: cannot reconstruct cell {index}: {e}"));
            local_probe.emit(&Event::CellStarted {
                experiment: job.experiment.clone(),
                label: job.label(),
                origin: None,
            });
            // Mirror the in-process executor: a fresh cell accrual, wall-clock measured
            // co-extensively with the `Dispatch` root span.
            let stashed = athena_probe::swap_cell(PhaseProfile::new());
            let start = Instant::now();
            let faulty = faults
                .panic_label
                .as_deref()
                .is_some_and(|needle| job.label().contains(needle));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if faulty {
                    panic!("injected worker fault: cell panics");
                }
                let _span = athena_probe::span(Phase::Dispatch);
                job.run()
            }))
            .map_err(panic_message);
            let wall = start.elapsed();
            let profile = athena_probe::swap_cell(stashed);
            match &outcome {
                Ok(_) => local_probe.emit(&Event::CellFinished {
                    experiment: job.experiment.clone(),
                    label: job.label(),
                    wall_ms: wall.as_secs_f64() * 1e3,
                    profile: (!profile.is_empty()).then_some(profile),
                    origin: None,
                }),
                Err(message) => local_probe.emit(&Event::CellPanicked {
                    experiment: job.experiment.clone(),
                    label: job.label(),
                    error: message.clone(),
                    origin: None,
                }),
            }
            let lines = local_probe.take_lines();
            write_frame(
                &mut output,
                KIND_EVENT,
                &dist_event_payload(index, pid, &lines),
            )
            .expect("worker: cannot write an event frame");
            let mut fields = vec![
                ("index", u64_json(index)),
                ("wall_nanos", u64_json(wall.as_nanos() as u64)),
            ];
            let record_doc;
            match &outcome {
                Ok(output) => {
                    record_doc = Json::parse(
                        std::str::from_utf8(&StoreHandle::encode(&job, output))
                            .expect("record payloads are UTF-8"),
                    )
                    .expect("record payloads are JSON");
                    fields.push(("record", record_doc));
                }
                Err(message) => fields.push(("error", Json::str(message))),
            }
            let result = DIST_RESULT_SCHEMA.document(fields).to_string().into_bytes();
            if nth == 0 && Faults::claim(&faults.corrupt) {
                send_corrupted(&mut output, &result);
            } else if nth == 0 && Faults::claim(&faults.truncate) {
                send_truncated(&mut output, &result);
            } else {
                write_frame(&mut output, KIND_RESULT, &result)
                    .expect("worker: cannot write a result frame");
            }
            if Faults::claim(&faults.die) {
                die_hard();
            }
        }
        let done = DIST_DONE_SCHEMA.document(vec![("cells", u64_json(cells.len() as u64))]);
        write_frame(&mut output, KIND_DONE, done.to_string().as_bytes())
            .expect("worker: cannot write the DONE frame");
    }
}

/// Fault injection: a frame whose checksum was computed over the honest payload but
/// whose payload has one bit flipped — byte-level corruption the coordinator must catch.
fn send_corrupted(w: &mut impl Write, payload: &[u8]) {
    let mut lying = payload.to_vec();
    let mid = lying.len() / 2;
    lying[mid] ^= 0x01;
    let mut frame = vec![KIND_RESULT];
    frame.extend((payload.len() as u32).to_le_bytes());
    frame.extend(fnv64(payload).to_le_bytes());
    frame.extend(&lying);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .expect("worker: cannot write");
}

/// Fault injection: the first half of an honest frame, then a silent exit — truncation,
/// which the coordinator must treat as a death, not as corruption to merge around.
fn send_truncated(w: &mut impl Write, payload: &[u8]) -> ! {
    let mut frame = vec![KIND_RESULT];
    frame.extend((payload.len() as u32).to_le_bytes());
    frame.extend(fnv64(payload).to_le_bytes());
    frame.extend(payload);
    frame.truncate(frame.len() / 2);
    let _ = w.write_all(&frame);
    let _ = w.flush();
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_SHARD, b"hello world").unwrap();
        write_frame(&mut buf, KIND_DONE, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((KIND_SHARD, b"hello world".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((KIND_DONE, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn a_flipped_bit_is_invalid_data_and_a_cut_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_RESULT, b"payload bytes").unwrap();
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let err = read_frame(&mut io::Cursor::new(flipped)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        let cut = &buf[..buf.len() / 2];
        let err = read_frame(&mut io::Cursor::new(cut.to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_kinds_and_absurd_lengths_are_invalid_data() {
        let err = read_frame(&mut io::Cursor::new(vec![99u8, 0, 0, 0, 0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut huge = vec![KIND_SHARD];
        huge.extend(u32::MAX.to_le_bytes());
        huge.extend(0u64.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn pools_compare_by_configuration() {
        let cmd = WorkerCommand::new("/bin/true", &["--worker"]);
        assert_eq!(DistPool::new(cmd.clone(), 4), DistPool::new(cmd.clone(), 4));
        assert_ne!(DistPool::new(cmd.clone(), 4), DistPool::new(cmd.clone(), 2));
        let other = cmd.clone().with_env("K", "V");
        assert_ne!(DistPool::new(cmd, 4), DistPool::new(other, 4));
    }
}
