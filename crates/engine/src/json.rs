//! A minimal hand-rolled JSON document model.
//!
//! The offline build has no serde, so the engine carries its own ~150-line value type with
//! a compact `Display` serialiser and a pretty printer. Object keys keep insertion order,
//! which keeps report files diff-stable across runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialise as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(v: f64) -> Self {
        Json::Num(v)
    }

    /// An integer value. `u64` seeds do not fit f64 losslessly, so serialise those with
    /// [`Json::hex`] instead.
    pub fn int(v: usize) -> Self {
        Json::Num(v as f64)
    }

    /// A 64-bit value rendered as a lossless `"0x…"` hex string.
    pub fn hex(v: u64) -> Self {
        Json::Str(format!("{v:#018x}"))
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }

    /// Serialises with two-space indentation and a trailing newline, for files meant to be
    /// read and diffed by humans.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return write!(f, "null");
    }
    // Integral values within f64's exact range print without a fractional part; everything
    // else uses Rust's shortest round-trip float formatting, which is valid JSON.
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON serialisation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialisation() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig7")),
            ("ok", Json::Bool(true)),
            ("cells", Json::arr(vec![Json::num(1.5), Json::int(2)])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig7","ok":true,"cells":[1.5,2],"none":null}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn numbers_render_like_json() {
        assert_eq!(Json::num(3.0).to_string(), "3");
        assert_eq!(Json::num(-2.25).to_string(), "-2.25");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn hex_round_trips_u64() {
        let v = u64::MAX - 12345;
        let Json::Str(s) = Json::hex(v) else {
            panic!("hex is a string")
        };
        let parsed = u64::from_str_radix(s.trim_start_matches("0x"), 16).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_printing_indents_and_terminates() {
        let doc = Json::obj(vec![
            ("a", Json::int(1)),
            ("b", Json::arr(vec![Json::int(2), Json::int(3)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = doc.to_pretty();
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"a\": 1"));
        assert!(text.contains("\"empty\": []"));
    }
}
