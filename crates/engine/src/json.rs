//! A minimal hand-rolled JSON document model.
//!
//! The offline build has no serde, so the engine carries its own value type with a compact
//! `Display` serialiser, a pretty printer and — since the tuning subsystem needs to load
//! configurations back from disk — a small recursive-descent parser ([`Json::parse`]).
//! Object keys keep insertion order, which keeps report files diff-stable across runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialise as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(v: f64) -> Self {
        Json::Num(v)
    }

    /// An integer value. `u64` seeds do not fit f64 losslessly, so serialise those with
    /// [`Json::hex`] instead.
    pub fn int(v: usize) -> Self {
        Json::Num(v as f64)
    }

    /// A 64-bit value rendered as a lossless `"0x…"` hex string.
    pub fn hex(v: u64) -> Self {
        Json::Str(format!("{v:#018x}"))
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }

    /// Serialises with two-space indentation and a trailing newline, for files meant to be
    /// read and diffed by humans.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    /// Parses a JSON document.
    ///
    /// Supports the full value model this writer emits — objects, arrays, strings (with
    /// `\uXXXX` escapes, including surrogate pairs), numbers, booleans and `null` — and
    /// rejects trailing garbage. Numbers are parsed as `f64` via Rust's grammar-compatible
    /// float parser, so everything the serialiser prints round-trips exactly.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up a key in an object (`None` for other variants or missing keys). When a key
    /// repeats, the first occurrence wins — matching how the writer never emits duplicates.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Decodes a `"0x…"` hex string written by [`Json::hex`] back into a `u64`. Strict:
    /// only hex digits may follow the prefix (`from_str_radix` alone would also accept a
    /// sign character).
    pub fn as_hex_u64(&self) -> Option<u64> {
        let s = self.as_str()?.strip_prefix("0x")?;
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

/// A JSON parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim: the input is a
                    // &str, so byte boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        // Exactly four hex digits: `from_str_radix` alone would also accept "+041".
        if !slice.iter().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.error("invalid \\u escape"));
        }
        let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        let int_start = self.pos;
        if !digits(self) {
            return Err(self.error("expected digits in number"));
        }
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(self.error("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("number out of range"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return write!(f, "null");
    }
    // Integral values within f64's exact range print without a fractional part; everything
    // else uses Rust's shortest round-trip float formatting, which is valid JSON.
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON serialisation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialisation() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig7")),
            ("ok", Json::Bool(true)),
            ("cells", Json::arr(vec![Json::num(1.5), Json::int(2)])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig7","ok":true,"cells":[1.5,2],"none":null}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn numbers_render_like_json() {
        assert_eq!(Json::num(3.0).to_string(), "3");
        assert_eq!(Json::num(-2.25).to_string(), "-2.25");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn hex_round_trips_u64() {
        let v = u64::MAX - 12345;
        let Json::Str(s) = Json::hex(v) else {
            panic!("hex is a string")
        };
        let parsed = u64::from_str_radix(s.trim_start_matches("0x"), 16).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig7")),
            ("ok", Json::Bool(true)),
            ("cells", Json::arr(vec![Json::num(1.5), Json::int(2)])),
            ("none", Json::Null),
            ("nested", Json::obj(vec![("k", Json::arr(Vec::new()))])),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let original = Json::str("a\"b\\c\nd\te\u{1} λ 🦀");
        assert_eq!(Json::parse(&original.to_string()).unwrap(), original);
        // Escaped forms the writer never emits still parse.
        assert_eq!(
            Json::parse(r#""\u0041\/\ud83e\udd80""#).unwrap(),
            Json::str("A/🦀")
        );
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("3").unwrap(), Json::num(3.0));
        assert_eq!(Json::parse("0").unwrap(), Json::num(0.0));
        assert_eq!(Json::parse("0.5").unwrap(), Json::num(0.5));
        assert_eq!(Json::parse("-0").unwrap(), Json::num(-0.0));
        assert_eq!(Json::parse("-2.25").unwrap(), Json::num(-2.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::num(1000.0));
        assert_eq!(Json::parse("2.5E-2").unwrap(), Json::num(0.025));
        let shortest = format!("{}", 0.1f64 + 0.2f64);
        assert_eq!(
            Json::parse(&shortest).unwrap(),
            Json::num(0.1 + 0.2),
            "shortest-round-trip formatting parses back to the same f64"
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "truth",
            "nul",
            "1.2.3",
            "\"abc",
            "{\"a\" 1}",
            "[1] x",
            "01x",
            "01",
            "-007",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\\u+041\"",
            "--1",
            "1e",
            "5.",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc =
            Json::parse(r#"{"a": {"b": [1, 2]}, "s": "x", "t": true, "h": "0x00000000000000ff"}"#)
                .unwrap();
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.get("b"))
                .and_then(|b| b.as_array())
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("t").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("h").and_then(Json::as_hex_u64), Some(255));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
        let hex = Json::hex(u64::MAX - 3);
        assert_eq!(hex.as_hex_u64(), Some(u64::MAX - 3));
        // Strictly hex digits after the prefix — no signs, no empty payload.
        assert_eq!(Json::str("0x+ff").as_hex_u64(), None);
        assert_eq!(Json::str("0x").as_hex_u64(), None);
    }

    #[test]
    fn pretty_printing_indents_and_terminates() {
        let doc = Json::obj(vec![
            ("a", Json::int(1)),
            ("b", Json::arr(vec![Json::int(2), Json::int(3)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = doc.to_pretty();
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"a\": 1"));
        assert!(text.contains("\"empty\": []"));
    }
}
