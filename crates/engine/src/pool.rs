//! A hand-rolled bounded worker pool.
//!
//! The offline build has no access to crates.io (so no rayon/crossbeam); the pool is built
//! from `std` only: scoped worker threads pull job indices from a shared atomic injector
//! counter, run the job under [`std::panic::catch_unwind`] so one poisoned job fails only
//! its own cell, and write the outcome into a per-job result slot so the caller sees results
//! in submission order regardless of which worker finished when.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Outcome of one pooled job: the produced value plus its wall-clock time, or the panic
/// message if the job panicked.
pub type PoolOutcome<R> = Result<(R, Duration), String>;

/// Number of hardware threads available to this process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `workers` worker threads and returns the outcomes in
/// item order.
///
/// Properties the engine relies on:
///
/// * **In-order collection** — `out[i]` is always the outcome for `items[i]`.
/// * **Panic isolation** — a panic inside `f` is caught and reported as `Err(message)` for
///   that item only; every other item still runs.
/// * **Serial fast path** — with `workers <= 1` no threads are spawned and items run on the
///   caller's thread, one after another, exactly like a plain loop.
/// * **Wall-clock accounting** — each `Ok` outcome carries the time spent inside `f` for
///   that item.
///
/// `workers` is clamped to `[1, items.len()]`.
pub fn parallel_map<P, R, F>(workers: usize, items: &[P], f: F) -> Vec<PoolOutcome<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(items.len());
    if workers == 1 {
        return items.iter().map(|item| run_one(&f, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PoolOutcome<R>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = run_one(&f, &items[i]);
                *slots[i].lock().expect("result slot lock") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every claimed job stores an outcome")
        })
        .collect()
}

fn run_one<P, R, F>(f: &F, item: &P) -> PoolOutcome<R>
where
    F: Fn(&P) -> R + Sync,
{
    let start = Instant::now();
    catch_unwind(AssertUnwindSafe(|| f(item)))
        .map(|value| (value, start.elapsed()))
        .map_err(|panic| panic_message(panic.as_ref()))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(8, &items, |&i| i * 2);
        assert_eq!(out.len(), 64);
        for (i, o) in out.iter().enumerate() {
            let (v, _) = o.as_ref().expect("no panics");
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..33).collect();
        let collect = |workers| -> Vec<u64> {
            parallel_map(workers, &items, |&i| i.wrapping_mul(0x9e37_79b9))
                .into_iter()
                .map(|o| o.expect("ok").0)
                .collect()
        };
        assert_eq!(collect(1), collect(4));
        assert_eq!(collect(4), collect(16));
    }

    #[test]
    fn one_panicking_job_does_not_sink_the_batch() {
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(4, &items, |&i| {
            assert!(i != 7, "job {i} is poisoned");
            i + 1
        });
        for (i, o) in out.iter().enumerate() {
            if i == 7 {
                let msg = o.as_ref().expect_err("job 7 panics");
                assert!(msg.contains("poisoned"), "panic message survives: {msg}");
            } else {
                assert_eq!(o.as_ref().expect("other jobs run").0, i as u64 + 1);
            }
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        // More workers than items and zero workers both still work.
        let items = [1u64, 2, 3];
        let a = parallel_map(100, &items, |&i| i);
        let b = parallel_map(0, &items, |&i| i);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let items: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &items, |&i| i).is_empty());
    }

    #[test]
    fn wall_clock_is_recorded() {
        let items = [5u64];
        let out = parallel_map(1, &items, |&i| {
            std::thread::sleep(Duration::from_millis(i));
            i
        });
        let (_, wall) = out[0].as_ref().expect("ok");
        assert!(*wall >= Duration::from_millis(5));
    }
}
