//! # athena-engine
//!
//! The parallel experiment-execution subsystem of the Athena reproduction.
//!
//! Every figure of the paper's evaluation is a grid of (workload × mechanism ×
//! system-config) simulation cells. This crate turns one grid cell into a [`Job`] — a plain
//! data value carrying the workload (or multi-core mix), the [`SystemConfig`], the
//! [`CoordinatorKind`] and an instruction budget — and runs batches of jobs on a hand-rolled
//! bounded worker pool (`std` only; the offline build has no rayon):
//!
//! * **Determinism** — a job's result is a pure function of the job itself. Seeds are
//!   derived from the cell identity ([`seed`]), never from scheduling, so a batch produces
//!   bit-identical results at any worker count and in any submission order.
//! * **Panic isolation** — one poisoned cell fails that cell only; the rest of the batch
//!   completes ([`pool::parallel_map`]).
//! * **In-order collection** — results come back in submission order with per-cell
//!   wall-clock accounting ([`Engine::run`]).
//! * **Machine-readable results** — a hand-rolled JSON writer ([`json::Json`]) serialises
//!   aggregate [`ExperimentTable`]s, per-cell records ([`with_recording`]) and the
//!   `BENCH_engine.json` performance snapshot ([`report::BenchReport`]); every document
//!   declares a shared [`report::Schema`] constant.
//! * **Result caching** — an optional persistent content-addressed store
//!   ([`StoreHandle`], crate `athena-store`) serves previously simulated cells, keyed by
//!   [`Job::identity_hash`], so warm re-runs simulate nothing and killed sweeps resume
//!   paying only for missing cells ([`Engine::with_store`]).
//! * **Distribution** — an optional coordinator/worker executor ([`DistPool`], module
//!   [`dist`]) shards a batch across spawned worker processes over a length-delimited
//!   checksummed stdio protocol (jobs serialised by [`wire`]), with bounded
//!   retry/reassignment on worker death and a loud failure on corruption; merge order
//!   and the result store stay on the coordinator, so tables remain byte-identical at
//!   any worker count ([`Engine::with_dist`]).
//!
//! ```
//! use athena_engine::{CoordinatorKind, Engine, Job, OcpKind, PrefetcherKind, SystemConfig};
//! use athena_workloads::all_workloads;
//!
//! let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
//! let jobs: Vec<Job> = all_workloads()
//!     .into_iter()
//!     .take(2)
//!     .map(|w| Job::single("demo", w, config.clone(), CoordinatorKind::Athena, 5_000))
//!     .collect();
//! let cells = Engine::new(2).run(jobs);
//! assert_eq!(cells.len(), 2);
//! assert!(cells.iter().all(|c| c.output.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod job;
mod kinds;
mod record;
mod table;

pub mod dist;
pub mod json;
pub mod pool;
pub mod report;
pub mod seed;
pub mod store;
pub mod wire;

pub use dist::{DistPool, RemoteCell, WorkerCommand};
pub use exec::{CellResult, Engine};
pub use job::{
    simulate, simulate_multicore, FileWorkload, Job, JobOutput, RunResult, SeedPolicy,
    TelemetrySpec, WorkloadRef,
};
pub use kinds::{default_athena_config, CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
pub use pool::available_parallelism;
pub use record::{with_recording, CellRecord};
pub use seed::{derive_seed, SeedHasher};
pub use store::{record_key, variant_hash, StoreHandle};
pub use table::ExperimentTable;

// Re-exported so store consumers need only this crate.
pub use athena_store::{
    GcReport, RecordKey, ResultStore, StoreError, StorePolicy, StoreStats, VerifyReport,
};

// Re-exported so observability consumers (the CLIs, the tune crate) need only this crate.
pub use athena_probe::{
    metrics, profiling_enabled, set_profiling, swap_cell, take_cell, CellOrigin, Counter, Event,
    Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Phase, PhaseProfile, PhaseStat,
    ProbeSink, WorkerUtil, ALL_PHASES, EVENTS_SCHEMA_ID, TOPOLOGY_EVENT_KINDS, WALL_CLOCK_FIELDS,
    WORKER_ATTRIBUTION_FIELDS,
};
