//! Per-cell telemetry recording.
//!
//! Experiments consume engine results internally and return only aggregate tables, so the
//! per-cell records (label, seed, wall-clock, outcome) that the JSON reports need would
//! otherwise be lost. [`with_recording`] opens a thread-local collection scope: every
//! [`crate::Engine::run`] batch executed on the same thread inside the scope appends its
//! cell records, and the scope returns them alongside the closure's value — no plumbing
//! through the experiment functions required.

use std::cell::RefCell;
use std::time::Duration;

use athena_sim::DramStats;
use athena_telemetry::Timeline;

use crate::exec::CellResult;
use crate::job::JobOutput;
use crate::json::Json;
use crate::report::{dram_stats_json, timeline_json};

thread_local! {
    static RECORDER: RefCell<Option<Vec<CellRecord>>> = const { RefCell::new(None) };
}

/// Metadata of one executed cell (the result payload itself is not retained).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The experiment the cell belongs to.
    pub experiment: String,
    /// Cell label (`workload/coordinator/config`).
    pub label: String,
    /// The job's derived seed.
    pub seed: u64,
    /// Wall-clock time spent simulating the cell (zero for cells served from a result
    /// store).
    pub wall: Duration,
    /// Whether the cell's result was served from a result store instead of simulated.
    pub cached: bool,
    /// The panic message, if the cell failed.
    pub error: Option<String>,
    /// End-of-run DRAM-channel statistics (single-core cells only; `None` for failed or
    /// multi-core cells). Lets report consumers — tuning objectives, bandwidth figures —
    /// see the traffic a cell generated, not just its IPC.
    pub dram: Option<DramStats>,
    /// The cell's windowed time series, when its job requested telemetry (single-core
    /// cells only; `None` otherwise).
    pub timeline: Option<Timeline>,
    /// The cell's hot-path phase profile, when profiling was on while it simulated
    /// (`None` for cached and failed cells).
    pub profile: Option<athena_probe::PhaseProfile>,
    /// The distributed worker that simulated the cell (`None` for in-process and
    /// cached cells).
    pub origin: Option<athena_probe::CellOrigin>,
}

impl CellRecord {
    /// Serialises the record for the per-figure JSON reports. A collected timeline is
    /// embedded in full, so `--timeline`-style runs carry their series through the same
    /// report pipeline as everything else.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label", Json::str(&self.label)),
            ("seed", Json::hex(self.seed)),
            ("wall_ms", Json::num(self.wall.as_secs_f64() * 1e3)),
            ("ok", Json::Bool(self.error.is_none())),
            ("cached", Json::Bool(self.cached)),
        ];
        if let Some(e) = &self.error {
            pairs.push(("error", Json::str(e)));
        }
        if let Some(d) = &self.dram {
            pairs.push(("dram", dram_stats_json(d)));
        }
        if let Some(t) = &self.timeline {
            pairs.push(("timeline", timeline_json(t)));
        }
        if let Some(p) = &self.profile {
            pairs.push(("profile", crate::report::phase_profile_json(p)));
        }
        if let Some(origin) = self.origin {
            pairs.push(("worker", Json::int(origin.worker)));
            pairs.push(("pid", crate::report::u64_json(origin.pid)));
        }
        Json::obj(pairs)
    }
}

/// Restores the previous recording scope on unwind, so a panicking closure (e.g. a failed
/// cell reaching table assembly) cannot leave the thread-local recorder stuck on. The
/// success path of [`with_recording`] disarms the guard and restores the scope itself.
struct ScopeGuard {
    previous: Option<Vec<CellRecord>>,
    armed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.armed {
            let previous = self.previous.take();
            RECORDER.with(|r| *r.borrow_mut() = previous);
        }
    }
}

/// Runs `f` with cell recording enabled on this thread and returns its value together with
/// every cell record produced by engine batches inside the scope. Scopes nest: an inner
/// scope captures its own cells and the outer scope does not see them. Panic-safe: if `f`
/// unwinds, the scope's records are discarded and the previous scope is restored before the
/// panic propagates.
pub fn with_recording<T>(f: impl FnOnce() -> T) -> (T, Vec<CellRecord>) {
    let mut guard = ScopeGuard {
        previous: RECORDER.with(|r| r.borrow_mut().replace(Vec::new())),
        armed: true,
    };
    let value = f();
    guard.armed = false;
    let cells = RECORDER.with(|r| {
        let mut slot = r.borrow_mut();
        let cells = slot.take().unwrap_or_default();
        *slot = guard.previous.take();
        cells
    });
    (value, cells)
}

/// Appends the batch's cell metadata to the active recording scope, if any.
pub(crate) fn record_cells(cells: &[CellResult]) {
    RECORDER.with(|r| {
        if let Some(records) = r.borrow_mut().as_mut() {
            records.extend(cells.iter().map(|c| CellRecord {
                experiment: c.experiment.clone(),
                label: c.label.clone(),
                seed: c.seed,
                wall: c.wall,
                cached: c.cached,
                error: c.output.as_ref().err().cloned(),
                dram: match &c.output {
                    Ok(JobOutput::Single(r)) => Some(r.dram),
                    _ => None,
                },
                timeline: match &c.output {
                    Ok(JobOutput::Single(r)) => r.timeline.clone(),
                    _ => None,
                },
                profile: c.profile,
                origin: c.origin,
            }));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Engine;
    use crate::job::Job;
    use crate::kinds::{CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
    use athena_workloads::all_workloads;

    fn one_job() -> Job {
        Job::single(
            "rec-test",
            all_workloads()[0].clone(),
            SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet),
            CoordinatorKind::Baseline,
            5_000,
        )
    }

    #[test]
    fn recording_scope_captures_engine_batches() {
        let ((), cells) = with_recording(|| {
            Engine::new(2).run(vec![one_job(), one_job()]);
        });
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].experiment, "rec-test");
        assert!(cells[0].error.is_none());
        let json = cells[0].to_json().to_string();
        assert!(json.contains("\"ok\":true"));
        // Single-core cells carry their DRAM-channel snapshot into the JSON record.
        let dram = cells[0].dram.expect("single-core cell has DRAM stats");
        assert!(dram.total_requests > 0);
        assert!(json.contains("\"dram\":{\"total_requests\":"));
    }

    #[test]
    fn recording_scope_captures_timelines_of_telemetry_jobs() {
        let ((), cells) = with_recording(|| {
            Engine::new(1).run(vec![one_job().with_telemetry(2048), one_job()]);
        });
        let timeline = cells[0].timeline.as_ref().expect("telemetry cell");
        assert!(!timeline.windows.is_empty());
        assert!(cells[1].timeline.is_none());
        let json = cells[0].to_json().to_string();
        assert!(json.contains("\"timeline\""));
        assert!(json.contains("\"window_instructions\":2048"));
    }

    #[test]
    fn no_scope_means_no_recording_overhead_or_leak() {
        Engine::new(1).run(vec![one_job()]);
        let ((), cells) = with_recording(|| {});
        assert!(cells.is_empty(), "cells outside the scope are not captured");
    }

    #[test]
    fn unwinding_scope_restores_the_previous_one() {
        let ((), outer) = with_recording(|| {
            Engine::new(1).run(vec![one_job()]);
            let panic = std::panic::catch_unwind(|| {
                with_recording(|| {
                    Engine::new(1).run(vec![one_job()]);
                    panic!("cell assembly failed");
                })
            });
            assert!(panic.is_err());
            // The outer scope must still be active and must not have absorbed the
            // panicked inner scope's records.
            Engine::new(1).run(vec![one_job()]);
        });
        assert_eq!(outer.len(), 2, "outer scope survives an inner panic intact");
    }

    #[test]
    fn scopes_nest() {
        let ((), outer) = with_recording(|| {
            Engine::new(1).run(vec![one_job()]);
            let ((), inner) = with_recording(|| {
                Engine::new(1).run(vec![one_job(), one_job()]);
            });
            assert_eq!(inner.len(), 2);
        });
        assert_eq!(outer.len(), 1, "outer scope sees only its own batch");
    }
}
