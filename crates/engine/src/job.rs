//! The [`Job`] abstraction: one simulation cell, as plain data.
//!
//! A job bundles everything one cell of an experiment grid needs — a workload reference
//! ([`WorkloadRef`]: a generated workload, a multi-core mix, or an on-disk trace file), a
//! [`SystemConfig`], a [`CoordinatorKind`] and an instruction budget — plus a deterministic
//! seed derived from that identity (see [`crate::seed`]). Because the job is a pure value
//! and [`Job::run`] builds every mechanism from scratch, a job's result depends only on the
//! job itself: never on which worker ran it, in what order, or what else was in the batch.
//!
//! File-backed cells ([`WorkloadRef::File`]) carry the workload *name* separately from the
//! trace path, and only the name participates in seeding and labelling. A recorded trace
//! replayed under the name of the workload that produced it therefore derives the same
//! seed, the same label and — because the recorded records are the generator's records —
//! the same result as the generated cell, byte for byte.

use std::path::PathBuf;

use athena_sim::{MultiCoreResult, MultiCoreSimulator, Prefetcher, SimResult, Simulator};
use athena_telemetry::Timeline;
use athena_trace_io::open_trace;
use athena_workloads::{WorkloadMix, WorkloadSpec};

use crate::kinds::{CoordinatorKind, SystemConfig};
use crate::seed::SeedHasher;

/// Opt-in request for windowed time-series telemetry on a [`Job`].
///
/// Telemetry is pure observation: it never feeds back into the simulation, so it is
/// deliberately **excluded from seed derivation** — running the same cell with and without
/// a timeline (or with different window lengths) yields the same simulation result, and
/// the timeline itself is a pure function of the cell. The one cost it enables is the
/// per-epoch agent snapshot (a QVStore pass), which is why it is off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Window length in instructions (windows round up to whole coordination epochs).
    pub window_instructions: u64,
}

/// How a job seeds the stochastic parts of its mechanisms (today: the Athena agent's
/// ε-greedy exploration stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Use the seed carried by the mechanism configuration itself (the paper-reproduction
    /// default: every cell uses Table 3's fixed agent seed, exactly like the original serial
    /// harness).
    Config,
    /// Use the job's derived per-cell seed. Cells then explore independently of each other
    /// while still being a pure function of the cell identity, so results remain independent
    /// of scheduling order and worker count.
    Derived,
}

/// The workload side of a cell: a generated workload, a multi-core mix, or an on-disk
/// trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadRef {
    /// A single-core run of one generated workload.
    Single(WorkloadSpec),
    /// A multi-core run of one mix (one workload per core, shared DRAM channel).
    Multi(WorkloadMix),
    /// A single-core run replayed from an on-disk trace (see `athena-trace-io`).
    File(FileWorkload),
}

/// An on-disk trace standing in for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FileWorkload {
    /// The workload name used for seeding and labels. For a recorded trace this is the
    /// name of the workload that produced it, which makes the file-backed cell's identity
    /// — and therefore its derived seed and its place in report tables — identical to the
    /// generated cell's.
    pub name: String,
    /// Path of the trace file (binary or text; the format is sniffed from the contents).
    pub path: PathBuf,
}

impl WorkloadRef {
    /// The workload or mix name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadRef::Single(spec) => &spec.name,
            WorkloadRef::Multi(mix) => &mix.name,
            WorkloadRef::File(file) => &file.name,
        }
    }
}

/// One simulation cell of an experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The experiment this cell belongs to (e.g. `"fig7"`).
    pub experiment: String,
    /// The workload, mix, or trace file to run.
    pub cell: WorkloadRef,
    /// The system configuration (cache design, mechanisms, simulator knobs).
    pub config: SystemConfig,
    /// The coordination policy.
    pub coordinator: CoordinatorKind,
    /// Instruction budget (per core, for multi-core cells).
    pub instructions: u64,
    /// Seed derived from the cell identity; see [`crate::seed`].
    pub seed: u64,
    /// How the seed is applied; defaults to [`SeedPolicy::Config`].
    pub seed_policy: SeedPolicy,
    /// Windowed-telemetry request, if any (see [`TelemetrySpec`]). Not part of the cell
    /// identity: observability must never change what a cell computes.
    pub telemetry: Option<TelemetrySpec>,
}

impl Job {
    /// Creates a single-core job and derives its seed.
    pub fn single(
        experiment: &str,
        spec: WorkloadSpec,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions: u64,
    ) -> Self {
        Self::build(
            experiment,
            WorkloadRef::Single(spec),
            config,
            coordinator,
            instructions,
        )
    }

    /// Creates a multi-core job (one workload per core) and derives its seed.
    pub fn multicore(
        experiment: &str,
        mix: WorkloadMix,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions_per_core: u64,
    ) -> Self {
        Self::build(
            experiment,
            WorkloadRef::Multi(mix),
            config,
            coordinator,
            instructions_per_core,
        )
    }

    /// Creates a single-core job replaying an on-disk trace, and derives its seed.
    ///
    /// `name` is the workload name the cell answers to; with the name of the workload the
    /// trace was recorded from, the job's seed and label are identical to the generated
    /// cell's (see the module docs). The file itself is only opened inside [`Job::run`],
    /// so a missing or corrupt trace fails that cell alone when the batch executes.
    pub fn from_file(
        experiment: &str,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions: u64,
    ) -> Self {
        Self::build(
            experiment,
            WorkloadRef::File(FileWorkload {
                name: name.into(),
                path: path.into(),
            }),
            config,
            coordinator,
            instructions,
        )
    }

    fn build(
        experiment: &str,
        cell: WorkloadRef,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions: u64,
    ) -> Self {
        let mut job = Self {
            experiment: experiment.to_string(),
            cell,
            config,
            coordinator,
            instructions,
            seed: 0,
            seed_policy: SeedPolicy::Config,
            telemetry: None,
        };
        job.seed = job.identity_hash();
        job
    }

    /// Returns a copy running under [`SeedPolicy::Derived`].
    pub fn with_derived_seed(mut self) -> Self {
        self.seed_policy = SeedPolicy::Derived;
        self
    }

    /// Returns a copy of this job running an explicit Athena configuration
    /// ([`CoordinatorKind::AthenaWith`]) in place of its coordinator, with the seed
    /// re-derived for the new identity. This is the design-space explorer's primitive: one
    /// template job per workload, overridden once per candidate configuration, so every
    /// candidate cell inherits the template's workload reference (including trace-file
    /// substitution) without re-running the enumeration logic.
    pub fn with_athena_config(mut self, config: athena_core::AthenaConfig) -> Self {
        self.coordinator = CoordinatorKind::AthenaWith(config);
        self.seed = self.identity_hash();
        self
    }

    /// Returns a copy that collects a windowed timeline with the given window length
    /// (see [`TelemetrySpec`]; the seed is untouched on purpose).
    pub fn with_telemetry(mut self, window_instructions: u64) -> Self {
        self.telemetry = Some(TelemetrySpec {
            window_instructions,
        });
        self
    }

    /// The canonical identity hash of this cell — the 64-bit key under which its result
    /// is seeded, cached and compared.
    ///
    /// The hash covers exactly the facets that determine *what the cell computes*: the
    /// experiment name, the workload/mix/trace-file *name* (never a trace file's path —
    /// replaying a recorded trace from any directory keeps the generated cell's
    /// identity), the per-workload names of a multi-core mix, the full
    /// [`SystemConfig`] (via its own canonical `hash_into`), the coordinator name (plus
    /// the `Debug` rendering of an explicit [`CoordinatorKind::AthenaWith`]
    /// configuration, so every hyperparameter distinguishes DSE grid points), and the
    /// instruction budget. It deliberately excludes scheduling state (worker count,
    /// submission order), [`Job::seed_policy`] and [`Job::telemetry`] — those change how
    /// the result is *observed or seeded*, not which cell it is; the result store keys
    /// records by `(identity_hash, variant)` where the variant covers the excluded
    /// output-affecting facets.
    ///
    /// # Stability contract
    ///
    /// The derivation — FNV-1a 64 over length-delimited parts, finished with one
    /// SplitMix64 round (see [`crate::seed::SeedHasher`]) — is a persistence format:
    /// on-disk result stores key records by this value, and `tests/identity.rs` pins
    /// known hash values so any drift fails CI. Changing the hashed facets, their order,
    /// or the hash constants invalidates every existing store and requires bumping the
    /// store's `FORMAT_VERSION` together with the pinned test constants.
    pub fn identity_hash(&self) -> u64 {
        let mut h = SeedHasher::new();
        h.write_str(&self.experiment);
        h.write_str(self.cell.name());
        if let WorkloadRef::Multi(mix) = &self.cell {
            for w in &mix.workloads {
                h.write_str(&w.name);
            }
        }
        self.config.hash_into(&mut h);
        h.write_str(self.coordinator.name());
        if let CoordinatorKind::AthenaWith(cfg) = &self.coordinator {
            h.write_str(&format!("{cfg:?}"));
        }
        h.write_u64(self.instructions);
        h.finish()
    }

    /// A short human-readable cell label for reports, e.g.
    /// `"410.bwaves-1963B/athena/<popet, pythia>"`. Explicit Athena configurations carry
    /// their hyperparameters (`athena*(a0.2,g0.6,…)`), so DSE grid points and ablation
    /// steps stay distinguishable in per-cell records.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.cell.name(),
            self.coordinator.describe(),
            self.config.describe()
        )
    }

    /// Builds the fully-configured single-core simulator for this job.
    fn single_core_sim(&self, coordinator: Box<dyn athena_sim::Coordinator>) -> Simulator {
        let mut sim = Simulator::new(self.config.sim.clone());
        if self.telemetry.is_some() {
            sim = sim.with_agent_telemetry();
        }
        for p in &self.config.prefetchers {
            sim = sim.with_prefetcher(p.build());
        }
        if let Some(ocp) = &self.config.ocp {
            sim = sim.with_ocp(ocp.build());
        }
        sim.with_coordinator(coordinator)
    }

    /// Windows a finished single-core run into its timeline, if this job asked for one.
    fn timeline_of(&self, result: &SimResult) -> Option<Timeline> {
        self.telemetry.map(|t| {
            Timeline::from_epochs(t.window_instructions, &result.epochs, &result.agent_epochs)
        })
    }

    /// Runs the cell to completion and returns its result.
    ///
    /// Pure with respect to scheduling: every mechanism is constructed fresh from the job's
    /// own data, so calling this from any thread, any number of times, yields the same
    /// result.
    ///
    /// # Panics
    ///
    /// A file-backed cell panics if its trace cannot be opened, is corrupt, or holds
    /// fewer records than the job's instruction budget (the simulator would otherwise
    /// stop at the end of the file and silently produce a shorter — different — result).
    /// Inside [`crate::Engine::run`] the panic is caught per cell: one bad trace file
    /// fails exactly one cell and the rest of the batch completes.
    pub fn run(&self) -> JobOutput {
        let coordinator = || match self.seed_policy {
            SeedPolicy::Config => self.coordinator.build(),
            SeedPolicy::Derived => self.coordinator.build_seeded(self.seed),
        };
        match &self.cell {
            WorkloadRef::Single(spec) => {
                let mut sim = self.single_core_sim(coordinator());
                let result = sim.run(spec.trace(), self.instructions);
                let timeline = self.timeline_of(&result);
                JobOutput::Single(Box::new(RunResult::from_sim(&spec.name, result, timeline)))
            }
            WorkloadRef::File(file) => {
                let trace = open_trace(&file.path).unwrap_or_else(|e| {
                    panic!("cannot replay trace '{}': {e}", file.path.display())
                });
                // Reject a too-short trace before simulating (binary traces carry the
                // record count); BudgetedTrace catches the same condition mid-stream for
                // headerless text traces.
                if let Some(header) = trace.header() {
                    assert!(
                        header.records >= self.instructions,
                        "trace '{}' holds {} records but the cell budget is {} instructions",
                        file.path.display(),
                        header.records,
                        self.instructions
                    );
                }
                let guarded = BudgetedTrace {
                    inner: trace,
                    consumed: 0,
                    budget: self.instructions,
                    path: &file.path,
                };
                let mut sim = self.single_core_sim(coordinator());
                let result = sim.run(guarded, self.instructions);
                let timeline = self.timeline_of(&result);
                JobOutput::Single(Box::new(RunResult::from_sim(&file.name, result, timeline)))
            }
            WorkloadRef::Multi(mix) => {
                let cores = mix.workloads.len();
                let mut mc = MultiCoreSimulator::new(self.config.sim.clone(), cores);
                if self.telemetry.is_some() {
                    // Multi-core cells collect per-core agent snapshots; their per-core
                    // timelines are derived by the caller from each core's SimResult.
                    mc = mc.with_agent_telemetry();
                }
                for spec in &mix.workloads {
                    let prefetchers: Vec<Box<dyn Prefetcher>> =
                        self.config.prefetchers.iter().map(|p| p.build()).collect();
                    let ocp = self.config.ocp.as_ref().map(|o| o.build());
                    mc.add_core(
                        Box::new(spec.trace()),
                        prefetchers,
                        ocp,
                        Some(coordinator()),
                    );
                }
                JobOutput::Multi(mc.run(self.instructions))
            }
        }
    }
}

/// Wraps a replayed trace so that running out of records *before* the cell's instruction
/// budget panics instead of quietly ending the simulation early. The simulator treats a
/// `None` from its source as a clean end of trace; for a file-backed cell that would turn
/// a short recording into a silently different result — the one thing the engine promises
/// never happens.
struct BudgetedTrace<'a> {
    inner: athena_trace_io::TraceFile,
    consumed: u64,
    budget: u64,
    path: &'a std::path::Path,
}

impl athena_sim::TraceSource for BudgetedTrace<'_> {
    fn next_record(&mut self) -> Option<athena_sim::TraceRecord> {
        match self.inner.next_record() {
            Some(r) => {
                self.consumed += 1;
                Some(r)
            }
            None => {
                assert!(
                    self.consumed >= self.budget,
                    "trace '{}' ended after {} records but the cell budget is {} instructions",
                    self.path.display(),
                    self.consumed,
                    self.budget
                );
                None
            }
        }
    }
}

/// The result of one job: single-core or multi-core, matching the job's [`WorkloadRef`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Result of a single-core cell (boxed: the inline stats block is large).
    Single(Box<RunResult>),
    /// Result of a multi-core cell.
    Multi(MultiCoreResult),
}

/// The result of one single-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles taken.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whole-run simulator statistics.
    pub stats: athena_sim::SimStats,
    /// End-of-run DRAM-channel statistics (per-kind request counts, row-buffer behaviour,
    /// bus occupancy). Tuning objectives use these to penalise bandwidth-hungry
    /// configurations; the per-cell JSON records carry them too.
    pub dram: athena_sim::DramStats,
    /// Per-epoch telemetry (kept for phase-level analyses).
    pub epochs: Vec<athena_sim::EpochStats>,
    /// The windowed time series, present when the job requested telemetry
    /// ([`Job::with_telemetry`]).
    pub timeline: Option<Timeline>,
}

impl RunResult {
    fn from_sim(workload: &str, r: SimResult, timeline: Option<Timeline>) -> Self {
        Self {
            workload: workload.to_string(),
            instructions: r.instructions,
            cycles: r.cycles,
            ipc: r.ipc(),
            stats: r.stats,
            dram: r.dram,
            epochs: r.epochs,
            timeline,
        }
    }
}

/// Runs one workload on one system configuration under one coordination policy.
///
/// This is the serial single-cell entry point the engine's jobs are built on; it behaves
/// exactly like a [`Job::single`] run under [`SeedPolicy::Config`].
pub fn simulate(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions: u64,
) -> RunResult {
    let job = Job::single(
        "adhoc",
        spec.clone(),
        config.clone(),
        coordinator,
        instructions,
    );
    match job.run() {
        JobOutput::Single(r) => *r,
        JobOutput::Multi(_) => unreachable!("single job yields a single result"),
    }
}

/// Runs a multi-core mix: every core gets its own instance of the configured mechanisms and
/// coordinator, and all cores share one DRAM channel.
pub fn simulate_multicore(
    mix: &WorkloadMix,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions_per_core: u64,
) -> MultiCoreResult {
    let job = Job::multicore(
        "adhoc",
        mix.clone(),
        config.clone(),
        coordinator,
        instructions_per_core,
    );
    match job.run() {
        JobOutput::Multi(r) => r,
        JobOutput::Single(_) => unreachable!("multicore job yields a multicore result"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{OcpKind, PrefetcherKind};
    use athena_workloads::all_workloads;

    fn cd1() -> SystemConfig {
        SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet)
    }

    #[test]
    fn baseline_run_produces_no_speculative_traffic() {
        let spec = &all_workloads()[0];
        let r = simulate(spec, &cd1(), CoordinatorKind::Baseline, 20_000);
        assert_eq!(r.stats.prefetches_issued, 0);
        assert_eq!(r.stats.ocp_predictions, 0);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn naive_run_produces_speculative_traffic() {
        let spec = &all_workloads()[0];
        let r = simulate(spec, &cd1(), CoordinatorKind::Naive, 20_000);
        assert!(r.stats.prefetches_issued > 0);
        assert!(r.stats.ocp_predictions > 0);
    }

    #[test]
    fn job_seed_depends_on_identity_not_construction_order() {
        let spec = all_workloads()[0].clone();
        let a = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        let b = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        assert_eq!(a.seed, b.seed);
        let c = Job::single("fig9", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        assert_ne!(a.seed, c.seed);
        let d = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Mab, 10_000);
        assert_ne!(a.seed, d.seed);
        let e = Job::single(
            "fig7",
            spec,
            cd1().with_bandwidth(1.6),
            CoordinatorKind::Athena,
            10_000,
        );
        assert_ne!(a.seed, e.seed);
    }

    #[test]
    fn config_override_re_derives_the_seed_and_keeps_the_cell() {
        let spec = all_workloads()[0].clone();
        let template = Job::single("dse", spec, cd1(), CoordinatorKind::PrefetchersOnly, 10_000);
        let cfg = crate::kinds::default_athena_config().with_hyperparameters(0.3, 0.6, 0.05, 0.12);
        let overridden = template.clone().with_athena_config(cfg.clone());
        assert_eq!(overridden.cell, template.cell);
        assert_eq!(
            overridden.coordinator,
            CoordinatorKind::AthenaWith(cfg.clone())
        );
        assert_ne!(
            overridden.seed, template.seed,
            "a different coordinator is a different identity"
        );
        // The override is equivalent to constructing the job directly.
        let direct = Job::single(
            "dse",
            all_workloads()[0].clone(),
            cd1(),
            CoordinatorKind::AthenaWith(cfg),
            10_000,
        );
        assert_eq!(overridden.seed, direct.seed);
        assert_eq!(overridden.label(), direct.label());
    }

    #[test]
    fn job_run_matches_serial_simulate() {
        let spec = all_workloads()[1].clone();
        let serial = simulate(&spec, &cd1(), CoordinatorKind::Athena, 15_000);
        let job = Job::single("fig7", spec, cd1(), CoordinatorKind::Athena, 15_000);
        match job.run() {
            JobOutput::Single(r) => assert_eq!(*r, serial),
            JobOutput::Multi(_) => panic!("single cell"),
        }
    }

    #[test]
    fn file_backed_job_matches_generated_job_byte_for_byte() {
        use athena_trace_io::{record_trace, TraceFormat};

        let spec = all_workloads()[0].clone();
        let instructions = 12_000;
        let dir = std::env::temp_dir().join(format!("athena-engine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.trace", spec.name));
        let mut generator = spec.trace();
        record_trace(&mut generator, instructions, &path, TraceFormat::Binary).unwrap();

        let generated = Job::single(
            "fig7",
            spec.clone(),
            cd1(),
            CoordinatorKind::Athena,
            instructions,
        );
        let replayed = Job::from_file(
            "fig7",
            &spec.name,
            &path,
            cd1(),
            CoordinatorKind::Athena,
            instructions,
        );
        // Identity: same name ⇒ same seed and same label, regardless of the path.
        assert_eq!(generated.seed, replayed.seed);
        assert_eq!(generated.label(), replayed.label());
        let elsewhere = Job::from_file(
            "fig7",
            &spec.name,
            dir.join("a/completely/different/location.trace"),
            cd1(),
            CoordinatorKind::Athena,
            instructions,
        );
        assert_eq!(
            generated.seed, elsewhere.seed,
            "path must not affect the seed"
        );
        // Results: the replayed trace is the generator's records, so the whole simulation
        // — IPC, stats, per-epoch telemetry — matches exactly.
        assert_eq!(generated.run(), replayed.run());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_trace_shorter_than_the_budget_fails_the_cell() {
        use crate::exec::Engine;
        use athena_trace_io::{record_trace, TraceFormat};

        let spec = all_workloads()[0].clone();
        let dir = std::env::temp_dir().join(format!("athena-short-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Both formats must be rejected: binary via its header up front, text (which has
        // no header) via the mid-stream budget guard.
        for (format, name) in [
            (TraceFormat::Binary, "short.trace"),
            (TraceFormat::Text, "short.trace.txt"),
        ] {
            let path = dir.join(name);
            let mut generator = spec.trace();
            record_trace(&mut generator, 1_000, &path, format).unwrap();
            let job = Job::from_file(
                "t",
                &spec.name,
                &path,
                cd1(),
                CoordinatorKind::Baseline,
                5_000,
            );
            let cells = Engine::new(1).run(vec![job]);
            let err = cells[0]
                .output
                .as_ref()
                .expect_err("short trace must fail its cell");
            assert!(err.contains("records"), "{format}: {err}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn missing_trace_file_fails_only_its_own_cell() {
        use crate::exec::Engine;

        let spec = all_workloads()[0].clone();
        let good = Job::single("t", spec.clone(), cd1(), CoordinatorKind::Baseline, 5_000);
        let bad = Job::from_file(
            "t",
            "ghost-workload",
            "/nonexistent/ghost.trace",
            cd1(),
            CoordinatorKind::Baseline,
            5_000,
        );
        let cells = Engine::new(2).run(vec![good, bad]);
        assert!(cells[0].output.is_ok(), "healthy cell completes");
        let err = cells[1].output.as_ref().expect_err("missing trace fails");
        assert!(err.contains("cannot replay trace"), "got: {err}");
    }

    #[test]
    fn telemetry_is_opt_in_and_never_changes_results() {
        let spec = all_workloads()[0].clone();
        let plain = Job::single("t", spec.clone(), cd1(), CoordinatorKind::Athena, 15_000);
        let observed = plain.clone().with_telemetry(4096);
        // Observation is not identity: the seed (and thus the simulated behaviour) is
        // untouched.
        assert_eq!(plain.seed, observed.seed);
        let plain_run = match plain.run() {
            JobOutput::Single(r) => *r,
            _ => panic!("single cell"),
        };
        let observed_run = match observed.run() {
            JobOutput::Single(r) => *r,
            _ => panic!("single cell"),
        };
        assert!(plain_run.timeline.is_none(), "telemetry is off by default");
        let timeline = observed_run.timeline.clone().expect("requested timeline");
        assert!(!timeline.windows.is_empty());
        // Identical simulation either way.
        assert_eq!(plain_run.stats, observed_run.stats);
        assert_eq!(plain_run.epochs, observed_run.epochs);
        // The windows compose exactly back into the aggregates.
        let totals = timeline.totals();
        assert_eq!(totals.instructions, observed_run.stats.instructions);
        assert_eq!(totals.cycles, observed_run.stats.cycles);
        assert_eq!(totals.llc_misses, observed_run.stats.llc_misses);
        // Athena is a learning coordinator, so windows carry agent snapshots.
        assert!(timeline.windows.iter().all(|w| w.agent.is_some()));
    }

    #[test]
    fn derived_seed_policy_is_reproducible_and_distinct_per_cell() {
        let specs = all_workloads();
        let job =
            |s: &WorkloadSpec| Job::single("t", s.clone(), cd1(), CoordinatorKind::Athena, 15_000);
        let a1 = job(&specs[0]).with_derived_seed().run();
        let a2 = job(&specs[0]).with_derived_seed().run();
        assert_eq!(a1, a2, "derived seeding is a pure function of the cell");
        let b = job(&specs[1]).with_derived_seed();
        let c = job(&specs[0]).with_derived_seed();
        assert_ne!(b.seed, c.seed, "different cells explore independently");
    }
}
