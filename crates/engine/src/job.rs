//! The [`Job`] abstraction: one simulation cell, as plain data.
//!
//! A job bundles everything one cell of an experiment grid needs — a workload (or
//! multi-core mix), a [`SystemConfig`], a [`CoordinatorKind`] and an instruction budget —
//! plus a deterministic seed derived from that identity (see [`crate::seed`]). Because the
//! job is a pure value and [`Job::run`] builds every mechanism from scratch, a job's result
//! depends only on the job itself: never on which worker ran it, in what order, or what else
//! was in the batch.

use athena_sim::{MultiCoreResult, MultiCoreSimulator, Prefetcher, SimResult, Simulator};
use athena_workloads::{WorkloadMix, WorkloadSpec};

use crate::kinds::{CoordinatorKind, SystemConfig};
use crate::seed::SeedHasher;

/// How a job seeds the stochastic parts of its mechanisms (today: the Athena agent's
/// ε-greedy exploration stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Use the seed carried by the mechanism configuration itself (the paper-reproduction
    /// default: every cell uses Table 3's fixed agent seed, exactly like the original serial
    /// harness).
    Config,
    /// Use the job's derived per-cell seed. Cells then explore independently of each other
    /// while still being a pure function of the cell identity, so results remain independent
    /// of scheduling order and worker count.
    Derived,
}

/// The workload side of a cell: one single-core workload or one multi-core mix.
#[derive(Debug, Clone, PartialEq)]
pub enum JobCell {
    /// A single-core run of one workload.
    Single(WorkloadSpec),
    /// A multi-core run of one mix (one workload per core, shared DRAM channel).
    Multi(WorkloadMix),
}

impl JobCell {
    /// The workload or mix name.
    pub fn name(&self) -> &str {
        match self {
            JobCell::Single(spec) => &spec.name,
            JobCell::Multi(mix) => &mix.name,
        }
    }
}

/// One simulation cell of an experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The experiment this cell belongs to (e.g. `"fig7"`).
    pub experiment: String,
    /// The workload or mix to run.
    pub cell: JobCell,
    /// The system configuration (cache design, mechanisms, simulator knobs).
    pub config: SystemConfig,
    /// The coordination policy.
    pub coordinator: CoordinatorKind,
    /// Instruction budget (per core, for multi-core cells).
    pub instructions: u64,
    /// Seed derived from the cell identity; see [`crate::seed`].
    pub seed: u64,
    /// How the seed is applied; defaults to [`SeedPolicy::Config`].
    pub seed_policy: SeedPolicy,
}

impl Job {
    /// Creates a single-core job and derives its seed.
    pub fn single(
        experiment: &str,
        spec: WorkloadSpec,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions: u64,
    ) -> Self {
        Self::build(
            experiment,
            JobCell::Single(spec),
            config,
            coordinator,
            instructions,
        )
    }

    /// Creates a multi-core job (one workload per core) and derives its seed.
    pub fn multicore(
        experiment: &str,
        mix: WorkloadMix,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions_per_core: u64,
    ) -> Self {
        Self::build(
            experiment,
            JobCell::Multi(mix),
            config,
            coordinator,
            instructions_per_core,
        )
    }

    fn build(
        experiment: &str,
        cell: JobCell,
        config: SystemConfig,
        coordinator: CoordinatorKind,
        instructions: u64,
    ) -> Self {
        let mut job = Self {
            experiment: experiment.to_string(),
            cell,
            config,
            coordinator,
            instructions,
            seed: 0,
            seed_policy: SeedPolicy::Config,
        };
        job.seed = job.derive_seed();
        job
    }

    /// Returns a copy running under [`SeedPolicy::Derived`].
    pub fn with_derived_seed(mut self) -> Self {
        self.seed_policy = SeedPolicy::Derived;
        self
    }

    /// The seed implied by this job's identity (experiment, cell, configuration,
    /// coordinator, instruction budget). Scheduling state contributes nothing.
    fn derive_seed(&self) -> u64 {
        let mut h = SeedHasher::new();
        h.write_str(&self.experiment);
        h.write_str(self.cell.name());
        if let JobCell::Multi(mix) = &self.cell {
            for w in &mix.workloads {
                h.write_str(&w.name);
            }
        }
        self.config.hash_into(&mut h);
        h.write_str(self.coordinator.name());
        if let CoordinatorKind::AthenaWith(cfg) = &self.coordinator {
            h.write_str(&format!("{cfg:?}"));
        }
        h.write_u64(self.instructions);
        h.finish()
    }

    /// A short human-readable cell label for reports, e.g.
    /// `"410.bwaves-1963B/athena/<popet, pythia>"`. Explicit Athena configurations carry
    /// their hyperparameters (`athena*(a0.2,g0.6,…)`), so DSE grid points and ablation
    /// steps stay distinguishable in per-cell records.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.cell.name(),
            self.coordinator.describe(),
            self.config.describe()
        )
    }

    /// Runs the cell to completion and returns its result.
    ///
    /// Pure with respect to scheduling: every mechanism is constructed fresh from the job's
    /// own data, so calling this from any thread, any number of times, yields the same
    /// result.
    pub fn run(&self) -> JobOutput {
        let coordinator = || match self.seed_policy {
            SeedPolicy::Config => self.coordinator.build(),
            SeedPolicy::Derived => self.coordinator.build_seeded(self.seed),
        };
        match &self.cell {
            JobCell::Single(spec) => {
                let mut sim = Simulator::new(self.config.sim.clone());
                for p in &self.config.prefetchers {
                    sim = sim.with_prefetcher(p.build());
                }
                if let Some(ocp) = &self.config.ocp {
                    sim = sim.with_ocp(ocp.build());
                }
                sim = sim.with_coordinator(coordinator());
                let result = sim.run(spec.trace(), self.instructions);
                JobOutput::Single(Box::new(RunResult::from_sim(&spec.name, result)))
            }
            JobCell::Multi(mix) => {
                let cores = mix.workloads.len();
                let mut mc = MultiCoreSimulator::new(self.config.sim.clone(), cores);
                for spec in &mix.workloads {
                    let prefetchers: Vec<Box<dyn Prefetcher>> =
                        self.config.prefetchers.iter().map(|p| p.build()).collect();
                    let ocp = self.config.ocp.as_ref().map(|o| o.build());
                    mc.add_core(
                        Box::new(spec.trace()),
                        prefetchers,
                        ocp,
                        Some(coordinator()),
                    );
                }
                JobOutput::Multi(mc.run(self.instructions))
            }
        }
    }
}

/// The result of one job: single-core or multi-core, matching the job's [`JobCell`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Result of a single-core cell (boxed: the inline stats block is large).
    Single(Box<RunResult>),
    /// Result of a multi-core cell.
    Multi(MultiCoreResult),
}

/// The result of one single-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles taken.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whole-run simulator statistics.
    pub stats: athena_sim::SimStats,
    /// Per-epoch telemetry (kept for phase-level analyses).
    pub epochs: Vec<athena_sim::EpochStats>,
}

impl RunResult {
    fn from_sim(workload: &str, r: SimResult) -> Self {
        Self {
            workload: workload.to_string(),
            instructions: r.instructions,
            cycles: r.cycles,
            ipc: r.ipc(),
            stats: r.stats,
            epochs: r.epochs,
        }
    }
}

/// Runs one workload on one system configuration under one coordination policy.
///
/// This is the serial single-cell entry point the engine's jobs are built on; it behaves
/// exactly like a [`Job::single`] run under [`SeedPolicy::Config`].
pub fn simulate(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions: u64,
) -> RunResult {
    let job = Job::single(
        "adhoc",
        spec.clone(),
        config.clone(),
        coordinator,
        instructions,
    );
    match job.run() {
        JobOutput::Single(r) => *r,
        JobOutput::Multi(_) => unreachable!("single job yields a single result"),
    }
}

/// Runs a multi-core mix: every core gets its own instance of the configured mechanisms and
/// coordinator, and all cores share one DRAM channel.
pub fn simulate_multicore(
    mix: &WorkloadMix,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions_per_core: u64,
) -> MultiCoreResult {
    let job = Job::multicore(
        "adhoc",
        mix.clone(),
        config.clone(),
        coordinator,
        instructions_per_core,
    );
    match job.run() {
        JobOutput::Multi(r) => r,
        JobOutput::Single(_) => unreachable!("multicore job yields a multicore result"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{OcpKind, PrefetcherKind};
    use athena_workloads::all_workloads;

    fn cd1() -> SystemConfig {
        SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet)
    }

    #[test]
    fn baseline_run_produces_no_speculative_traffic() {
        let spec = &all_workloads()[0];
        let r = simulate(spec, &cd1(), CoordinatorKind::Baseline, 20_000);
        assert_eq!(r.stats.prefetches_issued, 0);
        assert_eq!(r.stats.ocp_predictions, 0);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn naive_run_produces_speculative_traffic() {
        let spec = &all_workloads()[0];
        let r = simulate(spec, &cd1(), CoordinatorKind::Naive, 20_000);
        assert!(r.stats.prefetches_issued > 0);
        assert!(r.stats.ocp_predictions > 0);
    }

    #[test]
    fn job_seed_depends_on_identity_not_construction_order() {
        let spec = all_workloads()[0].clone();
        let a = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        let b = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        assert_eq!(a.seed, b.seed);
        let c = Job::single("fig9", spec.clone(), cd1(), CoordinatorKind::Athena, 10_000);
        assert_ne!(a.seed, c.seed);
        let d = Job::single("fig7", spec.clone(), cd1(), CoordinatorKind::Mab, 10_000);
        assert_ne!(a.seed, d.seed);
        let e = Job::single(
            "fig7",
            spec,
            cd1().with_bandwidth(1.6),
            CoordinatorKind::Athena,
            10_000,
        );
        assert_ne!(a.seed, e.seed);
    }

    #[test]
    fn job_run_matches_serial_simulate() {
        let spec = all_workloads()[1].clone();
        let serial = simulate(&spec, &cd1(), CoordinatorKind::Athena, 15_000);
        let job = Job::single("fig7", spec, cd1(), CoordinatorKind::Athena, 15_000);
        match job.run() {
            JobOutput::Single(r) => assert_eq!(*r, serial),
            JobOutput::Multi(_) => panic!("single cell"),
        }
    }

    #[test]
    fn derived_seed_policy_is_reproducible_and_distinct_per_cell() {
        let specs = all_workloads();
        let job =
            |s: &WorkloadSpec| Job::single("t", s.clone(), cd1(), CoordinatorKind::Athena, 15_000);
        let a1 = job(&specs[0]).with_derived_seed().run();
        let a2 = job(&specs[0]).with_derived_seed().run();
        assert_eq!(a1, a2, "derived seeding is a pure function of the cell");
        let b = job(&specs[1]).with_derived_seed();
        let c = job(&specs[0]).with_derived_seed();
        assert_ne!(b.seed, c.seed, "different cells explore independently");
    }
}
