//! The [`Engine`]: runs a batch of [`Job`]s on the worker pool and collects per-cell
//! results in submission order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use athena_probe::{metrics, CellOrigin, Event, Phase, PhaseProfile, ProbeSink};
use athena_sim::MultiCoreResult;

use crate::dist::DistPool;
use crate::job::{Job, JobOutput, RunResult};
use crate::pool::{available_parallelism, parallel_map, PoolOutcome};
use crate::record;
use crate::store::StoreHandle;

/// A parallel experiment executor with a fixed worker count, an optional persistent
/// result store, an optional distributed worker pool, and optional observability (a
/// structured event sink and a stderr progress line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    jobs: usize,
    store: Option<StoreHandle>,
    dist: Option<DistPool>,
    probe: Option<ProbeSink>,
    progress: bool,
}

impl Engine {
    /// Creates an engine running up to `jobs` simulation cells concurrently. `jobs == 1` is
    /// the exact serial path: cells run on the caller's thread in submission order.
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    /// An engine sized to the host (`std::thread::available_parallelism`).
    pub fn host_sized() -> Self {
        Self::new(available_parallelism())
    }

    /// Attaches a result store: batches consult it before simulating and persist what
    /// they simulate, as its policy allows. Because every cell is a pure function of its
    /// job, a stored result is indistinguishable from a fresh one — tables come out
    /// byte-identical either way.
    pub fn with_store(mut self, store: Option<StoreHandle>) -> Self {
        self.store = store;
        self
    }

    /// Attaches a structured event sink: batches emit their lifecycle events
    /// ([`athena_probe::Event`]) as JSONL through it. Observation is not identity — the
    /// sink sees results, results never see the sink, so attaching one cannot change a
    /// table byte. All events are emitted on the calling thread at deterministic points.
    pub fn with_probe(mut self, probe: Option<ProbeSink>) -> Self {
        self.probe = probe;
        self
    }

    /// Attaches a distributed worker pool ([`crate::dist`]): batches run their
    /// store-missing cells on spawned worker processes instead of in-process threads.
    /// Store consultation, persistence, event emission and the in-order merge all stay
    /// on the coordinator, so tables come out byte-identical to an in-process run at any
    /// worker count.
    pub fn with_dist(mut self, dist: Option<DistPool>) -> Self {
        self.dist = dist;
        self
    }

    /// Enables a live `cells done / cached / ETA` progress line on stderr while batches
    /// simulate (builder style). Off by default.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&StoreHandle> {
        self.store.as_ref()
    }

    /// The attached distributed worker pool, if any.
    pub fn dist(&self) -> Option<&DistPool> {
        self.dist.as_ref()
    }

    /// The attached event sink, if any.
    pub fn probe(&self) -> Option<&ProbeSink> {
        self.probe.as_ref()
    }

    /// Runs every job and returns one [`CellResult`] per job, in submission order.
    ///
    /// With a result store attached, cells whose results are already stored are served
    /// from it (with `cached: true` and zero wall-clock) and only the misses are
    /// simulated; newly simulated successes are persisted back. A job that panics yields
    /// a `CellResult` with `output: Err(message)` (never persisted); the rest of the
    /// batch completes normally. Cell metadata (label, seed, wall-clock, outcome) is also
    /// forwarded to any active [`record::with_recording`] scope on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics when the attached store is corrupt, fails to decode a record, or fails an
    /// append — a broken cache is surfaced, never silently recomputed over.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<CellResult> {
        if let Some(sink) = &self.probe {
            sink.emit(&Event::BatchOpened {
                experiment: jobs
                    .first()
                    .map(|j| j.experiment.clone())
                    .unwrap_or_default(),
                cells: jobs.len(),
            });
        }
        let cached: Vec<Option<JobOutput>> = match &self.store {
            Some(handle) => {
                let _span = athena_probe::span(Phase::StoreFetch);
                let fetch_start = Instant::now();
                let cached = jobs.iter().map(|job| handle.fetch(job)).collect();
                metrics()
                    .store_fetch_nanos
                    .record(fetch_start.elapsed().as_nanos() as u64);
                cached
            }
            None => jobs.iter().map(|_| None).collect(),
        };
        if let Some(sink) = &self.probe {
            for (job, hit) in jobs.iter().zip(&cached) {
                if hit.is_some() {
                    sink.emit(&Event::CellStoreHit {
                        experiment: job.experiment.clone(),
                        label: job.label(),
                        seed: job.seed,
                    });
                }
            }
            if self.store.is_some() {
                let hits = cached.iter().filter(|hit| hit.is_some()).count();
                sink.emit(&Event::StoreFetch {
                    hits,
                    misses: jobs.len() - hits,
                });
            }
            for (job, hit) in jobs.iter().zip(&cached) {
                if hit.is_none() {
                    sink.emit(&Event::CellScheduled {
                        experiment: job.experiment.clone(),
                        label: job.label(),
                        seed: job.seed,
                    });
                }
            }
        }
        let misses: Vec<Job> = jobs
            .iter()
            .zip(&cached)
            .filter(|(_, hit)| hit.is_none())
            .map(|(job, _)| job.clone())
            .collect();
        let total = misses.len();
        let hits = jobs.len() - total;
        metrics().cells_cached.add(hits as u64);
        metrics().cells_simulated.add(total as u64);
        let done = AtomicUsize::new(0);
        let batch_start = Instant::now();
        if let Some(pool) = &self.dist {
            // Distributed execution: the misses run on worker processes; everything
            // around them (store, events, merge, recording) is the same code path below.
            // Workers measure each cell's wall-clock and forward their probe events and
            // phase profiles over the wire; the coordinator replays the forwarded lines
            // at the same deterministic merge points an in-process run would use.
            let remote = pool.run_jobs(self.probe.as_ref(), self.progress, &misses);
            if self.progress && !remote.is_empty() {
                eprintln!();
            }
            let mut forwarded = Vec::with_capacity(remote.len());
            let outcomes = remote
                .into_iter()
                .map(|cell| {
                    forwarded.push((cell.origin, cell.events));
                    cell.outcome
                        .map(|(output, wall)| ((output, wall, cell.profile), wall))
                })
                .collect();
            return self.merge(jobs, cached, misses, outcomes, forwarded);
        }
        let outcomes = parallel_map(self.jobs, &misses, |job| {
            // Stash the calling thread's accrual so the serial (`jobs == 1`) path does
            // not fold the engine's own store-fetch/merge time into a cell's profile.
            let stashed = athena_probe::swap_cell(PhaseProfile::new());
            // The cell's wall-clock is measured co-extensively with the `Dispatch` root
            // span (not around the whole pool closure): on an oversubscribed host a
            // worker can sit descheduled between claiming a job and actually starting
            // it, and that queueing delay belongs to the batch, not the cell — counting
            // it made `phase total / wall` coverage collapse for small cells.
            let cell_start = Instant::now();
            let output = {
                let _span = athena_probe::span(Phase::Dispatch);
                job.run()
            };
            let wall = cell_start.elapsed();
            metrics().cell_wall_nanos.record(wall.as_nanos() as u64);
            let profile = athena_probe::swap_cell(stashed);
            if self.progress {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                let elapsed = batch_start.elapsed().as_secs_f64();
                let eta = elapsed / n as f64 * (total - n) as f64;
                eprint!("\r[{n}/{total} cells simulated, {hits} cached, ~{eta:.0}s left]  ");
            }
            (output, wall, (!profile.is_empty()).then_some(profile))
        });
        if self.progress && total > 0 {
            eprintln!();
        }
        self.merge(jobs, cached, misses, outcomes, Vec::new())
    }

    /// The shared tail of [`Engine::run`] for both executors: persist newly simulated
    /// successes, merge outcomes back into submission order, emit per-cell events and
    /// forward the batch to any active recording scope.
    ///
    /// `forwarded` carries, per miss (in submission order), the cell's distributed
    /// origin and the pre-rendered probe lines its worker streamed back — empty for the
    /// in-process executor. When a miss has forwarded lines they are replayed verbatim
    /// into the sink (preserving the worker's own byte rendering); otherwise the
    /// coordinator synthesizes the lifecycle pair itself.
    fn merge(
        &self,
        jobs: Vec<Job>,
        cached: Vec<Option<JobOutput>>,
        misses: Vec<Job>,
        outcomes: Vec<PoolOutcome<(JobOutput, Duration, Option<PhaseProfile>)>>,
        forwarded: Vec<(Option<CellOrigin>, Vec<String>)>,
    ) -> Vec<CellResult> {
        if let Some(handle) = &self.store {
            let mut persisted = 0usize;
            let persist_start = Instant::now();
            for (job, outcome) in misses.iter().zip(&outcomes) {
                if let Ok(((output, _, _), _)) = outcome {
                    handle.persist(job, output);
                    persisted += 1;
                }
            }
            if persisted > 0 {
                metrics()
                    .store_persist_nanos
                    .record(persist_start.elapsed().as_nanos() as u64);
            }
            if let Some(sink) = &self.probe {
                sink.emit(&Event::StorePersist { cells: persisted });
            }
        }
        let (origins, forwarded_lines): (Vec<_>, Vec<_>) = forwarded.into_iter().unzip();
        let mut fresh = outcomes.into_iter();
        let mut origins = origins.into_iter();
        let merge_span = athena_probe::span(Phase::Merge);
        let cells: Vec<CellResult> = jobs
            .into_iter()
            .zip(cached)
            .map(|(job, hit)| {
                let (output, wall, cached, profile, origin) = match hit {
                    Some(output) => (Ok(output), Duration::ZERO, true, None, None),
                    None => {
                        let origin = origins.next().unwrap_or(None);
                        match fresh.next().expect("one simulated outcome per miss") {
                            // The cell-scoped wall from the closure, not the pool's outer
                            // timing (which includes worker queueing delay).
                            Ok(((output, wall, profile), _)) => {
                                (Ok(output), wall, false, profile, origin)
                            }
                            Err(message) => (Err(message), Duration::ZERO, false, None, origin),
                        }
                    }
                };
                CellResult {
                    experiment: job.experiment.clone(),
                    label: job.label(),
                    seed: job.seed,
                    wall,
                    cached,
                    output,
                    profile,
                    origin,
                }
            })
            .collect();
        drop(merge_span);
        if let Some(sink) = &self.probe {
            let mut fwd = forwarded_lines
                .into_iter()
                .chain(std::iter::repeat_with(Vec::new));
            for cell in cells.iter().filter(|c| !c.cached) {
                let lines = fwd.next().expect("repeat_with is infinite");
                if !lines.is_empty() {
                    // Replay the worker's own rendering byte-for-byte (only the
                    // coordinator-local `t_ms` stamp is fresh), so a distributed log
                    // never diverges from the worker's floats.
                    for line in &lines {
                        sink.emit_rendered(line);
                    }
                    continue;
                }
                sink.emit(&Event::CellStarted {
                    experiment: cell.experiment.clone(),
                    label: cell.label.clone(),
                    origin: cell.origin,
                });
                match &cell.output {
                    Ok(_) => sink.emit(&Event::CellFinished {
                        experiment: cell.experiment.clone(),
                        label: cell.label.clone(),
                        wall_ms: cell.wall.as_secs_f64() * 1e3,
                        profile: cell.profile,
                        origin: cell.origin,
                    }),
                    Err(error) => sink.emit(&Event::CellPanicked {
                        experiment: cell.experiment.clone(),
                        label: cell.label.clone(),
                        error: error.clone(),
                        origin: cell.origin,
                    }),
                }
            }
        }
        record::record_cells(&cells);
        cells
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::host_sized()
    }
}

/// The outcome of one executed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The experiment the cell belongs to.
    pub experiment: String,
    /// Cell label (`workload/coordinator/config`).
    pub label: String,
    /// The job's derived seed.
    pub seed: u64,
    /// Wall-clock time spent simulating this cell (zero for cached cells).
    pub wall: Duration,
    /// Whether the result was served from the attached result store instead of simulated.
    pub cached: bool,
    /// The simulation result, or the panic message if the cell failed.
    pub output: Result<JobOutput, String>,
    /// Per-phase hot-path profile of the cell's execution, when profiling
    /// ([`athena_probe::set_profiling`]) was on while it simulated. Always `None` for
    /// cached cells — a stored result costs no simulation time. For distributed cells
    /// this is the worker's own accrual, forwarded over the wire.
    pub profile: Option<PhaseProfile>,
    /// The distributed worker (id + pid) that simulated the cell; `None` for in-process
    /// and cached cells.
    pub origin: Option<CellOrigin>,
}

impl CellResult {
    /// Unwraps a single-core result.
    ///
    /// # Panics
    ///
    /// Panics (with the cell label) if the cell failed or was a multi-core cell. Experiment
    /// tables need every cell, so a failed cell fails the experiment *here*, at the edge —
    /// the engine itself has already run every other cell of the batch to completion.
    pub fn into_single(self) -> RunResult {
        match self.output {
            Ok(JobOutput::Single(r)) => *r,
            Ok(JobOutput::Multi(_)) => panic!("cell '{}' is multi-core", self.label),
            Err(e) => panic!("cell '{}' failed: {e}", self.label),
        }
    }

    /// Unwraps a multi-core result.
    ///
    /// # Panics
    ///
    /// Panics (with the cell label) if the cell failed or was a single-core cell.
    pub fn into_multi(self) -> MultiCoreResult {
        match self.output {
            Ok(JobOutput::Multi(r)) => r,
            Ok(JobOutput::Single(_)) => panic!("cell '{}' is single-core", self.label),
            Err(e) => panic!("cell '{}' failed: {e}", self.label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
    use athena_workloads::all_workloads;

    fn jobs_for(kinds: &[CoordinatorKind], n_workloads: usize) -> Vec<Job> {
        let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        let specs = all_workloads();
        let mut jobs = Vec::new();
        for kind in kinds {
            for spec in specs.iter().take(n_workloads) {
                jobs.push(Job::single(
                    "test",
                    spec.clone(),
                    config.clone(),
                    kind.clone(),
                    8_000,
                ));
            }
        }
        jobs
    }

    #[test]
    fn serial_and_parallel_batches_are_identical() {
        let kinds = [CoordinatorKind::Baseline, CoordinatorKind::Athena];
        let serial = Engine::new(1).run(jobs_for(&kinds, 3));
        let parallel = Engine::new(4).run(jobs_for(&kinds, 3));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.output, p.output, "cell {} diverged", s.label);
        }
    }

    #[test]
    fn results_follow_submission_order_even_when_shuffled() {
        // Reversing the submission order must reverse the results and nothing else.
        let kinds = [CoordinatorKind::Naive];
        let forward = Engine::new(4).run(jobs_for(&kinds, 4));
        let mut reversed_jobs = jobs_for(&kinds, 4);
        reversed_jobs.reverse();
        let reversed = Engine::new(4).run(reversed_jobs);
        for (f, r) in forward.iter().zip(reversed.iter().rev()) {
            assert_eq!(f.label, r.label);
            assert_eq!(f.output, r.output);
        }
    }

    #[test]
    fn wall_clock_is_accounted_per_cell() {
        let cells = Engine::new(2).run(jobs_for(&[CoordinatorKind::Baseline], 2));
        for c in &cells {
            assert!(c.output.is_ok());
            assert!(c.wall > Duration::ZERO);
        }
    }
}
