//! Machine-readable report writers: per-figure JSON results, windowed-timeline documents,
//! the `BENCH_engine.json` performance snapshot, and the lossless result serialisation the
//! result store records are written in.
//!
//! Every JSON document this workspace emits is identified by a [`Schema`] — a shared
//! (name, version) constant rendered as the document's leading `"schema"` field. All
//! writers (here, in the tune crate and in the result store) go through
//! [`Schema::document`], so schema ids live in exactly one place and a version bump is a
//! one-line change next to the serialiser it describes.

use std::time::Duration;

use athena_sim::{
    CoordinatorTelemetry, DramStats, EpochStats, MultiCoreResult, SimResult, SimStats,
};
use athena_telemetry::{Timeline, WindowMetrics, WindowSample};

use crate::job::{JobOutput, RunResult};
use crate::json::Json;
use crate::record::CellRecord;
use crate::table::ExperimentTable;

/// A named, versioned JSON document schema.
///
/// The id rendered into documents is `athena-<name>-v<version>`. Constants for every
/// document the workspace writes live alongside this type; consumers match documents with
/// [`Schema::matches`] instead of comparing hand-typed strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schema {
    /// Schema family name (e.g. `"figure-result"`).
    pub name: &'static str,
    /// Format version; bumped when the document layout changes incompatibly.
    pub version: u32,
}

/// Schema of the per-figure JSON result documents ([`figure_report`]).
pub const FIGURE_SCHEMA: Schema = Schema::new("figure-result", 1);
/// Schema of the standalone per-cell timeline documents ([`timeline_report`]).
pub const TIMELINE_SCHEMA: Schema = Schema::new("timeline", 1);
/// Schema of the `BENCH_engine.json` snapshot ([`BenchReport::to_json`]).
pub const BENCH_SCHEMA: Schema = Schema::new("engine-bench", 1);
/// Schema of the tune leaderboard document (`Leaderboard::to_json`).
pub const TUNE_SCHEMA: Schema = Schema::new("tune", 1);
/// Schema of a saved tuned-configuration document (`Leaderboard::best_json`, `--config`).
pub const TUNE_CONFIG_SCHEMA: Schema = Schema::new("tune-config", 1);
/// Schema of the `BENCH_tune.json` snapshot (the tune CLI's `--bench-report`).
pub const TUNE_BENCH_SCHEMA: Schema = Schema::new("tune-bench", 1);
/// Schema of one result-store record payload ([`job_output_json`] wrapped by the engine's
/// store module).
pub const RESULT_RECORD_SCHEMA: Schema = Schema::new("result-record", 1);
/// Schema of the engine's structured event-stream lines (`--events`). The sink itself
/// lives below this crate in `athena-probe`, which carries the rendered id as a literal
/// ([`athena_probe::EVENTS_SCHEMA_ID`]); a test here asserts the two agree.
pub const EVENTS_SCHEMA: Schema = Schema::new("events", 1);
/// Schema of the `BENCH_sim.json` snapshot (the `figures --profile` per-phase aggregate).
pub const SIM_BENCH_SCHEMA: Schema = Schema::new("sim-bench", 1);
/// Schema of a distributed worker's handshake frame (`crate::dist`).
pub const DIST_HELLO_SCHEMA: Schema = Schema::new("dist-hello", 1);
/// Schema of a coordinator→worker shard frame: the indexed job list one worker runs.
pub const DIST_SHARD_SCHEMA: Schema = Schema::new("dist-shard", 1);
/// Schema of a worker→coordinator per-cell result frame (wraps the
/// [`RESULT_RECORD_SCHEMA`] envelope for successful cells).
pub const DIST_RESULT_SCHEMA: Schema = Schema::new("dist-result", 1);
/// Schema of a worker's end-of-shard frame.
pub const DIST_DONE_SCHEMA: Schema = Schema::new("dist-done", 1);
/// Schema of a worker→coordinator event-forwarding frame: the probe lines one cell
/// emitted on the worker, shipped ahead of that cell's `RESULT` frame.
pub const DIST_EVENT_SCHEMA: Schema = Schema::new("dist-event", 1);
/// Schema of a metrics-registry snapshot ([`metrics_snapshot_json`]), embedded as the
/// `metrics` object of run reports and readable standalone by `results metrics`.
pub const METRICS_SCHEMA: Schema = Schema::new("metrics", 1);

impl Schema {
    /// A schema constant.
    pub const fn new(name: &'static str, version: u32) -> Self {
        Self { name, version }
    }

    /// The id written into documents: `athena-<name>-v<version>`.
    pub fn id(&self) -> String {
        format!("athena-{}-v{}", self.name, self.version)
    }

    /// Builds a document carrying this schema's id as its leading `"schema"` field.
    pub fn document(&self, fields: Vec<(&str, Json)>) -> Json {
        let mut pairs = vec![("schema", Json::str(self.id()))];
        pairs.extend(fields);
        Json::obj(pairs)
    }

    /// Whether `doc` declares exactly this schema (name and version).
    pub fn matches(&self, doc: &Json) -> bool {
        doc.get("schema").and_then(Json::as_str) == Some(self.id().as_str())
    }
}

/// Builds the JSON document for one experiment run: the aggregate table plus the per-cell
/// records (label, seed, wall-clock, outcome) collected by [`crate::with_recording`].
pub fn figure_report(
    experiment: &str,
    jobs: usize,
    wall: Duration,
    table: &ExperimentTable,
    cells: &[CellRecord],
) -> Json {
    FIGURE_SCHEMA.document(vec![
        ("experiment", Json::str(experiment)),
        ("jobs", Json::int(jobs)),
        ("wall_ms", Json::num(wall.as_secs_f64() * 1e3)),
        ("cell_count", Json::int(cells.len())),
        (
            "failed_cells",
            Json::int(cells.iter().filter(|c| c.error.is_some()).count()),
        ),
        (
            "cached_cells",
            Json::int(cells.iter().filter(|c| c.cached).count()),
        ),
        ("table", table.to_json()),
        (
            "cells",
            Json::arr(cells.iter().map(CellRecord::to_json).collect()),
        ),
        (
            "metrics",
            metrics_snapshot_json(&athena_probe::metrics().snapshot()),
        ),
    ])
}

/// Serialises a hot-path phase profile: one object per non-empty phase (in hierarchy
/// order) with call count and self-time nanoseconds, plus the phase-disjoint total. Used
/// by the per-cell report records and the `BENCH_sim.json` aggregate.
pub fn phase_profile_json(p: &athena_probe::PhaseProfile) -> Json {
    Json::obj(vec![
        (
            "phases",
            Json::obj(
                p.stats()
                    .map(|s| {
                        (
                            s.phase.name(),
                            Json::obj(vec![
                                ("calls", u64_json(s.calls)),
                                ("nanos", u64_json(s.nanos)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("total_nanos", u64_json(p.total_nanos())),
    ])
}

/// Parses a [`phase_profile_json`] document back into a profile — the deserialisation
/// half the distributed coordinator uses when a worker's per-cell profile arrives inside
/// a forwarded `cell_finished` event.
pub fn phase_profile_from_json(doc: &Json) -> Result<athena_probe::PhaseProfile, String> {
    let Some(Json::Obj(phases)) = doc.get("phases") else {
        return Err("profile has no 'phases' object".to_string());
    };
    let mut profile = athena_probe::PhaseProfile::new();
    for (name, stat) in phases {
        let phase = athena_probe::Phase::from_name(name)
            .ok_or_else(|| format!("unknown phase '{name}'"))?;
        let calls = stat
            .get("calls")
            .and_then(u64_value)
            .ok_or_else(|| format!("phase '{name}' has no 'calls'"))?;
        let nanos = stat
            .get("nanos")
            .and_then(u64_value)
            .ok_or_else(|| format!("phase '{name}' has no 'nanos'"))?;
        profile.add(phase, calls, nanos);
    }
    Ok(profile)
}

/// Serialises a metrics-registry snapshot under [`METRICS_SCHEMA`]: counters and
/// histograms in declaration order, workers ascending by id — deterministic in shape
/// (the values are wall-clock-ish by nature, like `t_ms`).
pub fn metrics_snapshot_json(snapshot: &athena_probe::MetricsSnapshot) -> Json {
    METRICS_SCHEMA.document(vec![
        (
            "counters",
            Json::obj(
                snapshot
                    .counters
                    .iter()
                    .map(|&(name, value)| (name, u64_json(value)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::obj(
                snapshot
                    .histograms
                    .iter()
                    .map(|(name, h)| {
                        (
                            *name,
                            Json::obj(vec![
                                ("count", u64_json(h.count)),
                                ("sum", u64_json(h.sum)),
                                ("min", u64_json(h.min)),
                                ("max", u64_json(h.max)),
                                ("mean", Json::num(h.mean())),
                                (
                                    "buckets",
                                    Json::arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(log2, n)| {
                                                Json::obj(vec![
                                                    ("log2", u64_json(log2 as u64)),
                                                    ("count", u64_json(n)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "workers",
            Json::arr(
                snapshot
                    .workers
                    .iter()
                    .map(|&(id, util)| {
                        Json::obj(vec![
                            ("worker", u64_json(id as u64)),
                            ("cells", u64_json(util.cells)),
                            ("busy_nanos", u64_json(util.busy_nanos)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn metrics_json(m: &WindowMetrics) -> Json {
    Json::obj(vec![
        ("ipc", Json::num(m.ipc)),
        ("l1d_mpki", Json::num(m.l1d_mpki)),
        ("llc_mpki", Json::num(m.llc_mpki)),
        ("prefetch_accuracy", Json::num(m.prefetch_accuracy)),
        ("prefetch_coverage", Json::num(m.prefetch_coverage)),
        ("prefetch_timeliness", Json::num(m.prefetch_timeliness)),
        ("ocp_precision", Json::num(m.ocp_precision)),
        ("ocp_recall", Json::num(m.ocp_recall)),
    ])
}

/// Serialises a windowed timeline: one object per window with the raw counters, the
/// derived per-window metrics and — when sampled — the agent internals (Q-value summary,
/// exploration rate, per-window action counts), plus the early-vs-late learning curve.
pub fn timeline_json(t: &Timeline) -> Json {
    let deltas = t.action_deltas();
    let windows = t
        .windows
        .iter()
        .zip(deltas)
        .map(|(w, delta)| {
            let s = &w.stats;
            let mut pairs = vec![
                ("index", Json::num(w.index as f64)),
                ("start_instruction", Json::num(w.start_instruction as f64)),
                ("epochs", Json::num(w.epochs as f64)),
                ("instructions", Json::num(s.instructions as f64)),
                ("cycles", Json::num(s.cycles as f64)),
                ("prefetches_issued", Json::num(s.prefetches_issued as f64)),
                ("prefetches_useful", Json::num(s.prefetches_useful as f64)),
                ("prefetches_late", Json::num(s.prefetches_late as f64)),
                ("ocp_predictions", Json::num(s.ocp_predictions as f64)),
                ("ocp_correct", Json::num(s.ocp_correct as f64)),
                ("loads_off_chip", Json::num(s.loads_off_chip as f64)),
                ("metrics", metrics_json(&WindowMetrics::from_stats(s))),
                ("bandwidth_usage", Json::num(s.bandwidth_usage())),
            ];
            if let (Some(a), Some(d)) = (&w.agent, delta) {
                pairs.push((
                    "agent",
                    Json::obj(vec![
                        ("q_mean", Json::num(a.q_mean)),
                        ("q_min", Json::num(a.q_min)),
                        ("q_max", Json::num(a.q_max)),
                        ("epsilon", Json::num(a.epsilon)),
                        ("updates", Json::num(a.updates as f64)),
                        (
                            "actions",
                            Json::arr(d.iter().map(|&c| Json::num(c as f64)).collect()),
                        ),
                    ]),
                ));
            }
            Json::obj(pairs)
        })
        .collect();
    let mut pairs = vec![
        (
            "window_instructions",
            Json::num(t.window_instructions as f64),
        ),
        ("windows", Json::arr(windows)),
    ];
    if let Some(curve) = t.learning_curve() {
        pairs.push((
            "learning_curve",
            Json::obj(vec![
                ("windows_per_side", Json::num(curve.windows_per_side as f64)),
                ("early", metrics_json(&curve.early)),
                ("late", metrics_json(&curve.late)),
            ]),
        ));
    }
    Json::obj(pairs)
}

/// Builds the standalone JSON document for one cell's timeline (the `figures --timeline`
/// per-cell files).
pub fn timeline_report(workload: &str, coordinator: &str, seed: u64, t: &Timeline) -> Json {
    TIMELINE_SCHEMA.document(vec![
        ("workload", Json::str(workload)),
        ("coordinator", Json::str(coordinator)),
        ("seed", Json::hex(seed)),
        ("timeline", timeline_json(t)),
    ])
}

/// One experiment's serial-vs-parallel measurement in a [`BenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentBench {
    /// Experiment identifier (e.g. `"fig7"`).
    pub name: String,
    /// Wall-clock of the `--jobs 1` run.
    pub serial: Duration,
    /// Wall-clock of the parallel run.
    pub parallel: Duration,
    /// Whether the parallel run's table was byte-identical (CSV) to the serial run's.
    pub identical: bool,
}

impl ExperimentBench {
    /// Serial-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.parallel.as_secs_f64().max(1e-9)
    }
}

/// The `BENCH_engine.json` snapshot: per-experiment wall-clock at `--jobs 1` vs `--jobs N`,
/// the resulting speedups, and a determinism verdict per experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Worker count of the parallel runs.
    pub jobs: usize,
    /// Hardware threads available on the measuring host.
    pub host_parallelism: usize,
    /// Instruction budget per workload used for the measurement.
    pub instructions: u64,
    /// Workload cap used for the measurement (`None` = full suite).
    pub workload_limit: Option<usize>,
    /// Per-experiment measurements.
    pub experiments: Vec<ExperimentBench>,
}

impl BenchReport {
    /// Total serial wall-clock across all experiments.
    pub fn total_serial(&self) -> Duration {
        self.experiments.iter().map(|e| e.serial).sum()
    }

    /// Total parallel wall-clock across all experiments.
    pub fn total_parallel(&self) -> Duration {
        self.experiments.iter().map(|e| e.parallel).sum()
    }

    /// Whole-suite speedup (total serial over total parallel).
    pub fn overall_speedup(&self) -> f64 {
        self.total_serial().as_secs_f64() / self.total_parallel().as_secs_f64().max(1e-9)
    }

    /// True when every experiment's parallel table matched its serial table byte-for-byte.
    pub fn all_identical(&self) -> bool {
        self.experiments.iter().all(|e| e.identical)
    }

    /// Serialises the snapshot. Snapshots taken on hosts with fewer than four hardware
    /// threads carry an explicit note, so a recorded sub-1x "speedup" reads as what it is
    /// (thread overhead on a host with nothing to parallelise over) rather than a
    /// regression.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("jobs", Json::int(self.jobs)),
            ("host_parallelism", Json::int(self.host_parallelism)),
        ];
        if self.host_parallelism < 4 {
            pairs.push((
                "note",
                Json::str(format!(
                    "measured on a {}-thread host: parallel speedup needs hardware \
                     parallelism; the >=2x criterion is asserted by \
                     tests/engine_determinism.rs on 4+-core machines",
                    self.host_parallelism
                )),
            ));
        }
        pairs.extend(vec![
            ("instructions", Json::num(self.instructions as f64)),
            (
                "workload_limit",
                match self.workload_limit {
                    Some(w) => Json::int(w),
                    None => Json::Null,
                },
            ),
            (
                "experiments",
                Json::arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("name", Json::str(&e.name)),
                                ("serial_ms", Json::num(e.serial.as_secs_f64() * 1e3)),
                                ("parallel_ms", Json::num(e.parallel.as_secs_f64() * 1e3)),
                                ("speedup", Json::num(e.speedup())),
                                ("identical_to_serial", Json::Bool(e.identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_serial_ms",
                Json::num(self.total_serial().as_secs_f64() * 1e3),
            ),
            (
                "total_parallel_ms",
                Json::num(self.total_parallel().as_secs_f64() * 1e3),
            ),
            ("overall_speedup", Json::num(self.overall_speedup())),
            ("all_identical_to_serial", Json::Bool(self.all_identical())),
        ]);
        BENCH_SCHEMA.document(pairs)
    }
}

// ---------------------------------------------------------------------------------------
// Lossless result serialisation (the result store's record payloads).
//
// The report serialisers above are presentation formats: they round counters through f64
// and derive per-window metrics. A store record must instead reconstruct the *exact*
// `JobOutput` a fresh simulation would have produced, so these functions serialise every
// field of `RunResult` / `MultiCoreResult` bit-exactly: u64 counters beyond f64's exact
// integer range fall back to hex strings ([`Json::hex`]), raw f64s rely on Rust's
// shortest-round-trip formatting (which parses back to the same bits), and structs are
// destructured exhaustively so adding a field is a compile error here rather than a
// silently lossy record.
// ---------------------------------------------------------------------------------------

/// Serialises a `u64` losslessly: a plain number inside f64's exact integer range, a hex
/// string beyond it.
pub(crate) fn u64_json(v: u64) -> Json {
    if v < (1u64 << 53) {
        Json::num(v as f64)
    } else {
        Json::hex(v)
    }
}

/// Reads a `u64` written by [`u64_json`] (plain integral number or hex string).
pub(crate) fn u64_value(j: &Json) -> Option<u64> {
    if let Some(v) = j.as_hex_u64() {
        return Some(v);
    }
    let f = j.as_f64()?;
    if f.fract() == 0.0 && (0.0..9_007_199_254_740_992.0).contains(&f) {
        Some(f as u64)
    } else {
        None
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(u64_value)
        .ok_or_else(|| format!("missing or non-u64 field '{key}'"))
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// One epoch's counters as a fixed-order 24-element array (compact: a timeline-bearing
/// record holds thousands of these). The destructuring is exhaustive on purpose.
fn epoch_stats_json(s: &EpochStats) -> Json {
    let EpochStats {
        epoch_index,
        instructions,
        cycles,
        loads,
        stores,
        branches,
        branch_mispredicts,
        l1d_misses,
        l2c_misses,
        llc_misses,
        llc_miss_latency_sum,
        prefetches_issued,
        prefetches_useful,
        prefetches_late,
        prefetch_fills_from_dram,
        pollution_misses,
        ocp_predictions,
        ocp_correct,
        loads_off_chip,
        dram_demand_requests,
        dram_prefetch_requests,
        dram_ocp_requests,
        dram_writeback_requests,
        dram_busy_cycles,
    } = *s;
    Json::arr(
        [
            epoch_index,
            instructions,
            cycles,
            loads,
            stores,
            branches,
            branch_mispredicts,
            l1d_misses,
            l2c_misses,
            llc_misses,
            llc_miss_latency_sum,
            prefetches_issued,
            prefetches_useful,
            prefetches_late,
            prefetch_fills_from_dram,
            pollution_misses,
            ocp_predictions,
            ocp_correct,
            loads_off_chip,
            dram_demand_requests,
            dram_prefetch_requests,
            dram_ocp_requests,
            dram_writeback_requests,
            dram_busy_cycles,
        ]
        .iter()
        .map(|&v| u64_json(v))
        .collect(),
    )
}

fn epoch_stats_from_json(j: &Json) -> Result<EpochStats, String> {
    let items = j
        .as_array()
        .ok_or_else(|| "epoch stats must be an array".to_string())?;
    let values: Vec<u64> = items
        .iter()
        .map(u64_value)
        .collect::<Option<_>>()
        .ok_or_else(|| "epoch stats hold a non-u64 entry".to_string())?;
    let [epoch_index, instructions, cycles, loads, stores, branches, branch_mispredicts, l1d_misses, l2c_misses, llc_misses, llc_miss_latency_sum, prefetches_issued, prefetches_useful, prefetches_late, prefetch_fills_from_dram, pollution_misses, ocp_predictions, ocp_correct, loads_off_chip, dram_demand_requests, dram_prefetch_requests, dram_ocp_requests, dram_writeback_requests, dram_busy_cycles] =
        values[..]
    else {
        return Err(format!(
            "epoch stats hold {} entries, expected 24",
            values.len()
        ));
    };
    Ok(EpochStats {
        epoch_index,
        instructions,
        cycles,
        loads,
        stores,
        branches,
        branch_mispredicts,
        l1d_misses,
        l2c_misses,
        llc_misses,
        llc_miss_latency_sum,
        prefetches_issued,
        prefetches_useful,
        prefetches_late,
        prefetch_fills_from_dram,
        pollution_misses,
        ocp_predictions,
        ocp_correct,
        loads_off_chip,
        dram_demand_requests,
        dram_prefetch_requests,
        dram_ocp_requests,
        dram_writeback_requests,
        dram_busy_cycles,
    })
}

fn sim_stats_json(s: &SimStats) -> Json {
    let SimStats {
        instructions,
        cycles,
        loads,
        stores,
        branches,
        branch_mispredicts,
        l1d_misses,
        l2c_misses,
        llc_misses,
        llc_miss_latency_sum,
        prefetches_issued,
        prefetches_useful,
        prefetches_late,
        prefetch_fills_from_dram,
        prefetch_fills_from_dram_unused,
        pollution_misses,
        ocp_predictions,
        ocp_correct,
        loads_off_chip,
        dram_total_requests,
        dram_demand_requests,
        dram_prefetch_requests,
        dram_ocp_requests,
        epochs,
    } = *s;
    Json::obj(vec![
        ("instructions", u64_json(instructions)),
        ("cycles", u64_json(cycles)),
        ("loads", u64_json(loads)),
        ("stores", u64_json(stores)),
        ("branches", u64_json(branches)),
        ("branch_mispredicts", u64_json(branch_mispredicts)),
        ("l1d_misses", u64_json(l1d_misses)),
        ("l2c_misses", u64_json(l2c_misses)),
        ("llc_misses", u64_json(llc_misses)),
        ("llc_miss_latency_sum", u64_json(llc_miss_latency_sum)),
        ("prefetches_issued", u64_json(prefetches_issued)),
        ("prefetches_useful", u64_json(prefetches_useful)),
        ("prefetches_late", u64_json(prefetches_late)),
        (
            "prefetch_fills_from_dram",
            u64_json(prefetch_fills_from_dram),
        ),
        (
            "prefetch_fills_from_dram_unused",
            u64_json(prefetch_fills_from_dram_unused),
        ),
        ("pollution_misses", u64_json(pollution_misses)),
        ("ocp_predictions", u64_json(ocp_predictions)),
        ("ocp_correct", u64_json(ocp_correct)),
        ("loads_off_chip", u64_json(loads_off_chip)),
        ("dram_total_requests", u64_json(dram_total_requests)),
        ("dram_demand_requests", u64_json(dram_demand_requests)),
        ("dram_prefetch_requests", u64_json(dram_prefetch_requests)),
        ("dram_ocp_requests", u64_json(dram_ocp_requests)),
        ("epochs", u64_json(epochs)),
    ])
}

fn sim_stats_from_json(j: &Json) -> Result<SimStats, String> {
    Ok(SimStats {
        instructions: u64_field(j, "instructions")?,
        cycles: u64_field(j, "cycles")?,
        loads: u64_field(j, "loads")?,
        stores: u64_field(j, "stores")?,
        branches: u64_field(j, "branches")?,
        branch_mispredicts: u64_field(j, "branch_mispredicts")?,
        l1d_misses: u64_field(j, "l1d_misses")?,
        l2c_misses: u64_field(j, "l2c_misses")?,
        llc_misses: u64_field(j, "llc_misses")?,
        llc_miss_latency_sum: u64_field(j, "llc_miss_latency_sum")?,
        prefetches_issued: u64_field(j, "prefetches_issued")?,
        prefetches_useful: u64_field(j, "prefetches_useful")?,
        prefetches_late: u64_field(j, "prefetches_late")?,
        prefetch_fills_from_dram: u64_field(j, "prefetch_fills_from_dram")?,
        prefetch_fills_from_dram_unused: u64_field(j, "prefetch_fills_from_dram_unused")?,
        pollution_misses: u64_field(j, "pollution_misses")?,
        ocp_predictions: u64_field(j, "ocp_predictions")?,
        ocp_correct: u64_field(j, "ocp_correct")?,
        loads_off_chip: u64_field(j, "loads_off_chip")?,
        dram_total_requests: u64_field(j, "dram_total_requests")?,
        dram_demand_requests: u64_field(j, "dram_demand_requests")?,
        dram_prefetch_requests: u64_field(j, "dram_prefetch_requests")?,
        dram_ocp_requests: u64_field(j, "dram_ocp_requests")?,
        epochs: u64_field(j, "epochs")?,
    })
}

/// Serialises a DRAM-channel snapshot losslessly. Also used by the per-cell report
/// records ([`CellRecord::to_json`]) — one serialiser, two documents.
pub(crate) fn dram_stats_json(d: &DramStats) -> Json {
    let DramStats {
        total_requests,
        demand_requests,
        prefetch_requests,
        ocp_requests,
        writeback_requests,
        row_hits,
        row_misses,
        bus_busy_cycles,
        demand_latency_sum,
    } = *d;
    Json::obj(vec![
        ("total_requests", u64_json(total_requests)),
        ("demand_requests", u64_json(demand_requests)),
        ("prefetch_requests", u64_json(prefetch_requests)),
        ("ocp_requests", u64_json(ocp_requests)),
        ("writeback_requests", u64_json(writeback_requests)),
        ("row_hits", u64_json(row_hits)),
        ("row_misses", u64_json(row_misses)),
        ("bus_busy_cycles", u64_json(bus_busy_cycles)),
        ("demand_latency_sum", u64_json(demand_latency_sum)),
    ])
}

fn dram_stats_from_json(j: &Json) -> Result<DramStats, String> {
    Ok(DramStats {
        total_requests: u64_field(j, "total_requests")?,
        demand_requests: u64_field(j, "demand_requests")?,
        prefetch_requests: u64_field(j, "prefetch_requests")?,
        ocp_requests: u64_field(j, "ocp_requests")?,
        writeback_requests: u64_field(j, "writeback_requests")?,
        row_hits: u64_field(j, "row_hits")?,
        row_misses: u64_field(j, "row_misses")?,
        bus_busy_cycles: u64_field(j, "bus_busy_cycles")?,
        demand_latency_sum: u64_field(j, "demand_latency_sum")?,
    })
}

fn agent_telemetry_json(a: &CoordinatorTelemetry) -> Json {
    let CoordinatorTelemetry {
        epsilon,
        updates,
        q_mean,
        q_min,
        q_max,
        action_histogram,
    } = a;
    Json::obj(vec![
        ("epsilon", Json::num(*epsilon)),
        ("updates", u64_json(*updates)),
        ("q_mean", Json::num(*q_mean)),
        ("q_min", Json::num(*q_min)),
        ("q_max", Json::num(*q_max)),
        (
            "action_histogram",
            Json::arr(action_histogram.iter().map(|&c| u64_json(c)).collect()),
        ),
    ])
}

fn agent_telemetry_from_json(j: &Json) -> Result<CoordinatorTelemetry, String> {
    let histogram = j
        .get("action_histogram")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'action_histogram' array".to_string())?
        .iter()
        .map(u64_value)
        .collect::<Option<_>>()
        .ok_or_else(|| "non-u64 action_histogram entry".to_string())?;
    Ok(CoordinatorTelemetry {
        epsilon: f64_field(j, "epsilon")?,
        updates: u64_field(j, "updates")?,
        q_mean: f64_field(j, "q_mean")?,
        q_min: f64_field(j, "q_min")?,
        q_max: f64_field(j, "q_max")?,
        action_histogram: histogram,
    })
}

/// Serialises a timeline losslessly (raw window counters and cumulative agent snapshots —
/// unlike the report-oriented [`timeline_json`], which derives presentation metrics and
/// per-window action deltas).
fn timeline_data_json(t: &Timeline) -> Json {
    let windows = t
        .windows
        .iter()
        .map(|w| {
            let WindowSample {
                index,
                start_instruction,
                epochs,
                stats,
                agent,
            } = w;
            Json::obj(vec![
                ("index", u64_json(*index)),
                ("start_instruction", u64_json(*start_instruction)),
                ("epochs", u64_json(*epochs)),
                ("stats", epoch_stats_json(stats)),
                (
                    "agent",
                    match agent {
                        Some(a) => agent_telemetry_json(a),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("window_instructions", u64_json(t.window_instructions)),
        ("windows", Json::arr(windows)),
    ])
}

fn timeline_data_from_json(j: &Json) -> Result<Timeline, String> {
    let windows = j
        .get("windows")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'windows' array".to_string())?
        .iter()
        .map(|w| {
            Ok(WindowSample {
                index: u64_field(w, "index")?,
                start_instruction: u64_field(w, "start_instruction")?,
                epochs: u64_field(w, "epochs")?,
                stats: epoch_stats_from_json(
                    w.get("stats")
                        .ok_or_else(|| "missing 'stats'".to_string())?,
                )?,
                agent: match w.get("agent") {
                    None | Some(Json::Null) => None,
                    Some(a) => Some(agent_telemetry_from_json(a)?),
                },
            })
        })
        .collect::<Result<_, String>>()?;
    Ok(Timeline {
        window_instructions: u64_field(j, "window_instructions")?,
        windows,
    })
}

fn epochs_json(epochs: &[EpochStats]) -> Json {
    Json::arr(epochs.iter().map(epoch_stats_json).collect())
}

fn epochs_from_json(j: &Json, key: &str) -> Result<Vec<EpochStats>, String> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?
        .iter()
        .map(epoch_stats_from_json)
        .collect()
}

/// Serialises one single-core result bit-exactly; [`run_result_from_json`] inverts it.
pub fn run_result_json(r: &RunResult) -> Json {
    let RunResult {
        workload,
        instructions,
        cycles,
        ipc,
        stats,
        dram,
        epochs,
        timeline,
    } = r;
    Json::obj(vec![
        ("workload", Json::str(workload)),
        ("instructions", u64_json(*instructions)),
        ("cycles", u64_json(*cycles)),
        ("ipc", Json::num(*ipc)),
        ("stats", sim_stats_json(stats)),
        ("dram", dram_stats_json(dram)),
        ("epochs", epochs_json(epochs)),
        (
            "timeline",
            match timeline {
                Some(t) => timeline_data_json(t),
                None => Json::Null,
            },
        ),
    ])
}

/// Reconstructs the exact [`RunResult`] serialised by [`run_result_json`].
pub fn run_result_from_json(j: &Json) -> Result<RunResult, String> {
    Ok(RunResult {
        workload: str_field(j, "workload")?.to_string(),
        instructions: u64_field(j, "instructions")?,
        cycles: u64_field(j, "cycles")?,
        ipc: f64_field(j, "ipc")?,
        stats: sim_stats_from_json(
            j.get("stats")
                .ok_or_else(|| "missing 'stats'".to_string())?,
        )?,
        dram: dram_stats_from_json(j.get("dram").ok_or_else(|| "missing 'dram'".to_string())?)?,
        epochs: epochs_from_json(j, "epochs")?,
        timeline: match j.get("timeline") {
            None | Some(Json::Null) => None,
            Some(t) => Some(timeline_data_from_json(t)?),
        },
    })
}

fn sim_result_json(r: &SimResult) -> Json {
    let SimResult {
        instructions,
        cycles,
        stats,
        dram,
        epochs,
        agent_epochs,
    } = r;
    Json::obj(vec![
        ("instructions", u64_json(*instructions)),
        ("cycles", u64_json(*cycles)),
        ("stats", sim_stats_json(stats)),
        ("dram", dram_stats_json(dram)),
        ("epochs", epochs_json(epochs)),
        (
            "agent_epochs",
            Json::arr(
                agent_epochs
                    .iter()
                    .map(|a| match a {
                        Some(a) => agent_telemetry_json(a),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

fn sim_result_from_json(j: &Json) -> Result<SimResult, String> {
    let agent_epochs = j
        .get("agent_epochs")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'agent_epochs' array".to_string())?
        .iter()
        .map(|a| match a {
            Json::Null => Ok(None),
            other => agent_telemetry_from_json(other).map(Some),
        })
        .collect::<Result<_, String>>()?;
    Ok(SimResult {
        instructions: u64_field(j, "instructions")?,
        cycles: u64_field(j, "cycles")?,
        stats: sim_stats_from_json(
            j.get("stats")
                .ok_or_else(|| "missing 'stats'".to_string())?,
        )?,
        dram: dram_stats_from_json(j.get("dram").ok_or_else(|| "missing 'dram'".to_string())?)?,
        epochs: epochs_from_json(j, "epochs")?,
        agent_epochs,
    })
}

/// Serialises a job's full output — single- or multi-core — bit-exactly;
/// [`job_output_from_json`] inverts it. This is the payload format of result-store
/// records ([`RESULT_RECORD_SCHEMA`]).
pub fn job_output_json(output: &JobOutput) -> Json {
    match output {
        JobOutput::Single(r) => Json::obj(vec![
            ("kind", Json::str("single")),
            ("result", run_result_json(r)),
        ]),
        JobOutput::Multi(m) => {
            let MultiCoreResult { cores } = m;
            Json::obj(vec![
                ("kind", Json::str("multi")),
                (
                    "cores",
                    Json::arr(cores.iter().map(sim_result_json).collect()),
                ),
            ])
        }
    }
}

/// Reconstructs the exact [`JobOutput`] serialised by [`job_output_json`].
pub fn job_output_from_json(j: &Json) -> Result<JobOutput, String> {
    match str_field(j, "kind")? {
        "single" => Ok(JobOutput::Single(Box::new(run_result_from_json(
            j.get("result")
                .ok_or_else(|| "missing 'result'".to_string())?,
        )?))),
        "multi" => {
            let cores = j
                .get("cores")
                .and_then(Json::as_array)
                .ok_or_else(|| "missing 'cores' array".to_string())?
                .iter()
                .map(sim_result_from_json)
                .collect::<Result<_, String>>()?;
            Ok(JobOutput::Multi(MultiCoreResult { cores }))
        }
        other => Err(format!("unknown output kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            jobs: 4,
            host_parallelism: 8,
            instructions: 40_000,
            workload_limit: Some(12),
            experiments: vec![
                ExperimentBench {
                    name: "fig7".into(),
                    serial: Duration::from_millis(4000),
                    parallel: Duration::from_millis(1000),
                    identical: true,
                },
                ExperimentBench {
                    name: "tab4".into(),
                    serial: Duration::from_millis(10),
                    parallel: Duration::from_millis(10),
                    identical: true,
                },
            ],
        }
    }

    #[test]
    fn speedups_are_computed_from_totals() {
        let r = report();
        assert!((r.experiments[0].speedup() - 4.0).abs() < 1e-9);
        assert!((r.overall_speedup() - 4010.0 / 1010.0).abs() < 1e-9);
        assert!(r.all_identical());
    }

    #[test]
    fn json_snapshot_has_the_expected_fields() {
        let text = report().to_json().to_pretty();
        for field in [
            "athena-engine-bench-v1",
            "\"jobs\": 4",
            "\"name\": \"fig7\"",
            "serial_ms",
            "overall_speedup",
            "all_identical_to_serial",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn sub_four_thread_hosts_get_an_explanatory_note() {
        let mut r = report();
        assert!(!r.to_json().to_string().contains("\"note\""));
        r.host_parallelism = 1;
        let text = r.to_json().to_string();
        assert!(text.contains("\"note\":\"measured on a 1-thread host"));
    }

    #[test]
    fn events_schema_agrees_with_the_probe_crate() {
        // athena-probe sits below this crate and carries the rendered id as a literal;
        // the Schema constant here is the single registry of document schemas.
        assert_eq!(EVENTS_SCHEMA.id(), athena_probe::EVENTS_SCHEMA_ID);
        assert_eq!(SIM_BENCH_SCHEMA.id(), "athena-sim-bench-v1");
    }

    #[test]
    fn phase_profiles_serialise_nonempty_phases_in_order() {
        use athena_probe::{Phase, PhaseProfile};
        let mut p = PhaseProfile::new();
        p.record(Phase::Dram, 250);
        p.record(Phase::CoreStep, 1_000);
        p.record(Phase::Dispatch, 50);
        let text = phase_profile_json(&p).to_string();
        assert_eq!(
            text,
            "{\"phases\":{\"core_step\":{\"calls\":1,\"nanos\":1000},\
             \"dram\":{\"calls\":1,\"nanos\":250},\
             \"dispatch\":{\"calls\":1,\"nanos\":50}},\"total_nanos\":1300}"
        );
    }

    #[test]
    fn phase_profiles_round_trip_through_json() {
        use athena_probe::{Phase, PhaseProfile};
        let mut p = PhaseProfile::new();
        p.record(Phase::Dram, 250);
        p.record(Phase::CoreStep, 1_000);
        let parsed =
            phase_profile_from_json(&Json::parse(&phase_profile_json(&p).to_string()).unwrap())
                .unwrap();
        assert_eq!(
            phase_profile_json(&parsed).to_string(),
            phase_profile_json(&p).to_string()
        );
        assert!(phase_profile_from_json(&Json::parse("{}").unwrap()).is_err());
        let bad =
            Json::parse("{\"phases\":{\"no_such_phase\":{\"calls\":1,\"nanos\":2}}}").unwrap();
        assert!(phase_profile_from_json(&bad)
            .unwrap_err()
            .contains("no_such_phase"));
    }

    #[test]
    fn metrics_snapshots_serialise_deterministically() {
        use athena_probe::MetricsRegistry;
        let registry = MetricsRegistry::new();
        registry.cells_simulated.add(3);
        registry.cell_wall_nanos.record(1_000);
        registry.cell_wall_nanos.record(3_000);
        registry.record_worker_cell(1, 3_000);
        registry.record_worker_cell(0, 1_000);
        let text = metrics_snapshot_json(&registry.snapshot()).to_string();
        assert!(text.contains(&format!("\"schema\":\"{}\"", METRICS_SCHEMA.id())));
        assert!(text.contains("\"cells_simulated\":3"));
        assert!(text
            .contains("\"cell_wall_nanos\":{\"count\":2,\"sum\":4000,\"min\":1000,\"max\":3000"));
        // Workers come out ascending by id regardless of recording order.
        let w0 = text.find("\"worker\":0").expect("worker 0 present");
        let w1 = text.find("\"worker\":1").expect("worker 1 present");
        assert!(w0 < w1);
    }

    #[test]
    fn figure_report_embeds_table_and_cells() {
        let mut table = ExperimentTable::new("T", "policy", vec!["overall".into()]);
        table.push_row("athena", vec![1.1]);
        let cells = vec![CellRecord {
            experiment: "fig7".into(),
            label: "w/athena/<popet, pythia>".into(),
            seed: 7,
            wall: Duration::from_millis(3),
            cached: false,
            error: None,
            dram: None,
            timeline: None,
            profile: None,
            origin: None,
        }];
        let text = figure_report("fig7", 2, Duration::from_millis(5), &table, &cells).to_string();
        assert!(text.contains("athena-figure-result-v1"));
        assert!(text.contains("\"cell_count\":1"));
        assert!(text.contains("\"failed_cells\":0"));
        assert!(text.contains("\"label\":\"w/athena/<popet, pythia>\""));
    }
}
