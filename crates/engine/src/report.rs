//! Machine-readable report writers: per-figure JSON results, windowed-timeline documents
//! and the `BENCH_engine.json` performance snapshot.

use std::time::Duration;

use athena_telemetry::{Timeline, WindowMetrics};

use crate::json::Json;
use crate::record::CellRecord;
use crate::table::ExperimentTable;

/// Builds the JSON document for one experiment run: the aggregate table plus the per-cell
/// records (label, seed, wall-clock, outcome) collected by [`crate::with_recording`].
pub fn figure_report(
    experiment: &str,
    jobs: usize,
    wall: Duration,
    table: &ExperimentTable,
    cells: &[CellRecord],
) -> Json {
    Json::obj(vec![
        ("schema", Json::str("athena-figure-result-v1")),
        ("experiment", Json::str(experiment)),
        ("jobs", Json::int(jobs)),
        ("wall_ms", Json::num(wall.as_secs_f64() * 1e3)),
        ("cell_count", Json::int(cells.len())),
        (
            "failed_cells",
            Json::int(cells.iter().filter(|c| c.error.is_some()).count()),
        ),
        ("table", table.to_json()),
        (
            "cells",
            Json::arr(cells.iter().map(CellRecord::to_json).collect()),
        ),
    ])
}

fn metrics_json(m: &WindowMetrics) -> Json {
    Json::obj(vec![
        ("ipc", Json::num(m.ipc)),
        ("l1d_mpki", Json::num(m.l1d_mpki)),
        ("llc_mpki", Json::num(m.llc_mpki)),
        ("prefetch_accuracy", Json::num(m.prefetch_accuracy)),
        ("prefetch_coverage", Json::num(m.prefetch_coverage)),
        ("prefetch_timeliness", Json::num(m.prefetch_timeliness)),
        ("ocp_precision", Json::num(m.ocp_precision)),
        ("ocp_recall", Json::num(m.ocp_recall)),
    ])
}

/// Serialises a windowed timeline: one object per window with the raw counters, the
/// derived per-window metrics and — when sampled — the agent internals (Q-value summary,
/// exploration rate, per-window action counts), plus the early-vs-late learning curve.
pub fn timeline_json(t: &Timeline) -> Json {
    let deltas = t.action_deltas();
    let windows = t
        .windows
        .iter()
        .zip(deltas)
        .map(|(w, delta)| {
            let s = &w.stats;
            let mut pairs = vec![
                ("index", Json::num(w.index as f64)),
                ("start_instruction", Json::num(w.start_instruction as f64)),
                ("epochs", Json::num(w.epochs as f64)),
                ("instructions", Json::num(s.instructions as f64)),
                ("cycles", Json::num(s.cycles as f64)),
                ("prefetches_issued", Json::num(s.prefetches_issued as f64)),
                ("prefetches_useful", Json::num(s.prefetches_useful as f64)),
                ("prefetches_late", Json::num(s.prefetches_late as f64)),
                ("ocp_predictions", Json::num(s.ocp_predictions as f64)),
                ("ocp_correct", Json::num(s.ocp_correct as f64)),
                ("loads_off_chip", Json::num(s.loads_off_chip as f64)),
                ("metrics", metrics_json(&WindowMetrics::from_stats(s))),
                ("bandwidth_usage", Json::num(s.bandwidth_usage())),
            ];
            if let (Some(a), Some(d)) = (&w.agent, delta) {
                pairs.push((
                    "agent",
                    Json::obj(vec![
                        ("q_mean", Json::num(a.q_mean)),
                        ("q_min", Json::num(a.q_min)),
                        ("q_max", Json::num(a.q_max)),
                        ("epsilon", Json::num(a.epsilon)),
                        ("updates", Json::num(a.updates as f64)),
                        (
                            "actions",
                            Json::arr(d.iter().map(|&c| Json::num(c as f64)).collect()),
                        ),
                    ]),
                ));
            }
            Json::obj(pairs)
        })
        .collect();
    let mut pairs = vec![
        (
            "window_instructions",
            Json::num(t.window_instructions as f64),
        ),
        ("windows", Json::arr(windows)),
    ];
    if let Some(curve) = t.learning_curve() {
        pairs.push((
            "learning_curve",
            Json::obj(vec![
                ("windows_per_side", Json::num(curve.windows_per_side as f64)),
                ("early", metrics_json(&curve.early)),
                ("late", metrics_json(&curve.late)),
            ]),
        ));
    }
    Json::obj(pairs)
}

/// Builds the standalone JSON document for one cell's timeline (the `figures --timeline`
/// per-cell files).
pub fn timeline_report(workload: &str, coordinator: &str, seed: u64, t: &Timeline) -> Json {
    Json::obj(vec![
        ("schema", Json::str("athena-timeline-v1")),
        ("workload", Json::str(workload)),
        ("coordinator", Json::str(coordinator)),
        ("seed", Json::hex(seed)),
        ("timeline", timeline_json(t)),
    ])
}

/// One experiment's serial-vs-parallel measurement in a [`BenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentBench {
    /// Experiment identifier (e.g. `"fig7"`).
    pub name: String,
    /// Wall-clock of the `--jobs 1` run.
    pub serial: Duration,
    /// Wall-clock of the parallel run.
    pub parallel: Duration,
    /// Whether the parallel run's table was byte-identical (CSV) to the serial run's.
    pub identical: bool,
}

impl ExperimentBench {
    /// Serial-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.parallel.as_secs_f64().max(1e-9)
    }
}

/// The `BENCH_engine.json` snapshot: per-experiment wall-clock at `--jobs 1` vs `--jobs N`,
/// the resulting speedups, and a determinism verdict per experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Worker count of the parallel runs.
    pub jobs: usize,
    /// Hardware threads available on the measuring host.
    pub host_parallelism: usize,
    /// Instruction budget per workload used for the measurement.
    pub instructions: u64,
    /// Workload cap used for the measurement (`None` = full suite).
    pub workload_limit: Option<usize>,
    /// Per-experiment measurements.
    pub experiments: Vec<ExperimentBench>,
}

impl BenchReport {
    /// Total serial wall-clock across all experiments.
    pub fn total_serial(&self) -> Duration {
        self.experiments.iter().map(|e| e.serial).sum()
    }

    /// Total parallel wall-clock across all experiments.
    pub fn total_parallel(&self) -> Duration {
        self.experiments.iter().map(|e| e.parallel).sum()
    }

    /// Whole-suite speedup (total serial over total parallel).
    pub fn overall_speedup(&self) -> f64 {
        self.total_serial().as_secs_f64() / self.total_parallel().as_secs_f64().max(1e-9)
    }

    /// True when every experiment's parallel table matched its serial table byte-for-byte.
    pub fn all_identical(&self) -> bool {
        self.experiments.iter().all(|e| e.identical)
    }

    /// Serialises the snapshot. Snapshots taken on hosts with fewer than four hardware
    /// threads carry an explicit note, so a recorded sub-1x "speedup" reads as what it is
    /// (thread overhead on a host with nothing to parallelise over) rather than a
    /// regression.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::str("athena-engine-bench-v1")),
            ("jobs", Json::int(self.jobs)),
            ("host_parallelism", Json::int(self.host_parallelism)),
        ];
        if self.host_parallelism < 4 {
            pairs.push((
                "note",
                Json::str(format!(
                    "measured on a {}-thread host: parallel speedup needs hardware \
                     parallelism; the >=2x criterion is asserted by \
                     tests/engine_determinism.rs on 4+-core machines",
                    self.host_parallelism
                )),
            ));
        }
        pairs.extend(vec![
            ("instructions", Json::num(self.instructions as f64)),
            (
                "workload_limit",
                match self.workload_limit {
                    Some(w) => Json::int(w),
                    None => Json::Null,
                },
            ),
            (
                "experiments",
                Json::arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("name", Json::str(&e.name)),
                                ("serial_ms", Json::num(e.serial.as_secs_f64() * 1e3)),
                                ("parallel_ms", Json::num(e.parallel.as_secs_f64() * 1e3)),
                                ("speedup", Json::num(e.speedup())),
                                ("identical_to_serial", Json::Bool(e.identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_serial_ms",
                Json::num(self.total_serial().as_secs_f64() * 1e3),
            ),
            (
                "total_parallel_ms",
                Json::num(self.total_parallel().as_secs_f64() * 1e3),
            ),
            ("overall_speedup", Json::num(self.overall_speedup())),
            ("all_identical_to_serial", Json::Bool(self.all_identical())),
        ]);
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            jobs: 4,
            host_parallelism: 8,
            instructions: 40_000,
            workload_limit: Some(12),
            experiments: vec![
                ExperimentBench {
                    name: "fig7".into(),
                    serial: Duration::from_millis(4000),
                    parallel: Duration::from_millis(1000),
                    identical: true,
                },
                ExperimentBench {
                    name: "tab4".into(),
                    serial: Duration::from_millis(10),
                    parallel: Duration::from_millis(10),
                    identical: true,
                },
            ],
        }
    }

    #[test]
    fn speedups_are_computed_from_totals() {
        let r = report();
        assert!((r.experiments[0].speedup() - 4.0).abs() < 1e-9);
        assert!((r.overall_speedup() - 4010.0 / 1010.0).abs() < 1e-9);
        assert!(r.all_identical());
    }

    #[test]
    fn json_snapshot_has_the_expected_fields() {
        let text = report().to_json().to_pretty();
        for field in [
            "athena-engine-bench-v1",
            "\"jobs\": 4",
            "\"name\": \"fig7\"",
            "serial_ms",
            "overall_speedup",
            "all_identical_to_serial",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn sub_four_thread_hosts_get_an_explanatory_note() {
        let mut r = report();
        assert!(!r.to_json().to_string().contains("\"note\""));
        r.host_parallelism = 1;
        let text = r.to_json().to_string();
        assert!(text.contains("\"note\":\"measured on a 1-thread host"));
    }

    #[test]
    fn figure_report_embeds_table_and_cells() {
        let mut table = ExperimentTable::new("T", "policy", vec!["overall".into()]);
        table.push_row("athena", vec![1.1]);
        let cells = vec![CellRecord {
            experiment: "fig7".into(),
            label: "w/athena/<popet, pythia>".into(),
            seed: 7,
            wall: Duration::from_millis(3),
            error: None,
            dram: None,
            timeline: None,
        }];
        let text = figure_report("fig7", 2, Duration::from_millis(5), &table, &cells).to_string();
        assert!(text.contains("athena-figure-result-v1"));
        assert!(text.contains("\"cell_count\":1"));
        assert!(text.contains("\"failed_cells\":0"));
        assert!(text.contains("\"label\":\"w/athena/<popet, pythia>\""));
    }
}
