//! Offline shim for the subset of the `criterion` 0.5 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate stands in for the real
//! Criterion. It implements benchmark groups, throughput annotations and `Bencher::iter`
//! with a simple warm-up + fixed-measurement-window timer, and prints a one-line
//! mean-time-per-iteration report per benchmark. It performs no statistical analysis, saves
//! no baselines and draws no plots — swap the `criterion` entry in the root
//! `[workspace.dependencies]` back to crates.io for real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation attached to a group, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation, used in the printed report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim does not resample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the length of the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let iters = bencher.iterations.max(1);
        let per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / per_iter.max(1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 * 1e9 / per_iter.max(1e-9) / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:.1} ns/iter over {} iters{}",
            self.name, id, per_iter, iters, rate
        );
        self
    }

    /// Ends the group. (The real Criterion emits a summary here; this shim prints per
    /// benchmark instead.)
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, calling it repeatedly for the warm-up window and then the
    /// measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        let mut iterations = 0u64;
        // Check the clock once per batch, not per iteration: for nanosecond-scale
        // routines a per-iteration Instant::now() would dominate the measurement.
        loop {
            for _ in 0..64 {
                black_box(routine());
            }
            iterations += 64;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
