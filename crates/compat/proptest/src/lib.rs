//! Offline shim for the subset of the `proptest` 1.x API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate stands in for the real
//! proptest. The [`proptest!`] macro expands each property into a plain `#[test]` that
//! draws `cases` deterministic random inputs (seeded from the test's module path and name)
//! and runs the body against each. There is no shrinking and no failure persistence — a
//! failing case panics with the ordinary assertion message. Swap the `proptest` entry in
//! the root `[workspace.dependencies]` back to crates.io for the full engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngCore, SampleUniform, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Returns a config that runs `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
///
/// Unlike the real proptest `Strategy`, this shim generates values directly (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Returns a strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Returns a strategy for `HashSet`s whose size is drawn from `size`.
    ///
    /// If the element strategy cannot produce enough distinct values, the set is returned
    /// smaller than requested (matching real proptest, which treats the size as a target).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// FNV-1a hash of a string; used to derive a per-test base seed from the test's name.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Returns the deterministic RNG for one test case.
pub fn case_rng(base_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// Re-exported so the macros can name RNG internals through `$crate`.
#[doc(hidden)]
pub use rand as __rand;
#[doc(hidden)]
pub fn __next_u64(rng: &mut StdRng) -> u64 {
    rng.next_u64()
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a `#[test]` running the
/// body against `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base_seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(base_seed, case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0usize..3, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..20),
            s in prop::collection::hash_set(0u64..u64::MAX, 1..50),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(!s.is_empty() && s.len() < 50);
        }

        #[test]
        fn tuples_compose(t in prop::collection::vec((0u32..4, 0usize..2), 1..10)) {
            for (a, b) in t {
                prop_assert!(a < 4);
                prop_assert!(b < 2);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map(|c| crate::__next_u64(&mut crate::case_rng(99, c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| crate::__next_u64(&mut crate::case_rng(99, c)))
            .collect();
        assert_eq!(a, b);
    }
}
