//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate stands in for the real
//! `rand`. It provides [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng`] and the
//! [`Rng`] extension trait with `gen_range` / `gen` / `gen_bool`. Streams are fully
//! deterministic in the seed, which is all the workload generators require; the statistical
//! quality of xoshiro256++ is more than sufficient for synthetic trace generation.
//!
//! To switch back to the real crate, point the `rand` entry in the root
//! `[workspace.dependencies]` at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A low-level source of random 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Modulo reduction: the bias for spans far below 2^64 is negligible for
                // synthetic trace generation and keeps the shim branch-free.
                let draw = (rng.next_u64() as u128) % span;
                low.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed in the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }

    /// Returns a random value of a supported primitive type.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Fill {
    /// Draws one value from `rng`.
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for u64 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Fill for bool {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12), this generator is not
    /// cryptographically secure — it only needs to drive synthetic workload generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit: {seen:?}"
        );
    }
}
