//! The line-oriented text format: one record per line, hexadecimal fields, `#` comments.
//!
//! See the crate-level docs for the grammar. The text format exists for human inspection,
//! diffing, and interchange with external tools (a ChampSim-style trace converter can
//! target it with a dozen lines of script); the binary format is the one meant for bulk
//! storage and replay.

use std::io::{BufRead, Write};

use athena_sim::{InstrKind, TraceRecord, TraceSource};

use crate::error::TraceIoError;

/// The signature line opening every text trace.
pub const TEXT_SIGNATURE: &str = "#athena-trace v1";

/// Streaming writer for the text format.
#[derive(Debug)]
pub struct TextTraceWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> TextTraceWriter<W> {
    /// Opens a writer on `out`, emitting the signature line immediately.
    pub fn new(mut out: W) -> Result<Self, TraceIoError> {
        writeln!(out, "{TEXT_SIGNATURE}")?;
        Ok(Self { out, records: 0 })
    }

    /// Writes a `#`-prefixed comment line (workload name, provenance, …).
    pub fn write_comment(&mut self, comment: &str) -> Result<(), TraceIoError> {
        writeln!(self.out, "# {comment}")?;
        Ok(())
    }

    /// Appends one record as a text line.
    pub fn write_record(&mut self, r: TraceRecord) -> Result<(), TraceIoError> {
        match r.kind {
            InstrKind::Alu => writeln!(self.out, "a {:x}", r.pc)?,
            InstrKind::Load {
                addr,
                dep_on_recent_load,
            } => {
                let op = if dep_on_recent_load { 'd' } else { 'l' };
                writeln!(self.out, "{op} {:x} {addr:x}", r.pc)?;
            }
            InstrKind::Store { addr } => writeln!(self.out, "s {:x} {addr:x}", r.pc)?,
            InstrKind::Branch { taken } => {
                writeln!(self.out, "b {:x} {}", r.pc, if taken { 't' } else { 'n' })?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for the text format.
///
/// Reads line by line (bounded memory), skipping blank and `#`-comment lines.
#[derive(Debug)]
pub struct TextTraceReader<R: BufRead> {
    input: R,
    line_no: u64,
}

impl<R: BufRead> TextTraceReader<R> {
    /// Opens a reader on `input`, validating the signature line.
    pub fn new(mut input: R) -> Result<Self, TraceIoError> {
        let mut first = String::new();
        input.read_line(&mut first)?;
        if first.trim_end() != TEXT_SIGNATURE {
            return Err(TraceIoError::BadMagic);
        }
        Ok(Self { input, line_no: 1 })
    }

    /// Parses the next record, `Ok(None)` at end of file.
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.input.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let body = line.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            return self.parse_line(body).map(Some);
        }
    }

    fn parse_line(&self, body: &str) -> Result<TraceRecord, TraceIoError> {
        let at = self.line_no;
        let corrupt = |reason: String| TraceIoError::corrupt(at, reason);
        let mut fields = body.split_whitespace();
        let op = fields.next().expect("body is non-empty");
        let mut hex = |name: &str| -> Result<u64, TraceIoError> {
            let field = fields
                .next()
                .ok_or_else(|| corrupt(format!("missing {name} field in '{body}'")))?;
            u64::from_str_radix(field, 16)
                .map_err(|_| corrupt(format!("bad hex {name} '{field}' in '{body}'")))
        };
        let record = match op {
            "a" => TraceRecord::alu(hex("pc")?),
            "l" => TraceRecord::load(hex("pc")?, hex("addr")?, false),
            "d" => TraceRecord::load(hex("pc")?, hex("addr")?, true),
            "s" => TraceRecord::store(hex("pc")?, hex("addr")?),
            "b" => {
                let pc = hex("pc")?;
                let taken = match fields.next() {
                    Some("t") => true,
                    Some("n") => false,
                    other => {
                        return Err(corrupt(format!(
                            "bad branch direction {other:?} in '{body}' (expected t or n)"
                        )))
                    }
                };
                TraceRecord::branch(pc, taken)
            }
            other => return Err(corrupt(format!("unknown opcode '{other}' in '{body}'"))),
        };
        if let Some(extra) = fields.next() {
            return Err(corrupt(format!("trailing field '{extra}' in '{body}'")));
        }
        Ok(record)
    }
}

impl<R: BufRead> TraceSource for TextTraceReader<R> {
    /// Streams the next record.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable line, for the same reason as
    /// [`crate::BinaryTraceReader`]'s impl: `TraceSource` has no error channel and a
    /// damaged trace must not silently end early. Use
    /// [`TextTraceReader::try_next`] where errors must be handled gracefully.
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.try_next()
            .unwrap_or_else(|e| panic!("text trace replay failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x1000_0040, false),
            TraceRecord::load(0x400008, 0x1000_0080, true),
            TraceRecord::store(0x40000c, 0x2000_0000),
            TraceRecord::branch(0x400010, true),
            TraceRecord::branch(0x400014, false),
        ]
    }

    fn encode(records: &[TraceRecord]) -> String {
        let mut w = TextTraceWriter::new(Cursor::new(Vec::new())).unwrap();
        w.write_comment("unit-test trace").unwrap();
        for r in records {
            w.write_record(*r).unwrap();
        }
        String::from_utf8(w.finish().unwrap().into_inner()).unwrap()
    }

    #[test]
    fn round_trips_every_record_kind() {
        let records = sample_records();
        let text = encode(&records);
        assert!(text.starts_with(TEXT_SIGNATURE));
        let mut r = TextTraceReader::new(Cursor::new(text.as_bytes())).unwrap();
        let got: Vec<TraceRecord> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{TEXT_SIGNATURE}\n\n# comment\na 400\n\n# more\nb 404 t\n");
        let mut r = TextTraceReader::new(Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(r.try_next().unwrap(), Some(TraceRecord::alu(0x400)));
        assert_eq!(
            r.try_next().unwrap(),
            Some(TraceRecord::branch(0x404, true))
        );
        assert_eq!(r.try_next().unwrap(), None);
    }

    #[test]
    fn missing_signature_is_rejected() {
        assert!(matches!(
            TextTraceReader::new(Cursor::new(b"a 400\n".as_slice())),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        for bad in ["z 400", "l 400", "l xyz 10", "b 400 q", "a 400 extra"] {
            let text = format!("{TEXT_SIGNATURE}\n{bad}\n");
            let mut r = TextTraceReader::new(Cursor::new(text.as_bytes())).unwrap();
            match r.try_next() {
                Err(TraceIoError::Corrupt { at, .. }) => assert_eq!(at, 2, "line {bad}"),
                other => panic!("'{bad}' must be rejected, got {other:?}"),
            }
        }
    }
}
