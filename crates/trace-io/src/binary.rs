//! The versioned binary container: fixed header + varint-packed records.
//!
//! See the crate-level docs for the byte-level layout. Readers and writers here are
//! streaming: both hold O(1) state (the previous pc and the previous memory address)
//! regardless of trace length.

use std::io::{Read, Seek, SeekFrom, Write};

use athena_sim::{InstrKind, TraceRecord, TraceSource};

use crate::error::TraceIoError;
use crate::varint::{read_varint, unzigzag, write_varint, zigzag};

/// The eight magic bytes opening every binary trace file.
pub const MAGIC: [u8; 8] = *b"ATHTRACE";

/// The binary format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Total size of the fixed header, in bytes.
pub const HEADER_LEN: u64 = 32;

/// Byte offset of the record/load counters inside the header (patched on
/// [`BinaryTraceWriter::finish`]).
const COUNTS_OFFSET: u64 = 16;

/// Record tags (kind + boolean payload folded into one byte).
const TAG_ALU: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_LOAD_DEP: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_BRANCH_NOT_TAKEN: u8 = 4;
const TAG_BRANCH_TAKEN: u8 = 5;

/// The decoded fixed header of a binary trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Number of records (instructions) in the file.
    pub records: u64,
    /// Number of load records in the file.
    pub loads: u64,
}

/// Streaming writer for the binary format.
///
/// Counts are not known until the stream ends, so the header is written with zeroed
/// counters up front and patched in place by [`BinaryTraceWriter::finish`] — which is why
/// the sink must be `Write + Seek` (a [`std::fs::File`], a `BufWriter<File>`, or an
/// in-memory `Cursor`). Dropping the writer without calling `finish` leaves a file whose
/// header claims zero records; readers will reject its body as trailing bytes, so a
/// half-written trace cannot be mistaken for a complete one.
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write + Seek> {
    out: W,
    records: u64,
    loads: u64,
    last_pc: u64,
    last_addr: u64,
}

impl<W: Write + Seek> BinaryTraceWriter<W> {
    /// Opens a writer on `out`, writing the placeholder header immediately.
    pub fn new(mut out: W) -> Result<Self, TraceIoError> {
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(&MAGIC);
        header[8..10].copy_from_slice(&VERSION.to_le_bytes());
        // Bytes 10..16 are reserved (zero); the counters at 16..32 are patched on finish.
        out.write_all(&header)?;
        Ok(Self {
            out,
            records: 0,
            loads: 0,
            last_pc: 0,
            last_addr: 0,
        })
    }

    /// Appends one record.
    pub fn write_record(&mut self, r: TraceRecord) -> Result<(), TraceIoError> {
        let pc_delta = zigzag(r.pc.wrapping_sub(self.last_pc) as i64);
        self.last_pc = r.pc;
        match r.kind {
            InstrKind::Alu => {
                self.out.write_all(&[TAG_ALU])?;
                write_varint(&mut self.out, pc_delta)?;
            }
            InstrKind::Load {
                addr,
                dep_on_recent_load,
            } => {
                let tag = if dep_on_recent_load {
                    TAG_LOAD_DEP
                } else {
                    TAG_LOAD
                };
                self.out.write_all(&[tag])?;
                write_varint(&mut self.out, pc_delta)?;
                write_varint(
                    &mut self.out,
                    zigzag(addr.wrapping_sub(self.last_addr) as i64),
                )?;
                self.last_addr = addr;
                self.loads += 1;
            }
            InstrKind::Store { addr } => {
                self.out.write_all(&[TAG_STORE])?;
                write_varint(&mut self.out, pc_delta)?;
                write_varint(
                    &mut self.out,
                    zigzag(addr.wrapping_sub(self.last_addr) as i64),
                )?;
                self.last_addr = addr;
            }
            InstrKind::Branch { taken } => {
                let tag = if taken {
                    TAG_BRANCH_TAKEN
                } else {
                    TAG_BRANCH_NOT_TAKEN
                };
                self.out.write_all(&[tag])?;
                write_varint(&mut self.out, pc_delta)?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Patches the header counters, flushes, and returns the underlying sink.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.out.flush()?;
        self.out.seek(SeekFrom::Start(COUNTS_OFFSET))?;
        self.out.write_all(&self.records.to_le_bytes())?;
        self.out.write_all(&self.loads.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for the binary format.
///
/// Wrap file inputs in a [`std::io::BufReader`] — the decoder reads a byte at a time.
/// The reader validates the magic and version at construction, decodes exactly the number
/// of records the header promises, and rejects both truncation and trailing bytes.
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    decoded: u64,
    loads_decoded: u64,
    last_pc: u64,
    last_addr: u64,
    /// Set once the end of the stream has been checked, so the trailing-bytes probe reads
    /// exactly once.
    finished: bool,
    /// Set if that probe found trailing bytes; the error is sticky — every subsequent
    /// call keeps failing rather than reporting a clean end.
    trailing: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a reader on `input`, validating the header.
    pub fn new(mut input: R) -> Result<Self, TraceIoError> {
        let mut header = [0u8; HEADER_LEN as usize];
        input
            .read_exact(&mut header)
            .map_err(|_| TraceIoError::BadMagic)?;
        if header[..8] != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&header[off..off + 8]);
            u64::from_le_bytes(b)
        };
        Ok(Self {
            input,
            header: TraceHeader {
                version,
                records: u64_at(16),
                loads: u64_at(24),
            },
            decoded: 0,
            loads_decoded: 0,
            last_pc: 0,
            last_addr: 0,
            finished: false,
            trailing: false,
        })
    }

    /// The decoded file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Decodes the next record, `Ok(None)` at the (verified) end of the trace.
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.decoded == self.header.records {
            if !self.finished {
                self.finished = true;
                let mut byte = [0u8; 1];
                self.trailing = self.input.read(&mut byte)? != 0;
            }
            if self.trailing {
                return Err(TraceIoError::corrupt(
                    self.decoded,
                    "trailing bytes after the final record",
                ));
            }
            if self.loads_decoded != self.header.loads {
                return Err(TraceIoError::corrupt(
                    self.decoded,
                    format!(
                        "header promises {} loads, stream contains {}",
                        self.header.loads, self.loads_decoded
                    ),
                ));
            }
            return Ok(None);
        }
        let at = self.decoded;
        let mut tag = [0u8; 1];
        if self.input.read(&mut tag)? == 0 {
            return Err(TraceIoError::corrupt(
                at,
                format!(
                    "trace truncated: header promises {} records, stream ended after {at}",
                    self.header.records
                ),
            ));
        }
        let pc_delta = self.read_required_varint(at)?;
        let pc = self.last_pc.wrapping_add(unzigzag(pc_delta) as u64);
        self.last_pc = pc;
        let kind = match tag[0] {
            TAG_ALU => InstrKind::Alu,
            TAG_LOAD | TAG_LOAD_DEP => {
                let addr = self.read_addr(at)?;
                self.loads_decoded += 1;
                InstrKind::Load {
                    addr,
                    dep_on_recent_load: tag[0] == TAG_LOAD_DEP,
                }
            }
            TAG_STORE => InstrKind::Store {
                addr: self.read_addr(at)?,
            },
            TAG_BRANCH_NOT_TAKEN => InstrKind::Branch { taken: false },
            TAG_BRANCH_TAKEN => InstrKind::Branch { taken: true },
            bad => {
                return Err(TraceIoError::corrupt(
                    at,
                    format!("unknown record tag {bad}"),
                ))
            }
        };
        self.decoded += 1;
        Ok(Some(TraceRecord { pc, kind }))
    }

    fn read_required_varint(&mut self, at: u64) -> Result<u64, TraceIoError> {
        read_varint(&mut self.input, at)?
            .ok_or_else(|| TraceIoError::corrupt(at, "record truncated mid-field"))
    }

    fn read_addr(&mut self, at: u64) -> Result<u64, TraceIoError> {
        let delta = self.read_required_varint(at)?;
        let addr = self.last_addr.wrapping_add(unzigzag(delta) as u64);
        self.last_addr = addr;
        Ok(addr)
    }
}

impl<R: Read> TraceSource for BinaryTraceReader<R> {
    /// Streams the next record.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt or truncated stream — `TraceSource` has no error channel, and
    /// silently ending a damaged trace would let a corrupted file masquerade as a shorter
    /// workload. Inside the experiment engine the panic is caught per cell. Use
    /// [`BinaryTraceReader::try_next`] where errors must be handled gracefully.
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.try_next()
            .unwrap_or_else(|e| panic!("binary trace replay failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x1000_0040, false),
            TraceRecord::load(0x400008, 0x1000_0080, true),
            TraceRecord::store(0x40000c, 0x2000_0000),
            TraceRecord::branch(0x400010, true),
            TraceRecord::branch(0x400000, false),
            // Address moving backwards and a pc far away: zigzag handles both signs.
            TraceRecord::load(0x99_0000, 0x0fff_ffc0, false),
        ]
    }

    fn encode(records: &[TraceRecord]) -> Vec<u8> {
        let mut w = BinaryTraceWriter::new(Cursor::new(Vec::new())).unwrap();
        for r in records {
            w.write_record(*r).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn round_trips_every_record_kind() {
        let records = sample_records();
        let bytes = encode(&records);
        let mut r = BinaryTraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(
            *r.header(),
            TraceHeader {
                version: VERSION,
                records: records.len() as u64,
                loads: 3,
            }
        );
        let got: Vec<TraceRecord> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, records);
        // Idempotent end-of-stream.
        assert!(r.try_next().unwrap().is_none());
    }

    #[test]
    fn sequential_records_encode_compactly() {
        // A streaming pattern: same pc page, line-by-line addresses. Header (32) plus a
        // handful of bytes per record — far below the 24-byte in-memory footprint.
        let records: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord::load(0x400004, 0x1000_0000 + i * 64, false))
            .collect();
        let bytes = encode(&records);
        // First record pays full-width deltas (~10 bytes); steady state is 4 bytes per
        // record (tag + 1-byte pc delta + 2-byte line-stride addr delta).
        assert!(
            bytes.len() <= HEADER_LEN as usize + 10 + records.len() * 4,
            "1000 streaming loads took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_records());
        bytes[0] = b'X';
        assert!(matches!(
            BinaryTraceReader::new(Cursor::new(&bytes)),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&sample_records());
        bytes[8] = 0xff;
        bytes[9] = 0x7f;
        assert!(matches!(
            BinaryTraceReader::new(Cursor::new(&bytes)),
            Err(TraceIoError::UnsupportedVersion(0x7fff))
        ));
    }

    #[test]
    fn truncated_header_is_rejected() {
        let bytes = encode(&sample_records());
        for len in [0, 7, 16, 31] {
            assert!(
                matches!(
                    BinaryTraceReader::new(Cursor::new(&bytes[..len])),
                    Err(TraceIoError::BadMagic)
                ),
                "header cut to {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn truncated_body_is_an_error_not_a_short_trace() {
        let bytes = encode(&sample_records());
        let cut = &bytes[..bytes.len() - 3];
        let mut r = BinaryTraceReader::new(Cursor::new(cut)).unwrap();
        let mut saw_error = false;
        for _ in 0..sample_records().len() {
            match r.try_next() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated trace must not end cleanly"),
                Err(TraceIoError::Corrupt { .. }) => {
                    saw_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_error);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample_records());
        bytes.push(0x00);
        let mut r = BinaryTraceReader::new(Cursor::new(&bytes)).unwrap();
        while let Ok(Some(_)) = r.try_next() {}
        assert!(matches!(r.try_next(), Err(TraceIoError::Corrupt { .. })));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let records = [TraceRecord::alu(0x400000)];
        let mut bytes = encode(&records);
        bytes[HEADER_LEN as usize] = 0x3f;
        let mut r = BinaryTraceReader::new(Cursor::new(&bytes)).unwrap();
        assert!(matches!(r.try_next(), Err(TraceIoError::Corrupt { .. })));
    }

    #[test]
    #[should_panic(expected = "binary trace replay failed")]
    fn trace_source_panics_on_corruption() {
        let bytes = encode(&sample_records());
        let mut r = BinaryTraceReader::new(Cursor::new(&bytes[..bytes.len() - 2])).unwrap();
        while r.next_record().is_some() {}
    }
}
