//! File-level entry points: format sniffing, opening, recording and converting traces.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::path::Path;

use athena_sim::{TraceRecord, TraceSource};

use crate::binary::{BinaryTraceReader, BinaryTraceWriter, TraceHeader, MAGIC};
use crate::error::TraceIoError;
use crate::text::{TextTraceReader, TextTraceWriter, TEXT_SIGNATURE};

/// The two on-disk representations of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The varint-packed binary container (conventional extension: `.trace`).
    Binary,
    /// The line-oriented text format (conventional extension: `.trace.txt`).
    Text,
}

impl TraceFormat {
    /// Picks the conventional format for `path` from its file name: names ending in
    /// `.txt` are text, everything else is binary.
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("txt") => TraceFormat::Text,
            _ => TraceFormat::Binary,
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFormat::Binary => write!(f, "binary"),
            TraceFormat::Text => write!(f, "text"),
        }
    }
}

/// Determines the on-disk format of `path` from its leading bytes (the binary magic or
/// the text signature) — never from the file name.
pub fn sniff_format(path: &Path) -> Result<TraceFormat, TraceIoError> {
    let mut head = [0u8; 8];
    let mut file = File::open(path)?;
    let n = file.read(&mut head)?;
    if head[..n] == MAGIC[..n.min(8)] && n == 8 {
        return Ok(TraceFormat::Binary);
    }
    if TEXT_SIGNATURE
        .as_bytes()
        .starts_with(&head[..n.min(TEXT_SIGNATURE.len())])
        && n > 0
    {
        return Ok(TraceFormat::Text);
    }
    Err(TraceIoError::BadMagic)
}

/// A trace file opened for streaming replay, in either format.
///
/// Produced by [`open_trace`]; implements [`TraceSource`] so it drops straight into the
/// simulator or a file-backed engine job.
#[derive(Debug)]
pub enum TraceFile {
    /// A binary trace (buffered).
    Binary(BinaryTraceReader<BufReader<File>>),
    /// A text trace (buffered).
    Text(TextTraceReader<BufReader<File>>),
}

impl TraceFile {
    /// The binary header, if this is a binary trace (the text format has no header).
    pub fn header(&self) -> Option<&TraceHeader> {
        match self {
            TraceFile::Binary(r) => Some(r.header()),
            TraceFile::Text(_) => None,
        }
    }

    /// The on-disk format.
    pub fn format(&self) -> TraceFormat {
        match self {
            TraceFile::Binary(_) => TraceFormat::Binary,
            TraceFile::Text(_) => TraceFormat::Text,
        }
    }

    /// Reads the next record, `Ok(None)` at the end of the trace.
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        match self {
            TraceFile::Binary(r) => r.try_next(),
            TraceFile::Text(r) => r.try_next(),
        }
    }
}

impl TraceSource for TraceFile {
    /// Streams the next record; panics on corruption (see the reader docs).
    fn next_record(&mut self) -> Option<TraceRecord> {
        match self {
            TraceFile::Binary(r) => r.next_record(),
            TraceFile::Text(r) => r.next_record(),
        }
    }
}

/// Opens `path` for streaming replay, sniffing the format from the file contents.
pub fn open_trace(path: &Path) -> Result<TraceFile, TraceIoError> {
    match sniff_format(path)? {
        TraceFormat::Binary => Ok(TraceFile::Binary(BinaryTraceReader::new(BufReader::new(
            File::open(path)?,
        ))?)),
        TraceFormat::Text => Ok(TraceFile::Text(TextTraceReader::new(BufReader::new(
            File::open(path)?,
        ))?)),
    }
}

/// A trace file opened for writing, in either format.
#[derive(Debug)]
pub enum TraceFileWriter {
    /// Writing the binary container.
    Binary(BinaryTraceWriter<BufWriter<File>>),
    /// Writing the text format.
    Text(TextTraceWriter<BufWriter<File>>),
}

impl TraceFileWriter {
    /// Creates (truncating) `path` and opens a writer in `format`.
    pub fn create(path: &Path, format: TraceFormat) -> Result<Self, TraceIoError> {
        let out = BufWriter::new(File::create(path)?);
        match format {
            TraceFormat::Binary => Ok(TraceFileWriter::Binary(BinaryTraceWriter::new(out)?)),
            TraceFormat::Text => Ok(TraceFileWriter::Text(TextTraceWriter::new(out)?)),
        }
    }

    /// Writes a comment (text format only; a no-op for binary, which has no comments).
    pub fn write_comment(&mut self, comment: &str) -> Result<(), TraceIoError> {
        match self {
            TraceFileWriter::Binary(_) => Ok(()),
            TraceFileWriter::Text(w) => w.write_comment(comment),
        }
    }

    /// Appends one record.
    pub fn write_record(&mut self, r: TraceRecord) -> Result<(), TraceIoError> {
        match self {
            TraceFileWriter::Binary(w) => w.write_record(r),
            TraceFileWriter::Text(w) => w.write_record(r),
        }
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        match self {
            TraceFileWriter::Binary(w) => w.records_written(),
            TraceFileWriter::Text(w) => w.records_written(),
        }
    }

    /// Finalises the file (patching the binary header counters) and flushes.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self {
            TraceFileWriter::Binary(w) => w.finish().map(drop),
            TraceFileWriter::Text(w) => w.finish().map(drop),
        }
    }
}

/// Records up to `limit` records from `source` into `path` in `format`; returns the
/// number of records written (fewer than `limit` only if the source ends first).
///
/// The copy is streaming: one record is in flight at a time, so recording a
/// multi-million-instruction workload holds O(1) memory.
pub fn record_trace(
    source: &mut dyn TraceSource,
    limit: u64,
    path: &Path,
    format: TraceFormat,
) -> Result<u64, TraceIoError> {
    let mut writer = TraceFileWriter::create(path, format)?;
    while writer.records_written() < limit {
        let Some(r) = source.next_record() else {
            break;
        };
        writer.write_record(r)?;
    }
    let written = writer.records_written();
    writer.finish()?;
    Ok(written)
}

/// Converts `input` to `output` in `to` format (both directions are lossless), streaming.
/// Returns the number of records converted.
///
/// Refuses to convert a file onto itself: the output is created (truncated) while the
/// input is still being streamed, so an in-place conversion would destroy the input.
pub fn convert(input: &Path, output: &Path, to: TraceFormat) -> Result<u64, TraceIoError> {
    // Canonicalisation fails when `output` does not exist yet — which is exactly the case
    // where truncation cannot destroy anything.
    if let (Ok(from), Ok(to_path)) = (input.canonicalize(), output.canonicalize()) {
        if from == to_path {
            return Err(TraceIoError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cannot convert '{}' onto itself (write to a new path instead)",
                    input.display()
                ),
            )));
        }
    }
    let mut reader = open_trace(input)?;
    let mut writer = TraceFileWriter::create(output, to)?;
    while let Some(r) = reader.try_next()? {
        writer.write_record(r)?;
    }
    let written = writer.records_written();
    writer.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("athena-trace-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<TraceRecord> {
        (0..500u64)
            .map(|i| match i % 4 {
                0 => TraceRecord::load(0x400 + i * 4, 0x1000_0000 + i * 64, i % 8 == 0),
                1 => TraceRecord::store(0x500 + i * 4, 0x2000_0000 + i * 64),
                2 => TraceRecord::branch(0x600 + i * 4, i % 3 == 0),
                _ => TraceRecord::alu(0x700 + i * 4),
            })
            .collect()
    }

    #[test]
    fn record_open_and_sniff_both_formats() {
        let records = sample_records();
        for (format, name) in [
            (TraceFormat::Binary, "roundtrip.trace"),
            (TraceFormat::Text, "roundtrip.trace.txt"),
        ] {
            let path = temp_path(name);
            let mut src = records.clone().into_iter();
            let written = record_trace(&mut src, u64::MAX, &path, format).unwrap();
            assert_eq!(written, records.len() as u64);
            assert_eq!(sniff_format(&path).unwrap(), format);
            let mut file = open_trace(&path).unwrap();
            assert_eq!(file.format(), format);
            if format == TraceFormat::Binary {
                assert_eq!(file.header().unwrap().records, records.len() as u64);
            }
            let replayed: Vec<TraceRecord> = std::iter::from_fn(|| file.next_record()).collect();
            assert_eq!(replayed, records, "{format} round trip");
        }
    }

    #[test]
    fn record_respects_the_limit() {
        let path = temp_path("limited.trace");
        let mut src = sample_records().into_iter();
        let written = record_trace(&mut src, 42, &path, TraceFormat::Binary).unwrap();
        assert_eq!(written, 42);
        let mut file = open_trace(&path).unwrap();
        assert_eq!(file.header().unwrap().records, 42);
        assert_eq!(std::iter::from_fn(|| file.next_record()).count(), 42);
    }

    #[test]
    fn convert_is_lossless_in_both_directions() {
        let records = sample_records();
        let bin = temp_path("convert.trace");
        let txt = temp_path("convert.trace.txt");
        let back = temp_path("convert-back.trace");
        let mut src = records.clone().into_iter();
        record_trace(&mut src, u64::MAX, &bin, TraceFormat::Binary).unwrap();
        assert_eq!(convert(&bin, &txt, TraceFormat::Text).unwrap(), 500);
        assert_eq!(convert(&txt, &back, TraceFormat::Binary).unwrap(), 500);
        let original = std::fs::read(&bin).unwrap();
        let roundtripped = std::fs::read(&back).unwrap();
        assert_eq!(
            original, roundtripped,
            "binary→text→binary is byte-identical"
        );
    }

    #[test]
    fn converting_a_trace_onto_itself_is_refused_and_harmless() {
        let path = temp_path("inplace.trace");
        let mut src = sample_records().into_iter();
        record_trace(&mut src, u64::MAX, &path, TraceFormat::Binary).unwrap();
        let before = std::fs::read(&path).unwrap();
        assert!(convert(&path, &path, TraceFormat::Text).is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "input must be intact"
        );
    }

    #[test]
    fn sniffing_a_non_trace_file_fails() {
        let path = temp_path("not-a-trace");
        std::fs::write(&path, b"hello world, definitely not a trace").unwrap();
        assert!(matches!(sniff_format(&path), Err(TraceIoError::BadMagic)));
        assert!(open_trace(&path).is_err());
    }

    #[test]
    fn format_for_path_follows_extension() {
        assert_eq!(
            TraceFormat::for_path(Path::new("w.trace")),
            TraceFormat::Binary
        );
        assert_eq!(
            TraceFormat::for_path(Path::new("w.trace.txt")),
            TraceFormat::Text
        );
        assert_eq!(TraceFormat::for_path(Path::new("w")), TraceFormat::Binary);
    }
}
