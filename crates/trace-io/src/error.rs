//! The error type shared by every reader, writer and helper in this crate.

use std::fmt;
use std::io;

/// Everything that can go wrong while reading or writing an on-disk trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure (file missing, disk full, pipe closed, …).
    Io(io::Error),
    /// The file does not start with the binary magic or the text signature.
    BadMagic,
    /// The binary header carries a format version this build does not understand.
    UnsupportedVersion(u16),
    /// The stream is structurally invalid: a bad record tag, an over-long varint, a
    /// truncated record stream, trailing bytes after the final record, or an unparsable
    /// text line. The payload pinpoints where and why.
    Corrupt {
        /// Position of the problem: a record index for binary streams, a line number for
        /// text streams.
        at: u64,
        /// Human-readable description of the corruption.
        reason: String,
    },
}

impl TraceIoError {
    /// Builds a [`TraceIoError::Corrupt`] at record/line `at`.
    pub(crate) fn corrupt(at: u64, reason: impl Into<String>) -> Self {
        TraceIoError::Corrupt {
            at,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic => {
                write!(f, "not an athena trace (bad magic / missing signature)")
            }
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Corrupt { at, reason } => {
                write!(f, "corrupt trace at record/line {at}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}
