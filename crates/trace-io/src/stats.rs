//! Whole-trace summaries: instruction mix, footprint and a first-order miss profile.

use std::collections::HashSet;
use std::fmt;

use athena_sim::{InstrKind, TraceSource, LINE_SIZE, PAGE_SIZE};

/// Aggregate statistics of one trace, computed in a single streaming pass.
///
/// Memory use is bounded by the trace's *footprint* (one hash-set entry per distinct cache
/// line / page / pc), not by its length — a billion-instruction trace over a 100 MB
/// working set summarises in a few tens of MB.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total records scanned.
    pub records: u64,
    /// Load records.
    pub loads: u64,
    /// Loads whose address depends on the previous load (pointer chasing).
    pub dependent_loads: u64,
    /// Store records.
    pub stores: u64,
    /// Conditional-branch records.
    pub branches: u64,
    /// Branches that were taken.
    pub taken_branches: u64,
    /// Distinct cache lines touched by loads and stores.
    pub distinct_lines: u64,
    /// Distinct virtual pages touched by loads and stores.
    pub distinct_pages: u64,
    /// Distinct program counters seen.
    pub distinct_pcs: u64,
}

impl TraceSummary {
    /// Scans at most `limit` records from `source` (`u64::MAX` for the whole trace).
    pub fn scan(source: &mut dyn TraceSource, limit: u64) -> Self {
        let mut s = Self::default();
        let mut lines: HashSet<u64> = HashSet::new();
        let mut pages: HashSet<u64> = HashSet::new();
        let mut pcs: HashSet<u64> = HashSet::new();
        while s.records < limit {
            let Some(r) = source.next_record() else {
                break;
            };
            s.records += 1;
            pcs.insert(r.pc);
            match r.kind {
                InstrKind::Alu => {}
                InstrKind::Load {
                    addr,
                    dep_on_recent_load,
                } => {
                    s.loads += 1;
                    s.dependent_loads += u64::from(dep_on_recent_load);
                    lines.insert(addr / LINE_SIZE);
                    pages.insert(addr / PAGE_SIZE);
                }
                InstrKind::Store { addr } => {
                    s.stores += 1;
                    lines.insert(addr / LINE_SIZE);
                    pages.insert(addr / PAGE_SIZE);
                }
                InstrKind::Branch { taken } => {
                    s.branches += 1;
                    s.taken_branches += u64::from(taken);
                }
            }
        }
        s.distinct_lines = lines.len() as u64;
        s.distinct_pages = pages.len() as u64;
        s.distinct_pcs = pcs.len() as u64;
        s
    }

    /// Data footprint in bytes (distinct cache lines × line size).
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_lines * LINE_SIZE
    }

    /// Fraction of loads that are dependent (pointer chasing); 0 for a load-free trace.
    pub fn dependent_load_fraction(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.dependent_loads as f64 / self.loads as f64
    }

    /// First-order miss profile: the fraction of memory accesses that touch a line for the
    /// first time. This is the trace's *compulsory* (cold) miss rate — an upper bound on
    /// how much any cache can help, and a quick separator of streaming workloads (high)
    /// from reuse-heavy ones (low).
    pub fn cold_access_fraction(&self) -> f64 {
        let accesses = self.loads + self.stores;
        if accesses == 0 {
            return 0.0;
        }
        self.distinct_lines as f64 / accesses as f64
    }

    /// Mean accesses per distinct line (the inverse view of
    /// [`TraceSummary::cold_access_fraction`]); 0 for a trace with no memory accesses.
    pub fn line_reuse(&self) -> f64 {
        if self.distinct_lines == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.distinct_lines as f64
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "records:            {}", self.records)?;
        writeln!(
            f,
            "loads:              {} ({:.1}% dependent)",
            self.loads,
            100.0 * self.dependent_load_fraction()
        )?;
        writeln!(f, "stores:             {}", self.stores)?;
        writeln!(
            f,
            "branches:           {} ({:.1}% taken)",
            self.branches,
            if self.branches > 0 {
                100.0 * self.taken_branches as f64 / self.branches as f64
            } else {
                0.0
            }
        )?;
        writeln!(
            f,
            "footprint:          {:.2} MiB ({} lines, {} pages)",
            self.footprint_bytes() as f64 / (1 << 20) as f64,
            self.distinct_lines,
            self.distinct_pages
        )?;
        writeln!(f, "distinct pcs:       {}", self.distinct_pcs)?;
        write!(
            f,
            "miss profile:       {:.1}% cold accesses, {:.1}x line reuse",
            100.0 * self.cold_access_fraction(),
            self.line_reuse()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_sim::TraceRecord;

    #[test]
    fn summary_counts_mix_and_footprint() {
        let records = vec![
            TraceRecord::alu(0x400),
            TraceRecord::load(0x404, 0x10_0000, false),
            TraceRecord::load(0x408, 0x10_0040, true),
            TraceRecord::load(0x404, 0x10_0000, false), // same line again
            TraceRecord::store(0x40c, 0x20_0000),
            TraceRecord::branch(0x410, true),
            TraceRecord::branch(0x410, false),
        ];
        let mut src = records.into_iter();
        let s = TraceSummary::scan(&mut src, u64::MAX);
        assert_eq!(s.records, 7);
        assert_eq!(s.loads, 3);
        assert_eq!(s.dependent_loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.distinct_lines, 3);
        assert_eq!(s.distinct_pages, 2);
        assert_eq!(s.footprint_bytes(), 3 * LINE_SIZE);
        assert!((s.cold_access_fraction() - 0.75).abs() < 1e-12);
        assert!((s.line_reuse() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scan_respects_the_limit() {
        let mut src = (0..100u64).map(|i| TraceRecord::alu(0x400 + i));
        let s = TraceSummary::scan(&mut src, 10);
        assert_eq!(s.records, 10);
        assert_eq!(s.distinct_pcs, 10);
    }

    #[test]
    fn display_is_human_readable() {
        let mut src = vec![TraceRecord::load(0x400, 0x1000, false)].into_iter();
        let text = TraceSummary::scan(&mut src, u64::MAX).to_string();
        assert!(text.contains("records:"));
        assert!(text.contains("footprint:"));
        assert!(text.contains("miss profile:"));
    }
}
