//! # athena-trace-io
//!
//! On-disk trace formats and streaming replay for the Athena reproduction.
//!
//! Every workload in `athena-workloads` is an in-process seeded generator. That keeps the
//! suite cheap and deterministic, but nothing can be captured to disk, shared between
//! machines, diffed, or replayed from an external tool — the workflows that real
//! trace-driven reproductions (Pythia's ChampSim farms, the paper's own 100-trace
//! evaluation) are built on. This crate closes that gap with two interchangeable on-disk
//! representations of a [`TraceRecord`] stream and bounded-memory streaming readers and
//! writers for both, so a multi-million-instruction trace replays without ever being
//! materialised in memory.
//!
//! Both readers implement [`TraceSource`], so a file-backed trace drops into
//! [`athena_sim::Simulator::run`] — and into the experiment engine's file-backed jobs —
//! exactly like a generator does.
//!
//! ## The binary format (`.trace`)
//!
//! A versioned, hand-rolled container (the offline build has no serde/protobuf): a
//! fixed-size little-endian header followed by varint-packed records.
//!
//! ```text
//! offset  size  field
//! 0       8     magic: the ASCII bytes "ATHTRACE"
//! 8       2     format version, little-endian u16 (currently 1)
//! 10      6     reserved, must be zero
//! 16      8     record (instruction) count, little-endian u64
//! 24      8     load count, little-endian u64
//! 32      —     the records, varint-packed (see below)
//! ```
//!
//! Each record is a one-byte *tag* followed by LEB128 varints. The tag enumerates the
//! instruction kind together with its boolean payload, so the common records cost 2–4
//! bytes instead of the 24 bytes of the in-memory struct:
//!
//! ```text
//! tag  kind                      fields after the tag
//! 0    Alu                       pc-delta
//! 1    Load (independent)        pc-delta, addr-delta
//! 2    Load (dep_on_recent_load) pc-delta, addr-delta
//! 3    Store                     pc-delta, addr-delta
//! 4    Branch (not taken)        pc-delta
//! 5    Branch (taken)            pc-delta
//! ```
//!
//! `pc-delta` is the zigzag-encoded difference from the previous record's program counter
//! (starting from 0); `addr-delta` is the zigzag-encoded difference from the previous
//! memory address touched by a load or store (also starting from 0). Delta-plus-zigzag
//! makes the hot cases — sequential code, streaming and strided data — one-byte varints.
//!
//! **Versioning / compatibility policy:** the version field is bumped whenever the record
//! encoding or header layout changes; readers reject any version they do not know
//! ([`TraceIoError::UnsupportedVersion`]) rather than guessing. Reserved header bytes must
//! be written as zero and are ignored on read, so they are available for backwards
//! compatible extensions within a version. A reader also rejects a bad magic, a truncated
//! record stream (fewer records than the header promised), trailing bytes after the last
//! record, and a header load count that disagrees with the decoded stream — so neither
//! silent truncation nor a corrupted header can masquerade as a valid, shorter workload.
//!
//! ## The text format (`.trace.txt`)
//!
//! A line-oriented format for human inspection and interchange with external tools. The
//! first line is the signature `#athena-trace v1`; every subsequent non-empty line that
//! does not start with `#` is one record — an opcode mnemonic followed by hexadecimal
//! fields (no `0x` prefix):
//!
//! ```text
//! #athena-trace v1
//! a 400000            # ALU at pc 0x400000
//! l 400004 10000040   # independent load: pc, address
//! d 400008 10000080   # dependent load (address depends on the previous load's data)
//! s 40000c 100000c0   # store: pc, address
//! b 400010 t          # branch at pc, taken
//! b 400014 n          # branch at pc, not taken
//! ```
//!
//! The text format carries no counts header; [`convert`] between the formats is lossless
//! in both directions.
//!
//! ## Worked example
//!
//! Round-trip three records through the binary format in memory, then replay them:
//!
//! ```
//! use std::io::Cursor;
//! use athena_sim::{TraceRecord, TraceSource};
//! use athena_trace_io::{BinaryTraceReader, BinaryTraceWriter};
//!
//! let records = vec![
//!     TraceRecord::load(0x400004, 0x1000_0040, false),
//!     TraceRecord::alu(0x400008),
//!     TraceRecord::branch(0x40000c, true),
//! ];
//!
//! // Write: any `Write + Seek` target works (a file, or an in-memory buffer here).
//! let mut writer = BinaryTraceWriter::new(Cursor::new(Vec::new())).unwrap();
//! for r in &records {
//!     writer.write_record(*r).unwrap();
//! }
//! let bytes = writer.finish().unwrap().into_inner();
//!
//! // Read back, streaming: the reader holds O(1) state regardless of trace length.
//! let mut reader = BinaryTraceReader::new(Cursor::new(&bytes)).unwrap();
//! assert_eq!(reader.header().records, 3);
//! assert_eq!(reader.header().loads, 1);
//! let replayed: Vec<TraceRecord> = std::iter::from_fn(|| reader.next_record()).collect();
//! assert_eq!(replayed, records);
//! ```
//!
//! ## Error handling
//!
//! Construction and the `try_next` methods return [`TraceIoError`]. The [`TraceSource`]
//! impls (which have no error channel) panic on a corrupt or truncated stream instead of
//! silently ending the trace — inside the experiment engine that panic is caught per cell,
//! so one bad trace file fails exactly one cell of a batch, mirroring how a poisoned
//! generated cell behaves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
mod file;
mod stats;
mod text;
mod varint;

pub use binary::{BinaryTraceReader, BinaryTraceWriter, TraceHeader, HEADER_LEN, MAGIC, VERSION};
pub use error::TraceIoError;
pub use file::{
    convert, open_trace, record_trace, sniff_format, TraceFile, TraceFileWriter, TraceFormat,
};
pub use stats::TraceSummary;
pub use text::{TextTraceReader, TextTraceWriter, TEXT_SIGNATURE};

// Re-exported so downstream code can name the record types without also depending on
// `athena-sim` directly.
pub use athena_sim::{InstrKind, TraceRecord, TraceSource};
