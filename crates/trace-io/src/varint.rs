//! LEB128 varints and zigzag signed mapping — the primitives of the binary record
//! encoding.

use std::io::{Read, Write};

use crate::error::TraceIoError;

/// Maps a signed delta onto an unsigned value so that small magnitudes of either sign
/// become small varints: `0 → 0, -1 → 1, 1 → 2, -2 → 3, …`.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes `v` as an LEB128 varint (7 payload bits per byte, high bit = continuation).
pub(crate) fn write_varint(out: &mut impl Write, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint. `at` is the current record index, used to label corruption.
///
/// Returns `Ok(None)` on clean EOF *before the first byte* (so callers can distinguish
/// end-of-stream from mid-varint truncation, which is an error).
pub(crate) fn read_varint(input: &mut impl Read, at: u64) -> Result<Option<u64>, TraceIoError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match input.read(&mut byte)? {
            0 if first => return Ok(None),
            0 => return Err(TraceIoError::corrupt(at, "varint truncated mid-value")),
            _ => {}
        }
        first = false;
        if shift >= 64 {
            return Err(TraceIoError::corrupt(at, "varint longer than 64 bits"));
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x1234_5678] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varints_round_trip_and_small_values_are_one_byte() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            if v < 128 {
                assert_eq!(buf.len(), 1);
            }
            let got = read_varint(&mut buf.as_slice(), 0).unwrap();
            assert_eq!(got, Some(v));
        }
    }

    #[test]
    fn truncated_varint_is_an_error_but_clean_eof_is_none() {
        assert!(read_varint(&mut [].as_slice(), 7).unwrap().is_none());
        let err = read_varint(&mut [0x80u8].as_slice(), 7).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt { at: 7, .. }));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let overlong = [0x80u8; 11];
        let err = read_varint(&mut overlong.as_slice(), 0).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt { .. }));
    }
}
