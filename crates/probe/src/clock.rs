//! The profiler's timestamp source.
//!
//! Span timing is the dominant cost of a profiled run: a quick profiled sweep opens tens
//! of millions of spans, and each `Instant::now()` is a `clock_gettime` call costing
//! ~30 ns on the hosts we measure on — two per span. On x86_64 the timestamp counter is
//! invariant (constant-rate, ticking in all power states) on every CPU from the last
//! decade, and a raw `rdtsc` read is several times cheaper than the OS clock. Spans
//! therefore read raw ticks here and convert to nanoseconds once per span close, using a
//! ratio calibrated against the OS monotonic clock when profiling is first enabled.
//!
//! On other architectures this degrades to an `Instant`-based tick source whose ticks
//! *are* nanoseconds (conversion ratio 1), so the rest of the profiler is agnostic.
//!
//! This module holds the crate's only `unsafe` code: the `_rdtsc` intrinsic, which has no
//! safety preconditions (the instruction is architecturally guaranteed on x86_64).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Nanoseconds per tick in 32.32 fixed point; written once by [`calibrate`], zero until
/// then. [`ticks_to_nanos`] treats zero as ratio 1 so an uncalibrated reading degrades to
/// raw ticks instead of collapsing to zero.
static NANOS_PER_TICK_FP32: AtomicU64 = AtomicU64::new(0);

/// Reads the raw monotonic tick counter.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn now_ticks() -> u64 {
    // SAFETY: `_rdtsc` has no preconditions; the instruction exists on all x86_64 CPUs.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub(crate) fn now_ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Converts a tick delta to nanoseconds. The multiply is done in `u128`: engine-side
/// phases accumulate ticks across a whole run, and `run_seconds × tick_rate × ratio`
/// overflows `u64` well before a long sweep finishes.
#[inline]
pub(crate) fn ticks_to_nanos(ticks: u64) -> u64 {
    let fp = NANOS_PER_TICK_FP32.load(Ordering::Relaxed);
    if fp == 0 {
        return ticks;
    }
    ((u128::from(ticks) * u128::from(fp)) >> 32) as u64
}

/// Measures the tick rate against the OS monotonic clock. Runs once (subsequent calls
/// return immediately); `set_profiling(true)` calls this *before* raising the enabled
/// flag, so every armed span sees a calibrated ratio.
pub(crate) fn calibrate() {
    if NANOS_PER_TICK_FP32.load(Ordering::Relaxed) != 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        use std::time::Instant;
        // Spin ~2 ms: clock_gettime noise (≪ 1 µs) is then far below 0.1% of the window.
        let start = Instant::now();
        let t0 = now_ticks();
        while start.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let ticks = now_ticks().saturating_sub(t0).max(1);
        let nanos = start.elapsed().as_nanos();
        let fp = ((nanos << 32) / u128::from(ticks)).max(1) as u64;
        NANOS_PER_TICK_FP32.store(fp, Ordering::Relaxed);
    }
    #[cfg(not(target_arch = "x86_64"))]
    NANOS_PER_TICK_FP32.store(1u64 << 32, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_enough_to_time_a_sleep() {
        calibrate();
        let t0 = now_ticks();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = ticks_to_nanos(now_ticks().saturating_sub(t0));
        // Sleeps only ever oversleep; the lower bound is the real assertion, the upper
        // bound just catches a calibration that is off by orders of magnitude.
        assert!(elapsed >= 4_000_000, "5 ms sleep measured as {elapsed} ns");
        assert!(
            elapsed < 5_000_000_000,
            "5 ms sleep measured as {elapsed} ns"
        );
    }
}
