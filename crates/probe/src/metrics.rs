//! A dependency-free process-wide metrics registry: atomic [`Counter`]s, log2-bucketed
//! [`Histogram`]s and a per-worker utilization table, snapshotted in a deterministic
//! order.
//!
//! The registry is a fixed set of named instruments (no dynamic registration, no string
//! hashing on the hot path): the engine bumps them from wherever work happens — cell
//! dispatch, store fetch/persist, the distributed wire — and the CLIs embed one
//! [`MetricsRegistry::snapshot`] into their JSON reports at the end of a run. Like
//! everything else in this crate, **observation is not identity**: metrics are written,
//! never read back by the simulation, so the instrumented counters cannot change a
//! table byte. The *values* are wall-clock-ish (latencies, scheduling accidents), so
//! byte-comparisons treat a report's `metrics` object the way they treat `t_ms`.
//!
//! Snapshot determinism means *shape*, not values: counters and histograms appear in
//! declaration order and workers in ascending id order, so two snapshots of the same
//! registry always serialise field-for-field comparably.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of buckets in a [`Histogram`]: one per power of two of a `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A lock-free histogram over `u64` values with one bucket per power of two: bucket `b`
/// counts values in `[2^b, 2^(b+1))`, with `0` counted in bucket 0. Tracks count, sum,
/// min and max exactly; the buckets give the distribution's shape without storing
/// samples.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    const fn new() -> Self {
        // `AtomicU64::new(0)` is not `Copy`, so spell the array out via a const.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's numbers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(b, n)| {
                    let n = n.load(Ordering::Relaxed);
                    (n > 0).then_some((b as u32, n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// The non-empty buckets as `(log2_floor, count)` pairs in ascending bucket order:
    /// bucket `b` counted values in `[2^b, 2^(b+1))` (0 lands in bucket 0).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One distributed worker's accumulated utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerUtil {
    /// Cells the worker completed (merged results; a dead worker's unanswered cells
    /// count for its replacement).
    pub cells: u64,
    /// Nanoseconds the worker spent simulating those cells (sum of cell wall-clocks).
    pub busy_nanos: u64,
}

/// The process-wide registry: a fixed set of instruments the engine bumps while it runs.
///
/// Counters and histograms are plain public fields — call sites read as
/// `metrics().cells_simulated.incr()` — and [`MetricsRegistry::snapshot`] serialises
/// them in declaration order.
pub struct MetricsRegistry {
    /// Cells actually simulated (in-process or on a worker).
    pub cells_simulated: Counter,
    /// Cells served from the result store without simulation.
    pub cells_cached: Counter,
    /// Cells re-dispatched after a distributed worker died mid-shard.
    pub cell_retries: Counter,
    /// Wire frames written by this process (coordinator side: commands out).
    pub frames_sent: Counter,
    /// Wire frames read by this process (coordinator side: worker answers in).
    pub frames_received: Counter,
    /// Bytes written as wire frames, 13-byte headers included.
    pub frame_bytes_sent: Counter,
    /// Bytes read as wire frames, 13-byte headers included.
    pub frame_bytes_received: Counter,
    /// Per-cell simulation wall-clock, in nanoseconds.
    pub cell_wall_nanos: Histogram,
    /// Result-store batch fetch latency, in nanoseconds.
    pub store_fetch_nanos: Histogram,
    /// Result-store batch persist latency, in nanoseconds.
    pub store_persist_nanos: Histogram,
    workers: Mutex<BTreeMap<usize, WorkerUtil>>,
}

impl MetricsRegistry {
    /// A fresh, zeroed registry. Production code uses the process-wide one via
    /// [`metrics`]; isolated registries exist for tests that assert exact values.
    pub const fn new() -> Self {
        MetricsRegistry {
            cells_simulated: Counter::new(),
            cells_cached: Counter::new(),
            cell_retries: Counter::new(),
            frames_sent: Counter::new(),
            frames_received: Counter::new(),
            frame_bytes_sent: Counter::new(),
            frame_bytes_received: Counter::new(),
            cell_wall_nanos: Histogram::new(),
            store_fetch_nanos: Histogram::new(),
            store_persist_nanos: Histogram::new(),
            workers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Credits one completed cell (`busy_nanos` of simulation wall-clock) to a
    /// distributed worker's utilization row.
    pub fn record_worker_cell(&self, worker: usize, busy_nanos: u64) {
        let mut workers = self.workers.lock().expect("metrics mutex poisoned");
        let util = workers.entry(worker).or_default();
        util.cells += 1;
        util.busy_nanos = util.busy_nanos.saturating_add(busy_nanos);
    }

    /// Zeroes every instrument. Tests (and anything else wanting per-run rather than
    /// per-process numbers) call this between runs.
    pub fn reset(&self) {
        self.cells_simulated.reset();
        self.cells_cached.reset();
        self.cell_retries.reset();
        self.frames_sent.reset();
        self.frames_received.reset();
        self.frame_bytes_sent.reset();
        self.frame_bytes_received.reset();
        self.cell_wall_nanos.reset();
        self.store_fetch_nanos.reset();
        self.store_persist_nanos.reset();
        self.workers.lock().expect("metrics mutex poisoned").clear();
    }

    /// A point-in-time copy of every instrument, in deterministic order: counters in
    /// declaration order, histograms in declaration order, workers ascending by id.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("cells_simulated", self.cells_simulated.get()),
                ("cells_cached", self.cells_cached.get()),
                ("cell_retries", self.cell_retries.get()),
                ("frames_sent", self.frames_sent.get()),
                ("frames_received", self.frames_received.get()),
                ("frame_bytes_sent", self.frame_bytes_sent.get()),
                ("frame_bytes_received", self.frame_bytes_received.get()),
            ],
            histograms: vec![
                ("cell_wall_nanos", self.cell_wall_nanos.snapshot()),
                ("store_fetch_nanos", self.store_fetch_nanos.snapshot()),
                ("store_persist_nanos", self.store_persist_nanos.snapshot()),
            ],
            workers: self
                .workers
                .lock()
                .expect("metrics mutex poisoned")
                .iter()
                .map(|(&id, &util)| (id, util))
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic-order snapshot of the whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every histogram, in declaration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// `(worker id, utilization)` ascending by id; empty for in-process runs.
    pub workers: Vec<(usize, WorkerUtil)>,
}

static METRICS: MetricsRegistry = MetricsRegistry::new();

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run in parallel, so these tests use a
    // private local registry for value assertions and touch the global one only
    // additively.

    #[test]
    fn counters_accumulate_and_reset() {
        let registry = MetricsRegistry::new();
        registry.cells_simulated.incr();
        registry.cells_simulated.add(4);
        assert_eq!(registry.cells_simulated.get(), 5);
        registry.reset();
        assert_eq!(registry.cells_simulated.get(), 0);
    }

    #[test]
    fn histograms_bucket_by_log2_and_track_extremes() {
        let histogram = Histogram::new();
        for value in [0, 1, 2, 3, 1024, u64::MAX] {
            histogram.record(value);
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        // 0 and 1 share bucket 0; 2 and 3 land in bucket 1; 1024 in bucket 10;
        // u64::MAX in bucket 63.
        assert_eq!(snap.buckets, vec![(0, 2), (1, 2), (10, 1), (63, 1)]);
        assert!((snap.mean() - (snap.sum as f64 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histograms_snapshot_to_zeroes() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn snapshots_keep_declaration_and_worker_order() {
        let registry = MetricsRegistry::new();
        registry.record_worker_cell(2, 100);
        registry.record_worker_cell(0, 50);
        registry.record_worker_cell(2, 25);
        let snap = registry.snapshot();
        let counter_names: Vec<&str> = snap.counters.iter().map(|(n, _)| *n).collect();
        assert_eq!(counter_names[0], "cells_simulated");
        assert_eq!(counter_names.last(), Some(&"frame_bytes_received"));
        let histogram_names: Vec<&str> = snap.histograms.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            histogram_names,
            vec![
                "cell_wall_nanos",
                "store_fetch_nanos",
                "store_persist_nanos"
            ]
        );
        assert_eq!(
            snap.workers,
            vec![
                (
                    0,
                    WorkerUtil {
                        cells: 1,
                        busy_nanos: 50
                    }
                ),
                (
                    2,
                    WorkerUtil {
                        cells: 2,
                        busy_nanos: 125
                    }
                ),
            ]
        );
    }

    #[test]
    fn the_global_registry_is_reachable() {
        let before = metrics().frames_sent.get();
        metrics().frames_sent.incr();
        assert!(metrics().frames_sent.get() > before);
    }
}
