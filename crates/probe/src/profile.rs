//! The hot-path phase profiler: [`span`] guards that accumulate per-phase call counts
//! and *self*-time nanoseconds into a per-cell [`PhaseProfile`].
//!
//! Profiling is a process-wide switch ([`set_profiling`]); when off, [`span`] is one
//! relaxed atomic load and a branch. When on, the span stack lives implicitly in the
//! nested guards themselves: closing a span charges its elapsed time minus its children's
//! elapsed time to its phase, and reports its whole elapsed time to its parent. Self-times are therefore disjoint — the
//! phases partition the instrumented wall-clock, and because the engine wraps each cell's
//! entire execution in a [`Phase::Dispatch`] root span, a cell's phase totals sum back to
//! its wall-clock (uninstrumented remainder included, charged to `dispatch`).
//!
//! The engine brackets each cell with [`begin_cell`] / [`take_cell`] on the worker thread
//! that runs it, so a profile never mixes cells even when cells run in parallel.

use crate::clock;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide profiling switch. Off by default.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns the phase profiler on or off for the whole process. The CLIs flip this once at
/// startup (`--profile`); flipping it mid-cell is harmless but splits that cell's
/// profile.
pub fn set_profiling(enabled: bool) {
    if enabled {
        // Calibrate the tick clock before any span can arm itself.
        clock::calibrate();
    }
    PROFILING.store(enabled, Ordering::Relaxed);
}

/// Whether the phase profiler is currently on.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// An instrumented stage of the simulator or engine hot path.
///
/// Simulator phases nest under [`Phase::CoreStep`], which nests (with
/// [`Phase::TraceGen`]) under the per-cell [`Phase::Dispatch`] root; [`Phase::StoreFetch`]
/// and [`Phase::Merge`] are engine-side roots bracketing a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Synthesizing the next trace record (workload generators / trace readers).
    TraceGen = 0,
    /// One `CoreEngine::step`: retire bookkeeping and memory-access orchestration.
    CoreStep = 1,
    /// L1D/L2C/LLC set lookups and fills.
    CacheLookup = 2,
    /// Prefetcher training + degree-controlled prefetch issue.
    PrefetchIssue = 3,
    /// Off-chip predictor lookup and training.
    OcpPredict = 4,
    /// Coordinator / RL-agent epoch updates.
    CoordinatorUpdate = 5,
    /// DRAM model accesses (row-buffer bookkeeping), demand and writeback.
    Dram = 6,
    /// Engine-side: consulting the result store for a batch.
    StoreFetch = 7,
    /// Engine-side: a cell's whole execution on a worker (the per-cell root span; its
    /// self-time is the uninstrumented remainder of the cell).
    Dispatch = 8,
    /// Engine-side: merging finished cells back into submission order.
    Merge = 9,
}

/// Number of phases (array sizes in [`PhaseProfile`]).
pub const PHASE_COUNT: usize = 10;

/// All phases, in index order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::TraceGen,
    Phase::CoreStep,
    Phase::CacheLookup,
    Phase::PrefetchIssue,
    Phase::OcpPredict,
    Phase::CoordinatorUpdate,
    Phase::Dram,
    Phase::StoreFetch,
    Phase::Dispatch,
    Phase::Merge,
];

impl Phase {
    /// The phase's snake_case name, used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TraceGen => "trace_gen",
            Phase::CoreStep => "core_step",
            Phase::CacheLookup => "cache_lookup",
            Phase::PrefetchIssue => "prefetch_issue",
            Phase::OcpPredict => "ocp_predict",
            Phase::CoordinatorUpdate => "coordinator_update",
            Phase::Dram => "dram",
            Phase::StoreFetch => "store_fetch",
            Phase::Dispatch => "dispatch",
            Phase::Merge => "merge",
        }
    }

    /// The phase's static position in the span hierarchy, as a semicolon-separated
    /// collapsed-stack frame path (the format flamegraph tools consume).
    pub fn stack_path(self) -> &'static str {
        match self {
            Phase::TraceGen => "dispatch;trace_gen",
            Phase::CoreStep => "dispatch;core_step",
            Phase::CacheLookup => "dispatch;core_step;cache_lookup",
            Phase::PrefetchIssue => "dispatch;core_step;prefetch_issue",
            Phase::OcpPredict => "dispatch;core_step;ocp_predict",
            Phase::CoordinatorUpdate => "dispatch;core_step;coordinator_update",
            Phase::Dram => "dispatch;core_step;dram",
            Phase::StoreFetch => "store_fetch",
            Phase::Dispatch => "dispatch",
            Phase::Merge => "merge",
        }
    }

    /// Parses a [`Phase::name`] back into the phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        ALL_PHASES.into_iter().find(|p| p.name() == name)
    }
}

/// One phase's aggregated numbers inside a [`PhaseProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Spans closed for this phase.
    pub calls: u64,
    /// Self-time (elapsed minus children's elapsed) accumulated, in nanoseconds.
    pub nanos: u64,
}

/// Per-phase call counts and disjoint self-time nanoseconds for one cell (or any other
/// bracketed region), mergeable across cells into a sweep-wide aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    calls: [u64; PHASE_COUNT],
    nanos: [u64; PHASE_COUNT],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one closed span: `calls += 1`, `nanos += self_nanos`.
    pub fn record(&mut self, phase: Phase, self_nanos: u64) {
        self.calls[phase as usize] += 1;
        self.nanos[phase as usize] = self.nanos[phase as usize].saturating_add(self_nanos);
    }

    /// Adds raw totals for one phase (`calls` spans, `nanos` self-time). This is the
    /// deserialisation counterpart of [`PhaseProfile::record`]: a profile that crossed a
    /// process boundary as JSON is rebuilt phase by phase from its serialised totals.
    pub fn add(&mut self, phase: Phase, calls: u64, nanos: u64) {
        self.calls[phase as usize] = self.calls[phase as usize].saturating_add(calls);
        self.nanos[phase as usize] = self.nanos[phase as usize].saturating_add(nanos);
    }

    /// Adds another profile into this one (sweep-wide aggregation).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..PHASE_COUNT {
            self.calls[i] += other.calls[i];
            self.nanos[i] = self.nanos[i].saturating_add(other.nanos[i]);
        }
    }

    /// Call count for one phase.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Self-time nanoseconds for one phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Sum of all phases' self-times. Because self-times are disjoint and the engine
    /// wraps each cell in a `dispatch` root span, this approximates the cell's wall-clock.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0)
    }

    /// The non-empty phases in index (hierarchy) order.
    pub fn stats(&self) -> impl Iterator<Item = PhaseStat> + '_ {
        ALL_PHASES
            .into_iter()
            .filter(|&p| self.calls[p as usize] > 0)
            .map(|p| PhaseStat {
                phase: p,
                calls: self.calls[p as usize],
                nanos: self.nanos[p as usize],
            })
    }
}

/// A thread's profiler state.
///
/// There is no explicit span stack: each open [`SpanGuard`] carries its parent's
/// child-nanos accumulator, so the stack lives implicitly in the guards on the caller's
/// call stack. `open_child_nanos` is always the accumulator of the *innermost* open span.
/// Everything is `Cell`-based — opening and closing a span is a handful of plain loads
/// and stores plus one clock read each, with no `RefCell` bookkeeping and no allocation.
struct ThreadProfiler {
    /// Bumped by every cell-bracketing operation ([`begin_cell`] / [`take_cell`] /
    /// [`swap_cell`]). A guard records only if the generation it captured is still
    /// current, so a span left open across a cell boundary discards itself instead of
    /// charging time to the wrong cell (the role the old explicit-stack `clear()` played).
    generation: Cell<u64>,
    /// Elapsed (not self) nanoseconds of closed children of the innermost open span.
    open_child_nanos: Cell<u64>,
    calls: [Cell<u64>; PHASE_COUNT],
    nanos: [Cell<u64>; PHASE_COUNT],
}

impl ThreadProfiler {
    const fn new() -> Self {
        // `Cell::new(0)` is not `Copy`, so spell the arrays out via a const.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Cell<u64> = Cell::new(0);
        Self {
            generation: Cell::new(0),
            open_child_nanos: Cell::new(0),
            calls: [ZERO; PHASE_COUNT],
            nanos: [ZERO; PHASE_COUNT],
        }
    }

    /// Starts a fresh accrual: zeroes the counters (loading `next`'s contents instead)
    /// and invalidates any still-open guards.
    fn load(&self, next: &PhaseProfile) {
        self.generation.set(self.generation.get() + 1);
        self.open_child_nanos.set(0);
        for i in 0..PHASE_COUNT {
            self.calls[i].set(next.calls[i]);
            self.nanos[i].set(next.nanos[i]);
        }
    }

    /// Snapshot of the accumulated profile.
    fn snapshot(&self) -> PhaseProfile {
        let mut out = PhaseProfile::new();
        for i in 0..PHASE_COUNT {
            out.calls[i] = self.calls[i].get();
            out.nanos[i] = self.nanos[i].get();
        }
        out
    }
}

thread_local! {
    static PROFILER: ThreadProfiler = const { ThreadProfiler::new() };
}

/// Resets this thread's profiler for a fresh cell. The engine calls this on the worker
/// thread immediately before running a cell, so a reused thread (or one that unwound out
/// of a panicking cell) never leaks spans into the next cell.
pub fn begin_cell() {
    if !profiling_enabled() {
        return;
    }
    PROFILER.with(|p| p.load(&PhaseProfile::new()));
}

/// Takes this thread's accumulated profile, leaving it empty. Returns `None` when
/// profiling is off or nothing was recorded.
pub fn take_cell() -> Option<PhaseProfile> {
    if !profiling_enabled() {
        return None;
    }
    PROFILER.with(|p| {
        let profile = p.snapshot();
        p.load(&PhaseProfile::new());
        (!profile.is_empty()).then_some(profile)
    })
}

/// Replaces this thread's accumulated profile with `next` (invalidating any open spans)
/// and returns the previous one. The engine's worker closure uses this to bracket a cell
/// without destroying the caller's own accrual on the serial (`jobs == 1`) path, where
/// cells run on the same thread as the engine's store-fetch/merge spans. When profiling
/// is off this touches nothing and returns `next` back.
pub fn swap_cell(next: PhaseProfile) -> PhaseProfile {
    if !profiling_enabled() {
        return next;
    }
    PROFILER.with(|p| {
        let previous = p.snapshot();
        p.load(&next);
        previous
    })
}

/// Opens a span for `phase` on the current thread. The returned guard closes the span
/// when dropped (including during unwinding). When profiling is off this is one relaxed
/// atomic load and returns an unarmed guard.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !profiling_enabled() {
        return SpanGuard { inner: None };
    }
    let (generation, parent_child_nanos) =
        PROFILER.with(|p| (p.generation.get(), p.open_child_nanos.replace(0)));
    SpanGuard {
        inner: Some(ArmedSpan {
            phase,
            generation,
            parent_child_nanos,
            start_ticks: clock::now_ticks(),
        }),
    }
}

struct ArmedSpan {
    phase: Phase,
    /// Generation captured at open; a cell-bracketing operation in between invalidates
    /// the span (it then records nothing on close).
    generation: u64,
    /// The parent span's child-nanos accumulator, saved while this span is innermost.
    parent_child_nanos: u64,
    start_ticks: u64,
}

/// Guard returned by [`span`]; closing (dropping) it charges the span's self-time to its
/// phase and its whole elapsed time to its parent span.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing"]
pub struct SpanGuard {
    inner: Option<ArmedSpan>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let Some(span) = self.inner.take() else {
            return;
        };
        let elapsed = clock::ticks_to_nanos(clock::now_ticks().saturating_sub(span.start_ticks));
        PROFILER.with(|p| {
            if p.generation.get() != span.generation {
                return;
            }
            let i = span.phase as usize;
            let self_nanos = elapsed.saturating_sub(p.open_child_nanos.get());
            p.calls[i].set(p.calls[i].get() + 1);
            p.nanos[i].set(p.nanos[i].get().saturating_add(self_nanos));
            p.open_child_nanos
                .set(span.parent_child_nanos.saturating_add(elapsed));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// The profiling switch is process-wide, so the tests that flip it share one lock.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn spin_for(nanos: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < nanos {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = GATE.lock().unwrap();
        set_profiling(false);
        begin_cell();
        {
            let _s = span(Phase::CoreStep);
            spin_for(50_000);
        }
        assert_eq!(take_cell(), None);
    }

    #[test]
    fn nested_spans_accumulate_disjoint_self_time() {
        let _gate = GATE.lock().unwrap();
        set_profiling(true);
        begin_cell();
        {
            let _root = span(Phase::Dispatch);
            {
                let _step = span(Phase::CoreStep);
                {
                    let _lookup = span(Phase::CacheLookup);
                    spin_for(200_000);
                }
                spin_for(200_000);
            }
        }
        let profile = take_cell().expect("profile recorded");
        set_profiling(false);
        assert_eq!(profile.calls(Phase::Dispatch), 1);
        assert_eq!(profile.calls(Phase::CoreStep), 1);
        assert_eq!(profile.calls(Phase::CacheLookup), 1);
        // Each phase holds only its own self-time: the child's spin must not be
        // double-counted in the parent.
        assert!(profile.nanos(Phase::CacheLookup) >= 200_000);
        assert!(profile.nanos(Phase::CoreStep) >= 200_000);
        assert!(profile.nanos(Phase::CoreStep) < 400_000 + 10_000_000);
        let total = profile.total_nanos();
        let sum: u64 = ALL_PHASES.iter().map(|&p| profile.nanos(p)).sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn unwinding_closes_spans() {
        let _gate = GATE.lock().unwrap();
        set_profiling(true);
        begin_cell();
        let result = std::panic::catch_unwind(|| {
            let _root = span(Phase::Dispatch);
            let _step = span(Phase::CoreStep);
            panic!("cell died");
        });
        assert!(result.is_err());
        let profile = take_cell().expect("spans closed during unwind");
        set_profiling(false);
        assert_eq!(profile.calls(Phase::Dispatch), 1);
        assert_eq!(profile.calls(Phase::CoreStep), 1);
    }

    #[test]
    fn merge_sums_counts_and_nanos() {
        let mut a = PhaseProfile::new();
        a.record(Phase::Dram, 10);
        a.record(Phase::Dram, 5);
        let mut b = PhaseProfile::new();
        b.record(Phase::Dram, 7);
        b.record(Phase::Merge, 3);
        a.merge(&b);
        assert_eq!(a.calls(Phase::Dram), 3);
        assert_eq!(a.nanos(Phase::Dram), 22);
        assert_eq!(a.calls(Phase::Merge), 1);
        assert_eq!(a.total_nanos(), 25);
        let stats: Vec<PhaseStat> = a.stats().collect();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].phase, Phase::Dram);
        assert_eq!(stats[1].phase, Phase::Merge);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in ALL_PHASES {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
            assert!(phase.stack_path().ends_with(phase.name()));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
