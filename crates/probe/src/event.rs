//! The structured event stream: lifecycle [`Event`]s and the JSONL [`ProbeSink`] that
//! writes them.
//!
//! One event is one line of hand-rolled JSON. Every line leads with the schema id
//! ([`EVENTS_SCHEMA_ID`]) and the event kind, followed by the event's deterministic
//! fields (experiment, label, seed, counts — everything derived from the jobs
//! themselves), followed by the wall-clock fields: `wall_ms` (the cell's simulation
//! wall-clock, on `cell_finished` only) and `t_ms` (milliseconds since the sink was
//! created, on every line). The engine emits all per-cell events on the batch's calling
//! thread at deterministic merge points — never live from worker threads — so two logs
//! of the same batch at different `--jobs` values are byte-identical once the fields in
//! [`WALL_CLOCK_FIELDS`] are stripped (`tests/probe.rs` locks this in).
//!
//! Distributed workers run their cells under an in-memory sink ([`ProbeSink::buffered`])
//! and forward the buffered lines to the coordinator over the wire; the coordinator
//! replays them ([`ProbeSink::emit_rendered`]) into the real log at the same merge
//! points, stamped with the originating worker's identity ([`CellOrigin`]). Stripping
//! [`WORKER_ATTRIBUTION_FIELDS`] too — and dropping the [`TOPOLOGY_EVENT_KINDS`] lines —
//! extends the byte-stability guarantee across worker counts, in-process included.

use crate::profile::PhaseProfile;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The schema id carried by every event line. `athena-engine`'s `report::EVENTS_SCHEMA`
/// renders the same id from its `Schema` constant; a unit test there asserts agreement
/// (this crate sits below the engine and cannot share the constant directly).
pub const EVENTS_SCHEMA_ID: &str = "athena-events-v1";

/// The per-line fields that carry wall-clock readings (or equally host-dependent values,
/// like a worker's OS pid or a phase profile's nanosecond totals) and nothing else.
/// Stripping these from every line of two logs of the same batch must leave
/// byte-identical documents, whatever the worker counts were.
pub const WALL_CLOCK_FIELDS: &[&str] = &["t_ms", "wall_ms", "pid", "profile"];

/// The per-line fields that attribute a cell event to the distributed worker that ran it.
/// Which worker ran which cell is a scheduling accident (it depends on worker count and
/// on recovery), so determinism comparisons across worker counts strip these alongside
/// [`WALL_CLOCK_FIELDS`].
pub const WORKER_ATTRIBUTION_FIELDS: &[&str] = &["worker", "from_worker", "to_worker"];

/// Event kinds that describe the worker topology of a distributed run rather than the
/// batch itself. Their *count* varies with worker count and fault recovery (a 4-worker
/// run joins four workers, a 1-worker run one), so cross-worker-count comparisons drop
/// these lines entirely instead of stripping fields.
pub const TOPOLOGY_EVENT_KINDS: &[&str] = &[
    "worker_joined",
    "shard_dispatched",
    "worker_died",
    "cell_reassigned",
];

/// Identity of the distributed worker process that ran a cell: the coordinator-assigned
/// worker id plus the worker's OS pid. Attached to cell lifecycle events when the cell
/// ran remotely; `None` means the cell ran in-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellOrigin {
    /// Coordinator-assigned worker id (stable across the batch; respawned workers get
    /// fresh ids).
    pub worker: usize,
    /// The worker's OS process id (host-dependent, stripped by determinism comparisons).
    pub pid: u64,
}

/// One lifecycle event of an engine batch.
///
/// Per-cell events are emitted in submission order on the calling thread: a cached cell
/// produces `CellStoreHit`; a simulated cell produces `CellScheduled` before dispatch and
/// `CellStarted` + `CellFinished` (or `CellPanicked`) at merge.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A batch of cells entered [`Engine::run`](../athena_engine/struct.Engine.html).
    BatchOpened {
        /// Experiment of the batch's first cell (batches are per-experiment in practice).
        experiment: String,
        /// Number of cells submitted.
        cells: usize,
    },
    /// The attached result store was consulted for the whole batch.
    StoreFetch {
        /// Cells served from the store.
        hits: usize,
        /// Cells that must be simulated.
        misses: usize,
    },
    /// One cell's result was served from the result store (no simulation).
    CellStoreHit {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label (`workload/coordinator/config`).
        label: String,
        /// The cell's derived seed.
        seed: u64,
    },
    /// One cell missed the store (or no store is attached) and was queued for simulation.
    CellScheduled {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label.
        label: String,
        /// The cell's derived seed.
        seed: u64,
    },
    /// One simulated cell's execution is being merged (paired with the following
    /// `CellFinished`/`CellPanicked`).
    CellStarted {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label.
        label: String,
        /// The distributed worker that ran the cell; `None` in-process.
        origin: Option<CellOrigin>,
    },
    /// One simulated cell completed.
    CellFinished {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label.
        label: String,
        /// Wall-clock spent simulating the cell, in milliseconds (a wall-clock field;
        /// stripped by determinism comparisons).
        wall_ms: f64,
        /// The cell's phase profile when `--profile` is on (nanosecond wall-clock
        /// readings; stripped by determinism comparisons like `wall_ms`).
        profile: Option<PhaseProfile>,
        /// The distributed worker that ran the cell; `None` in-process.
        origin: Option<CellOrigin>,
    },
    /// One simulated cell panicked; the rest of the batch completed normally.
    CellPanicked {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label.
        label: String,
        /// The caught panic message.
        error: String,
        /// The distributed worker that ran the cell; `None` in-process.
        origin: Option<CellOrigin>,
    },
    /// Newly simulated successes were persisted into the result store.
    StorePersist {
        /// Number of cells persisted.
        cells: usize,
    },
    /// A report file was written by a CLI (tables, JSON documents, snapshots).
    ReportWritten {
        /// Path of the written file.
        path: String,
        /// Size of the written contents in bytes.
        bytes: usize,
    },
    /// A distributed worker process was spawned by the coordinator.
    WorkerJoined {
        /// Coordinator-assigned worker id (stable across the batch; respawned workers
        /// get fresh ids).
        worker: usize,
        /// The worker's OS process id (a wall-clock-like value: real but not
        /// deterministic — comparisons should treat it like a timestamp).
        pid: u64,
    },
    /// A shard of cells was sent to a distributed worker.
    ShardDispatched {
        /// The receiving worker's id.
        worker: usize,
        /// Number of cells in the shard.
        cells: usize,
        /// Payload size of the shard frame in bytes (header excluded).
        bytes: usize,
    },
    /// A distributed worker died (EOF or truncated frame) with cells unanswered.
    WorkerDied {
        /// The dead worker's id.
        worker: usize,
        /// Number of cells it still owed.
        outstanding: usize,
        /// What the coordinator observed on the stream.
        error: String,
    },
    /// A cell lost to a worker death was reassigned to a replacement worker.
    CellReassigned {
        /// The cell's experiment.
        experiment: String,
        /// The cell's label.
        label: String,
        /// Worker that died owning the cell.
        from_worker: usize,
        /// Replacement worker now owning the cell.
        to_worker: usize,
    },
}

impl Event {
    /// The event's kind tag, as written into the `"kind"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::BatchOpened { .. } => "batch_opened",
            Event::StoreFetch { .. } => "store_fetch",
            Event::CellStoreHit { .. } => "cell_store_hit",
            Event::CellScheduled { .. } => "cell_scheduled",
            Event::CellStarted { .. } => "cell_started",
            Event::CellFinished { .. } => "cell_finished",
            Event::CellPanicked { .. } => "cell_panicked",
            Event::StorePersist { .. } => "store_persist",
            Event::ReportWritten { .. } => "report_written",
            Event::WorkerJoined { .. } => "worker_joined",
            Event::ShardDispatched { .. } => "shard_dispatched",
            Event::WorkerDied { .. } => "worker_died",
            Event::CellReassigned { .. } => "cell_reassigned",
        }
    }

    /// Renders the line without the trailing `t_ms` field (the sink appends it).
    fn render_deterministic(&self, line: &mut String) {
        let _ = write!(line, "{{\"schema\":\"{EVENTS_SCHEMA_ID}\"");
        let _ = write!(line, ",\"kind\":\"{}\"", self.kind());
        let mut str_field = |name: &str, value: &str| {
            let _ = write!(line, ",\"{name}\":\"{}\"", escape_json(value));
        };
        match self {
            Event::BatchOpened { experiment, cells } => {
                str_field("experiment", experiment);
                let _ = write!(line, ",\"cells\":{cells}");
            }
            Event::StoreFetch { hits, misses } => {
                let _ = write!(line, ",\"hits\":{hits},\"misses\":{misses}");
            }
            Event::CellStoreHit {
                experiment,
                label,
                seed,
            }
            | Event::CellScheduled {
                experiment,
                label,
                seed,
            } => {
                str_field("experiment", experiment);
                str_field("label", label);
                let _ = write!(line, ",\"seed\":\"{seed:#018x}\"");
            }
            Event::CellStarted {
                experiment,
                label,
                origin,
            } => {
                str_field("experiment", experiment);
                str_field("label", label);
                render_origin(line, *origin);
            }
            Event::CellFinished {
                experiment,
                label,
                wall_ms,
                profile,
                origin,
            } => {
                str_field("experiment", experiment);
                str_field("label", label);
                let _ = write!(line, ",\"wall_ms\":{wall_ms}");
                if let Some(profile) = profile {
                    line.push_str(",\"profile\":");
                    render_profile(line, profile);
                }
                render_origin(line, *origin);
            }
            Event::CellPanicked {
                experiment,
                label,
                error,
                origin,
            } => {
                str_field("experiment", experiment);
                str_field("label", label);
                str_field("error", error);
                render_origin(line, *origin);
            }
            Event::StorePersist { cells } => {
                let _ = write!(line, ",\"cells\":{cells}");
            }
            Event::ReportWritten { path, bytes } => {
                str_field("path", path);
                let _ = write!(line, ",\"bytes\":{bytes}");
            }
            Event::WorkerJoined { worker, pid } => {
                let _ = write!(line, ",\"worker\":{worker},\"pid\":{pid}");
            }
            Event::ShardDispatched {
                worker,
                cells,
                bytes,
            } => {
                let _ = write!(
                    line,
                    ",\"worker\":{worker},\"cells\":{cells},\"bytes\":{bytes}"
                );
            }
            Event::WorkerDied {
                worker,
                outstanding,
                error,
            } => {
                str_field("error", error);
                let _ = write!(line, ",\"worker\":{worker},\"outstanding\":{outstanding}");
            }
            Event::CellReassigned {
                experiment,
                label,
                from_worker,
                to_worker,
            } => {
                str_field("experiment", experiment);
                str_field("label", label);
                let _ = write!(
                    line,
                    ",\"from_worker\":{from_worker},\"to_worker\":{to_worker}"
                );
            }
        }
    }
}

/// Renders the worker-attribution tail of a cell event: `,"worker":N,"pid":P`, or
/// nothing for an in-process cell. `worker` is deterministic-but-scheduling-dependent
/// ([`WORKER_ATTRIBUTION_FIELDS`]); `pid` is host state ([`WALL_CLOCK_FIELDS`]).
fn render_origin(line: &mut String, origin: Option<CellOrigin>) {
    if let Some(CellOrigin { worker, pid }) = origin {
        let _ = write!(line, ",\"worker\":{worker},\"pid\":{pid}");
    }
}

/// Renders a phase profile as `{"phases":{<name>:{"calls":C,"nanos":N},…},"total_nanos":T}`
/// — non-empty phases in hierarchy order, the same shape the engine's report module uses
/// for profiles embedded in JSON documents.
fn render_profile(line: &mut String, profile: &PhaseProfile) {
    line.push_str("{\"phases\":{");
    for (i, stat) in profile.stats().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "\"{}\":{{\"calls\":{},\"nanos\":{}}}",
            stat.phase.name(),
            stat.calls,
            stat.nanos
        );
    }
    let _ = write!(line, "}},\"total_nanos\":{}}}", profile.total_nanos());
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Where a sink's lines go: an open log file, or an in-memory buffer that a distributed
/// worker drains into `EVENT` frames.
enum SinkTarget {
    File(BufWriter<File>),
    Memory(Vec<u8>),
}

struct SinkInner {
    target: SinkTarget,
}

/// A shared, thread-safe JSONL event writer. Cloning shares the same open file and the
/// same epoch; lines from all clones interleave whole (each line is written and flushed
/// under one lock acquisition).
///
/// Equality compares the destination path only — two handles on the same path are the
/// same sink for option-comparison purposes (mirroring the result store's handle), which
/// keeps the run-option types `Eq`.
#[derive(Clone)]
pub struct ProbeSink {
    path: PathBuf,
    epoch: Instant,
    inner: Arc<Mutex<SinkInner>>,
}

impl std::fmt::Debug for ProbeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeSink")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl PartialEq for ProbeSink {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
    }
}

impl Eq for ProbeSink {}

impl ProbeSink {
    /// Creates (truncating) the event log at `path`. Parent directories are created as
    /// needed.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Self {
            path,
            epoch: Instant::now(),
            inner: Arc::new(Mutex::new(SinkInner {
                target: SinkTarget::File(BufWriter::new(file)),
            })),
        })
    }

    /// Creates an in-memory sink. A distributed worker runs its cells under one of
    /// these and drains the buffered lines with [`ProbeSink::take_lines`] to forward
    /// them to the coordinator over the wire; nothing touches the filesystem.
    pub fn buffered() -> Self {
        Self {
            path: PathBuf::from("<memory>"),
            epoch: Instant::now(),
            inner: Arc::new(Mutex::new(SinkInner {
                target: SinkTarget::Memory(Vec::new()),
            })),
        }
    }

    /// Takes the complete lines buffered so far, leaving the sink empty.
    ///
    /// # Panics
    ///
    /// Panics on a file-backed sink — a file sink's lines are already on disk and
    /// cannot be recalled.
    pub fn take_lines(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect("probe sink mutex poisoned");
        match &mut inner.target {
            SinkTarget::File(_) => panic!("take_lines on a file-backed probe sink"),
            SinkTarget::Memory(buffer) => {
                let drained = std::mem::take(buffer);
                String::from_utf8(drained)
                    .expect("event lines are UTF-8")
                    .lines()
                    .map(str::to_owned)
                    .collect()
            }
        }
    }

    /// The log file this sink writes to (`<memory>` for a buffered sink).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line and flushes it, so a killed run's log is complete up to the
    /// last event.
    ///
    /// # Panics
    ///
    /// Panics when the write fails (disk full, file gone) — an event log that silently
    /// drops records would lie about the run it documents.
    pub fn emit(&self, event: &Event) {
        let mut line = String::with_capacity(160);
        event.render_deterministic(&mut line);
        self.write_line(line);
    }

    /// Appends one pre-rendered line whose deterministic fields are already final —
    /// `fragment` is everything between the opening `{` and the sink's trailing
    /// `,"t_ms":…}`. The distributed coordinator uses this to replay a worker's
    /// forwarded cell events byte-faithfully (same renderer, same float formatting)
    /// while restamping `t_ms` against this sink's epoch.
    pub fn emit_rendered(&self, fragment: &str) {
        let mut line = String::with_capacity(fragment.len() + 32);
        line.push('{');
        line.push_str(fragment);
        self.write_line(line);
    }

    fn write_line(&self, mut line: String) {
        let t_ms = self.epoch.elapsed().as_secs_f64() * 1e3;
        let _ = write!(line, ",\"t_ms\":{t_ms}}}");
        line.push('\n');
        let mut inner = self.inner.lock().expect("probe sink mutex poisoned");
        match &mut inner.target {
            SinkTarget::File(writer) => writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.flush())
                .unwrap_or_else(|e| panic!("event log {}: write failed: {e}", self.path.display())),
            SinkTarget::Memory(buffer) => buffer.extend_from_slice(line.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("athena-probe-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn lines_carry_schema_kind_and_fields() {
        let path = temp_log("basic");
        let sink = ProbeSink::create(&path).unwrap();
        sink.emit(&Event::BatchOpened {
            experiment: "fig7".into(),
            cells: 3,
        });
        sink.emit(&Event::CellFinished {
            experiment: "fig7".into(),
            label: "w/athena/<cfg>".into(),
            wall_ms: 1.25,
            profile: None,
            origin: None,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(&format!(
            "{{\"schema\":\"{EVENTS_SCHEMA_ID}\",\"kind\":\"batch_opened\",\"experiment\":\"fig7\",\"cells\":3,\"t_ms\":"
        )));
        assert!(lines[1].contains("\"kind\":\"cell_finished\""));
        assert!(lines[1].contains("\"wall_ms\":1.25"));
        assert!(
            !lines[1].contains("\"worker\""),
            "no origin, no attribution"
        );
        assert!(lines[1].ends_with('}'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn origins_and_profiles_render_on_cell_events() {
        use crate::profile::Phase;

        let sink = ProbeSink::buffered();
        let mut profile = PhaseProfile::new();
        profile.record(Phase::Dispatch, 1_500);
        profile.record(Phase::CoreStep, 500);
        sink.emit(&Event::CellFinished {
            experiment: "fig7".into(),
            label: "w/athena/<cfg>".into(),
            wall_ms: 2.0,
            profile: Some(profile),
            origin: Some(CellOrigin { worker: 3, pid: 42 }),
        });
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains(
            "\"profile\":{\"phases\":{\"core_step\":{\"calls\":1,\"nanos\":500},\
             \"dispatch\":{\"calls\":1,\"nanos\":1500}},\"total_nanos\":2000}"
        ));
        assert!(lines[0].contains(",\"worker\":3,\"pid\":42,\"t_ms\":"));
        // Drained means drained: the next take sees nothing.
        assert!(sink.take_lines().is_empty());
    }

    #[test]
    fn buffered_sinks_hold_whole_lines_in_memory() {
        let sink = ProbeSink::buffered();
        sink.emit(&Event::StorePersist { cells: 7 });
        sink.emit_rendered("\"schema\":\"x\",\"kind\":\"cell_started\",\"worker\":0,\"pid\":9");
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"cells\":7"));
        assert!(lines[1].starts_with("{\"schema\":\"x\""));
        assert!(lines[1].contains("\"pid\":9,\"t_ms\":"));
        assert_eq!(sink.path(), Path::new("<memory>"));
    }

    #[test]
    fn strings_are_escaped() {
        let path = temp_log("escape");
        let sink = ProbeSink::create(&path).unwrap();
        sink.emit(&Event::CellPanicked {
            experiment: "t".into(),
            label: "a\"b\\c".into(),
            error: "line1\nline2\ttab".into(),
            origin: None,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("a\\\"b\\\\c"));
        assert!(text.contains("line1\\nline2\\ttab"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clones_share_the_file_and_compare_by_path() {
        let path = temp_log("clone");
        let sink = ProbeSink::create(&path).unwrap();
        let clone = sink.clone();
        sink.emit(&Event::StorePersist { cells: 1 });
        clone.emit(&Event::StorePersist { cells: 2 });
        assert_eq!(sink, clone);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seeds_render_as_full_width_hex() {
        let path = temp_log("hex");
        let sink = ProbeSink::create(&path).unwrap();
        sink.emit(&Event::CellScheduled {
            experiment: "t".into(),
            label: "l".into(),
            seed: 0xff,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"seed\":\"0x00000000000000ff\""));
        std::fs::remove_file(&path).unwrap();
    }
}
