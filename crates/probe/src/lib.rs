//! # athena-probe
//!
//! Zero-cost-when-off observability for the Athena reproduction, in three parts:
//!
//! * **Structured event stream** ([`event`]) — the experiment engine emits lifecycle
//!   events (batch opened, cell scheduled / store-hit / started / finished / panicked,
//!   store fetch/persist, report written) as hand-rolled JSONL records through a shared
//!   [`ProbeSink`]. Every record declares the schema id [`EVENTS_SCHEMA_ID`]; wall-clock
//!   readings live only in the dedicated `t_ms` / `wall_ms` fields, so the remaining
//!   (deterministic) fields of a log are byte-stable across worker counts.
//! * **Hot-path phase profiler** ([`profile`]) — lightweight span instrumentation over
//!   the simulator's stages (trace generation, core stepping, cache lookups, prefetch
//!   issue, OCP prediction, coordinator updates, DRAM accesses) and the engine's stages
//!   (store fetch, dispatch, merge). Spans accumulate per-phase call counts and
//!   *self*-time nanoseconds into a per-cell [`PhaseProfile`]; because every span
//!   subtracts its children's time, the phases partition the cell's wall-clock and their
//!   totals sum back to it.
//! * **Metrics registry** ([`mod@metrics`]) — a fixed set of process-wide atomic counters,
//!   log2-bucketed histograms and a per-worker utilization table, bumped by the engine
//!   (cell wall-clock, store fetch/persist latency, wire frame bytes, retries) and
//!   snapshotted in deterministic order into the CLIs' JSON reports.
//!
//! **Observation is not identity.** Nothing in this crate feeds back into a simulation:
//! events and profiles are derived from results, never consulted by them, so enabling
//! either must not change a single table byte (the engine's tests lock this in). The
//! disabled path compiles to near-nothing — one relaxed atomic load and a branch per
//! span site, and a no-op sink when no `--events` file is attached.
//!
//! This crate sits below `athena-sim` and `athena-engine` in the dependency order and
//! therefore depends on nothing; the JSONL writer is hand-rolled here, and the engine's
//! `report::EVENTS_SCHEMA` constant asserts agreement with [`EVENTS_SCHEMA_ID`] by test.

// `deny` rather than `forbid`: the clock module holds the crate's single, documented
// exemption (the `rdtsc` intrinsic backing span timestamps).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod event;
pub mod metrics;
pub mod profile;

pub use event::{
    CellOrigin, Event, ProbeSink, EVENTS_SCHEMA_ID, TOPOLOGY_EVENT_KINDS, WALL_CLOCK_FIELDS,
    WORKER_ATTRIBUTION_FIELDS,
};
pub use metrics::{
    metrics, Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, WorkerUtil,
};
pub use profile::{
    begin_cell, profiling_enabled, set_profiling, span, swap_cell, take_cell, Phase, PhaseProfile,
    PhaseStat, SpanGuard, ALL_PHASES, PHASE_COUNT,
};
