//! Tuning objectives: how a candidate's per-workload runs are scored against the
//! prefetchers-only baseline runs.
//!
//! Every objective builds on the geomean IPC speedup; the weighted variants additionally
//! reward prefetch quality or penalise DRAM traffic, using the per-run
//! [`DramStats`](athena_sim::DramStats) surfaced by the engine's `RunResult`. Scores are
//! pure functions of the run results, so any objective inherits the engine's determinism.

use athena_engine::RunResult;

/// Geometric mean of a slice of positive values; 1.0 for an empty slice.
///
/// This is the aggregation every objective uses; the harness's `tuned` experiment scores
/// through the same function, which is what makes a tuned configuration's replayed
/// speedup bit-identical to the leaderboard's claim.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A candidate-scoring rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Geomean IPC speedup over the prefetchers-only baseline (the default).
    Speedup,
    /// Speedup scaled by prefetcher accuracy: `speedup × (0.5 + 0.5 × accuracy)`.
    /// Prefers configurations whose wins do not ride on speculative spray.
    AccuracyWeighted,
    /// Speedup scaled by prefetch coverage: `speedup × (0.5 + 0.5 × coverage)`.
    CoverageWeighted,
    /// Speedup divided by `1 + max(0, ΔDRAM)`, where ΔDRAM is the candidate's relative
    /// excess in total DRAM requests over the baseline. Penalises bandwidth-hungry
    /// configurations that would not survive a shared memory channel.
    BandwidthAware,
}

impl Objective {
    /// Every objective, in CLI/report order.
    pub fn all() -> [Objective; 4] {
        [
            Objective::Speedup,
            Objective::AccuracyWeighted,
            Objective::CoverageWeighted,
            Objective::BandwidthAware,
        ]
    }

    /// The name used by the CLI and the leaderboard schema.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Speedup => "speedup",
            Objective::AccuracyWeighted => "accuracy-weighted",
            Objective::CoverageWeighted => "coverage-weighted",
            Objective::BandwidthAware => "bandwidth-aware",
        }
    }

    /// The inverse of [`Objective::name`].
    pub fn from_name(name: &str) -> Option<Objective> {
        Objective::all().into_iter().find(|o| o.name() == name)
    }

    /// Scores one workload's candidate run against its baseline run.
    pub fn score_cell(&self, candidate: &RunResult, baseline: &RunResult) -> f64 {
        let speedup = candidate.ipc / baseline.ipc.max(1e-12);
        match self {
            Objective::Speedup => speedup,
            Objective::AccuracyWeighted => {
                speedup * (0.5 + 0.5 * candidate.stats.prefetcher_accuracy())
            }
            Objective::CoverageWeighted => {
                speedup * (0.5 + 0.5 * candidate.stats.prefetch_coverage())
            }
            Objective::BandwidthAware => {
                let base = baseline.dram.total_requests.max(1) as f64;
                let excess = (candidate.dram.total_requests as f64
                    - baseline.dram.total_requests as f64)
                    / base;
                speedup / (1.0 + excess.max(0.0))
            }
        }
    }

    /// Scores a candidate over a workload set: the geomean of the per-workload scores, in
    /// workload order.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length (they are positionally paired).
    pub fn score_set(&self, candidates: &[RunResult], baselines: &[RunResult]) -> f64 {
        assert_eq!(
            candidates.len(),
            baselines.len(),
            "candidate and baseline runs must pair up"
        );
        let scores: Vec<f64> = candidates
            .iter()
            .zip(baselines)
            .map(|(c, b)| self.score_cell(c, b))
            .collect();
        geomean(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_sim::{DramStats, SimStats};

    fn run(ipc: f64, useful: u64, issued: u64, llc_misses: u64, dram_total: u64) -> RunResult {
        RunResult {
            workload: "w".into(),
            instructions: 10_000,
            cycles: (10_000.0 / ipc) as u64,
            ipc,
            stats: SimStats {
                prefetches_useful: useful,
                prefetches_issued: issued,
                llc_misses,
                ..SimStats::default()
            },
            dram: DramStats {
                total_requests: dram_total,
                ..DramStats::default()
            },
            epochs: Vec::new(),
            timeline: None,
        }
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn names_round_trip() {
        for o in Objective::all() {
            assert_eq!(Objective::from_name(o.name()), Some(o));
        }
        assert_eq!(Objective::from_name("ipc"), None);
    }

    #[test]
    fn speedup_is_the_ipc_ratio() {
        let c = run(1.2, 0, 0, 0, 100);
        let b = run(1.0, 0, 0, 0, 100);
        assert!((Objective::Speedup.score_cell(&c, &b) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_coverage_weighting_reward_quality() {
        let b = run(1.0, 0, 0, 100, 100);
        let sloppy = run(1.2, 10, 100, 90, 100); // 10% accuracy
        let sharp = run(1.2, 90, 100, 10, 100); // 90% accuracy, high coverage
        assert!(
            Objective::AccuracyWeighted.score_cell(&sharp, &b)
                > Objective::AccuracyWeighted.score_cell(&sloppy, &b)
        );
        assert!(
            Objective::CoverageWeighted.score_cell(&sharp, &b)
                > Objective::CoverageWeighted.score_cell(&sloppy, &b)
        );
    }

    #[test]
    fn bandwidth_objective_penalises_extra_dram_traffic_only() {
        let b = run(1.0, 0, 0, 0, 100);
        let frugal = run(1.2, 0, 0, 0, 80);
        let hungry = run(1.2, 0, 0, 0, 200);
        // Using less bandwidth than the baseline is not rewarded beyond the speedup…
        assert!((Objective::BandwidthAware.score_cell(&frugal, &b) - 1.2).abs() < 1e-12);
        // …but using double costs a factor of two.
        assert!((Objective::BandwidthAware.score_cell(&hungry, &b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn score_set_is_the_geomean_of_cells() {
        let b = run(1.0, 0, 0, 0, 100);
        let c1 = run(2.0, 0, 0, 0, 100);
        let c2 = run(0.5, 0, 0, 0, 100);
        let s = Objective::Speedup.score_set(&[c1.clone(), c2.clone()], &[b.clone(), b.clone()]);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
