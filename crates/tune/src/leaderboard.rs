//! Ranked tuning results and their deterministic CSV/JSON serialisations
//! (schema `athena-tune-v1`).

use athena_core::AthenaConfig;
use athena_engine::json::Json;

use crate::objective::Objective;
use crate::search::Rung;
use athena_engine::wire::config_to_json;

/// One candidate's final standing.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateResult {
    /// Stable candidate id (its index in the initial draw; the ultimate tiebreaker).
    pub id: usize,
    /// The configuration evaluated.
    pub config: AthenaConfig,
    /// Index of the last rung this candidate was evaluated in.
    pub rung: usize,
    /// Instruction budget of that last evaluation.
    pub budget: u64,
    /// Objective score at that budget (the ranking key).
    pub objective: f64,
    /// Plain geomean IPC speedup over prefetchers-only at that budget — the number a
    /// file-loaded `tuned` policy reproduces through `figures`.
    pub speedup: f64,
    /// Prefetcher accuracy over the workload set (counter sums, not averaged averages).
    pub prefetch_accuracy: f64,
    /// Prefetch coverage over the workload set.
    pub prefetch_coverage: f64,
    /// Total DRAM requests relative to the baseline runs (>1 means extra traffic).
    pub dram_ratio: f64,
}

/// A ranked tuning run: every candidate, best first, plus the evidence it ran on.
///
/// Contains no wall-clock and no scheduling state, so serialising it is byte-identical
/// at any `--jobs` value and under `--trace-dir` replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// The scoring rule candidates were ranked by.
    pub objective: Objective,
    /// The final-rung instruction budget the leaderboard's scores are measured at.
    pub instructions: u64,
    /// The workload names scored over, in evaluation order.
    pub workloads: Vec<String>,
    /// The executed schedule (a single rung for random search).
    pub rungs: Vec<Rung>,
    /// Total candidate×workload simulations executed (baselines excluded).
    pub evaluations: usize,
    /// Every candidate, ranked: later rung first, then objective, then id.
    pub entries: Vec<CandidateResult>,
}

impl Leaderboard {
    /// The winning candidate.
    ///
    /// # Panics
    ///
    /// Panics on an empty leaderboard (a tuning run always evaluates ≥ 1 candidate).
    pub fn best(&self) -> &CandidateResult {
        &self.entries[0]
    }

    /// Serialises the ranking as CSV. Floats use Rust's shortest-round-trip formatting,
    /// so the file is both diff-stable and lossless.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rank,id,rung,budget,objective,speedup,prefetch_accuracy,prefetch_coverage,\
             dram_ratio,alpha,gamma,epsilon,tau,features,reward_weights,uncorrelated\n",
        );
        for (rank, e) in self.entries.iter().enumerate() {
            let features: Vec<&str> = e.config.features.iter().map(|f| f.short_name()).collect();
            let weights: Vec<String> = e
                .config
                .reward_weights
                .as_array()
                .iter()
                .map(|w| format!("{w}"))
                .collect();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                rank + 1,
                e.id,
                e.rung,
                e.budget,
                e.objective,
                e.speedup,
                e.prefetch_accuracy,
                e.prefetch_coverage,
                e.dram_ratio,
                e.config.alpha,
                e.config.gamma,
                e.config.epsilon,
                e.config.tau,
                features.join("+"),
                weights.join("/"),
                e.config.use_uncorrelated_reward,
            ));
        }
        out
    }

    /// Serialises the full leaderboard — schedule, workloads and per-entry configurations
    /// included — under the `athena-tune-v1` schema.
    pub fn to_json(&self) -> Json {
        athena_engine::report::TUNE_SCHEMA.document(vec![
            ("objective", Json::str(self.objective.name())),
            ("instructions", Json::num(self.instructions as f64)),
            (
                "workloads",
                Json::arr(self.workloads.iter().map(Json::str).collect()),
            ),
            (
                "rungs",
                Json::arr(
                    self.rungs
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("candidates", Json::int(r.candidates)),
                                ("budget", Json::num(r.budget as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("evaluations", Json::int(self.evaluations)),
            (
                "entries",
                Json::arr(
                    self.entries
                        .iter()
                        .enumerate()
                        .map(|(rank, e)| {
                            Json::obj(vec![
                                ("rank", Json::int(rank + 1)),
                                ("id", Json::int(e.id)),
                                ("rung", Json::int(e.rung)),
                                ("budget", Json::num(e.budget as f64)),
                                ("objective", Json::num(e.objective)),
                                ("speedup", Json::num(e.speedup)),
                                ("prefetch_accuracy", Json::num(e.prefetch_accuracy)),
                                ("prefetch_coverage", Json::num(e.prefetch_coverage)),
                                ("dram_ratio", Json::num(e.dram_ratio)),
                                ("config", config_to_json(&e.config)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The `best.json` document for the winning configuration: the claimed scores plus
    /// the configuration itself, loadable by `figures --tuned-config`
    /// ([`crate::load_config`] accepts the wrapper).
    pub fn best_json(&self) -> Json {
        let best = self.best();
        athena_engine::report::TUNE_CONFIG_SCHEMA.document(vec![
            ("objective", Json::str(self.objective.name())),
            ("objective_value", Json::num(best.objective)),
            ("speedup", Json::num(best.speedup)),
            ("instructions", Json::num(self.instructions as f64)),
            (
                "workloads",
                Json::arr(self.workloads.iter().map(Json::str).collect()),
            ),
            ("config", config_to_json(&best.config)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_engine::wire::config_from_json;

    fn board() -> Leaderboard {
        let entry = |id: usize, rung: usize, objective: f64| CandidateResult {
            id,
            config: AthenaConfig {
                alpha: [0.2, 0.3, 0.4][id],
                ..AthenaConfig::default()
            },
            rung,
            budget: if rung == 1 { 40_000 } else { 20_000 },
            objective,
            speedup: objective,
            prefetch_accuracy: 0.5,
            prefetch_coverage: 0.25,
            dram_ratio: 1.125,
        };
        Leaderboard {
            objective: Objective::Speedup,
            instructions: 40_000,
            workloads: vec!["w0".into(), "w1".into()],
            rungs: vec![
                Rung {
                    candidates: 3,
                    budget: 20_000,
                },
                Rung {
                    candidates: 2,
                    budget: 40_000,
                },
            ],
            evaluations: 10,
            entries: vec![entry(1, 1, 1.25), entry(0, 1, 1.1), entry(2, 0, 1.3)],
        }
    }

    #[test]
    fn csv_has_one_ranked_row_per_entry() {
        let csv = board().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("rank,id,rung,budget,objective"));
        assert!(lines[1].starts_with("1,1,1,40000,1.25,1.25,0.5,0.25,1.125,0.3,"));
        assert!(lines[1].contains("PA+OA+BW+CP"));
        assert!(lines[1].contains("1.6/0/0/0.6/1"));
    }

    #[test]
    fn json_carries_schema_schedule_and_configs() {
        let text = board().to_json().to_pretty();
        for needle in [
            "athena-tune-v1",
            "\"objective\": \"speedup\"",
            "\"candidates\": 3",
            "\"rank\": 1",
            "\"alpha\": 0.3",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn best_json_round_trips_into_the_winning_config() {
        let b = board();
        let doc = b.best_json();
        assert_eq!(
            doc.get("speedup").and_then(Json::as_f64),
            Some(b.best().speedup)
        );
        let reloaded = config_from_json(&Json::parse(&doc.to_pretty()).unwrap()).unwrap();
        assert_eq!(reloaded, b.best().config);
    }
}
