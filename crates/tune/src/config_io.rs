//! On-disk round-tripping of [`AthenaConfig`].
//!
//! The winning configuration of a tuning run is written as JSON and later loaded by the
//! `figures`/`timeline` harness as the `tuned` policy. Fidelity is exact: floats are
//! serialised with Rust's shortest-round-trip formatting (which the engine's JSON parser
//! reads back to the identical `f64`) and the agent seed travels as a lossless hex
//! string — so the loaded configuration compares equal to the explored one, field for
//! field, and reproduces its leaderboard numbers bit for bit.

use std::path::Path;

use athena_core::{AthenaConfig, Feature, RewardWeights};
use athena_engine::json::Json;

/// Serialises a configuration as a JSON object.
pub fn config_to_json(cfg: &AthenaConfig) -> Json {
    Json::obj(vec![
        ("alpha", Json::num(cfg.alpha)),
        ("gamma", Json::num(cfg.gamma)),
        ("epsilon", Json::num(cfg.epsilon)),
        ("tau", Json::num(cfg.tau)),
        (
            "features",
            Json::arr(
                cfg.features
                    .iter()
                    .map(|f| Json::str(f.short_name()))
                    .collect(),
            ),
        ),
        (
            "reward_weights",
            Json::arr(
                cfg.reward_weights
                    .as_array()
                    .iter()
                    .map(|&w| Json::num(w))
                    .collect(),
            ),
        ),
        (
            "use_uncorrelated_reward",
            Json::Bool(cfg.use_uncorrelated_reward),
        ),
        ("planes", Json::int(cfg.planes)),
        ("rows_per_plane", Json::int(cfg.rows_per_plane)),
        ("q_step", Json::num(cfg.q_step)),
        ("seed", Json::hex(cfg.seed)),
    ])
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

/// Deserialises a configuration from a JSON object produced by [`config_to_json`].
///
/// Accepts either the bare configuration object or any document wrapping one under a
/// `"config"` key (e.g. the `best.json` the tune CLI writes, which carries the claimed
/// scores alongside).
pub fn config_from_json(doc: &Json) -> Result<AthenaConfig, String> {
    let doc = doc.get("config").unwrap_or(doc);
    let features = field(doc, "features")?
        .as_array()
        .ok_or("field 'features' is not an array")?
        .iter()
        .map(|f| {
            let name = f.as_str().ok_or("feature names must be strings")?;
            Feature::from_short_name(name).ok_or_else(|| format!("unknown feature '{name}'"))
        })
        .collect::<Result<Vec<Feature>, String>>()?;
    let weights = field(doc, "reward_weights")?
        .as_array()
        .ok_or("field 'reward_weights' is not an array")?;
    if weights.len() != 5 {
        return Err(format!(
            "reward_weights must hold 5 values, found {}",
            weights.len()
        ));
    }
    let mut lambda = [0.0; 5];
    for (slot, w) in lambda.iter_mut().zip(weights) {
        *slot = w.as_f64().ok_or("reward weights must be numbers")?;
    }
    Ok(AthenaConfig {
        alpha: num_field(doc, "alpha")?,
        gamma: num_field(doc, "gamma")?,
        epsilon: num_field(doc, "epsilon")?,
        tau: num_field(doc, "tau")?,
        features,
        reward_weights: RewardWeights::from_array(lambda),
        use_uncorrelated_reward: field(doc, "use_uncorrelated_reward")?
            .as_bool()
            .ok_or("field 'use_uncorrelated_reward' is not a boolean")?,
        planes: num_field(doc, "planes")? as usize,
        rows_per_plane: num_field(doc, "rows_per_plane")? as usize,
        q_step: num_field(doc, "q_step")?,
        seed: field(doc, "seed")?
            .as_hex_u64()
            .ok_or("field 'seed' is not a \"0x…\" hex string")?,
    })
}

/// Loads a configuration from a JSON file (bare or `"config"`-wrapped; see
/// [`config_from_json`]).
pub fn load_config(path: impl AsRef<Path>) -> Result<AthenaConfig, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
    config_from_json(&doc).map_err(|e| format!("invalid config in '{}': {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_config() -> AthenaConfig {
        AthenaConfig {
            alpha: 0.30000000000000004, // deliberately not shortest-decimal-friendly
            gamma: 1.0 / 3.0,
            epsilon: 0.05,
            tau: 0.12,
            features: vec![Feature::CachePollution, Feature::OcpBandwidthShare],
            reward_weights: RewardWeights::from_array([1.6, 0.1, 0.2, 0.6, 1.0]),
            use_uncorrelated_reward: false,
            planes: 4,
            rows_per_plane: 32,
            q_step: 0.025,
            seed: u64::MAX - 17,
        }
    }

    #[test]
    fn configs_round_trip_exactly() {
        for cfg in [
            AthenaConfig::default(),
            AthenaConfig::stateless(),
            athena_engine::default_athena_config(),
            exotic_config(),
        ] {
            let doc = config_to_json(&cfg);
            let parsed = config_from_json(&Json::parse(&doc.to_pretty()).unwrap()).unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn wrapped_documents_are_accepted() {
        let cfg = exotic_config();
        let wrapped = Json::obj(vec![
            ("schema", Json::str("athena-tune-config-v1")),
            ("speedup", Json::num(1.23)),
            ("config", config_to_json(&cfg)),
        ]);
        assert_eq!(config_from_json(&wrapped).unwrap(), cfg);
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        let mut doc = config_to_json(&AthenaConfig::default());
        let Json::Obj(pairs) = &mut doc else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "tau");
        let err = config_from_json(&doc).unwrap_err();
        assert!(err.contains("tau"), "{err}");

        let bad_feature = Json::parse(
            &config_to_json(&AthenaConfig::default())
                .to_string()
                .replace("\"PA\"", "\"XX\""),
        )
        .unwrap();
        assert!(config_from_json(&bad_feature)
            .unwrap_err()
            .contains("unknown feature"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("athena-tune-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        let cfg = exotic_config();
        std::fs::write(&path, config_to_json(&cfg).to_pretty()).unwrap();
        assert_eq!(load_config(&path).unwrap(), cfg);
        std::fs::remove_file(&path).unwrap();
        assert!(load_config(&path).unwrap_err().contains("cannot read"));
    }
}
