//! Declarative design spaces over [`AthenaConfig`].
//!
//! A [`DesignSpace`] names, for every explorable dimension of the agent configuration,
//! either a grid of values or a continuous range: the four SARSA hyperparameters (α, γ,
//! ε, τ), a set of candidate reward-weight vectors, and a set of candidate state-feature
//! subsets drawn from `athena_core::Feature`'s Table 1 candidates. Everything the space
//! does not explore is taken from a base configuration, so a candidate differs from the
//! paper's Table 3 point only where the space says it may.

use athena_core::{AthenaConfig, Feature, RewardWeights};
use rand::rngs::StdRng;
use rand::Rng;

/// One scalar dimension of a design space: a finite grid or a continuous range.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSpace {
    /// A finite set of values, sampled uniformly and enumerable exhaustively.
    Grid(Vec<f64>),
    /// A half-open continuous range `[lo, hi)`, sampled uniformly. Ranges cannot be
    /// enumerated, so a space containing one supports random search only.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl ParamSpace {
    /// A grid with a single point (a dimension held fixed).
    pub fn fixed(value: f64) -> Self {
        ParamSpace::Grid(vec![value])
    }

    /// Draws one value.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid or an empty range — both describe no design at all.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            ParamSpace::Grid(values) => {
                assert!(!values.is_empty(), "empty grid has nothing to sample");
                values[rng.gen_range(0..values.len())]
            }
            ParamSpace::Range { lo, hi } => rng.gen_range(*lo..*hi),
        }
    }

    /// The grid values, or `None` for a range.
    pub fn grid(&self) -> Option<&[f64]> {
        match self {
            ParamSpace::Grid(values) => Some(values),
            ParamSpace::Range { .. } => None,
        }
    }

    /// Number of distinct values an enumeration would visit (`None` for a range).
    pub fn len(&self) -> Option<usize> {
        self.grid().map(<[f64]>::len)
    }

    /// Whether an enumeration of this dimension would be empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// A declarative design space over [`AthenaConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Values for fields the space does not explore (planes, rows, quantisation step, the
    /// agent seed, …). The paper's Table 3 point with the reproduction's ε deviation —
    /// [`athena_engine::default_athena_config`] — is the usual choice.
    pub base: AthenaConfig,
    /// SARSA learning rate α.
    pub alpha: ParamSpace,
    /// SARSA discount factor γ.
    pub gamma: ParamSpace,
    /// ε-greedy exploration rate.
    pub epsilon: ParamSpace,
    /// Aggressiveness-control confidence normaliser τ.
    pub tau: ParamSpace,
    /// Candidate reward-weight vectors (Table 2's λ constituents).
    pub reward_weights: Vec<RewardWeights>,
    /// Candidate state-feature subsets (drawn from Table 1's seven candidates).
    pub feature_sets: Vec<Vec<Feature>>,
}

impl DesignSpace {
    /// The full exploration space modelled on the paper's DSE (§6 / Table 3): α and γ on
    /// 0.1-step grids, a small ε/τ neighbourhood, four reward-weight vectors and the
    /// ablation ladder of feature subsets.
    pub fn paper_default() -> Self {
        let base = athena_engine::default_athena_config();
        let tenths =
            |from: u64, to: u64| -> Vec<f64> { (from..=to).map(|i| i as f64 / 10.0).collect() };
        Self {
            alpha: ParamSpace::Grid(tenths(1, 9)),
            gamma: ParamSpace::Grid(tenths(1, 9)),
            epsilon: ParamSpace::Grid(vec![0.0, 0.01, 0.05, 0.1]),
            tau: ParamSpace::Grid(vec![0.06, 0.12, 0.24]),
            reward_weights: vec![
                RewardWeights::default(),
                // IPC-change-only (prior-work style).
                RewardWeights::from_array([1.6, 0.0, 0.0, 0.0, 0.0]),
                // Heavier uncorrelated terms.
                RewardWeights::from_array([1.6, 0.0, 0.0, 1.0, 1.0]),
                // LLC-aware correlated terms.
                RewardWeights::from_array([1.0, 0.5, 0.5, 0.6, 1.0]),
            ],
            feature_sets: feature_ladder(),
            base,
        }
    }

    /// A reduced space for smoke tests and `tune --quick`: six grid points around the
    /// paper's selected configuration, fully enumerable.
    pub fn quick() -> Self {
        let base = athena_engine::default_athena_config();
        Self {
            alpha: ParamSpace::Grid(vec![0.2, 0.6, 0.9]),
            gamma: ParamSpace::Grid(vec![0.3, 0.6]),
            epsilon: ParamSpace::fixed(base.epsilon),
            tau: ParamSpace::fixed(base.tau),
            reward_weights: vec![base.reward_weights],
            feature_sets: vec![base.features.clone()],
            base,
        }
    }

    /// Builds the candidate configuration for one point of the space.
    fn build(
        &self,
        alpha: f64,
        gamma: f64,
        epsilon: f64,
        tau: f64,
        weights: RewardWeights,
        features: Vec<Feature>,
    ) -> AthenaConfig {
        AthenaConfig {
            alpha,
            gamma,
            epsilon,
            tau,
            reward_weights: weights,
            features,
            ..self.base.clone()
        }
    }

    /// Draws one candidate uniformly from the space. A pure function of the RNG state, so
    /// a seeded sampling pass is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty (see [`ParamSpace::sample`]).
    pub fn sample(&self, rng: &mut StdRng) -> AthenaConfig {
        assert!(!self.reward_weights.is_empty(), "no reward-weight vectors");
        assert!(!self.feature_sets.is_empty(), "no feature sets");
        let alpha = self.alpha.sample(rng);
        let gamma = self.gamma.sample(rng);
        let epsilon = self.epsilon.sample(rng);
        let tau = self.tau.sample(rng);
        let weights = self.reward_weights[rng.gen_range(0..self.reward_weights.len())];
        let features = self.feature_sets[rng.gen_range(0..self.feature_sets.len())].clone();
        self.build(alpha, gamma, epsilon, tau, weights, features)
    }

    /// Number of distinct candidates an enumeration would visit, or `None` if any scalar
    /// dimension is a continuous range.
    pub fn size(&self) -> Option<usize> {
        Some(
            self.alpha.len()?
                * self.gamma.len()?
                * self.epsilon.len()?
                * self.tau.len()?
                * self.reward_weights.len()
                * self.feature_sets.len(),
        )
    }

    /// Enumerates every candidate of a fully-gridded space in a fixed nested order
    /// (α outermost, feature set innermost), or returns `None` if any scalar dimension is
    /// a continuous range.
    pub fn enumerate(&self) -> Option<Vec<AthenaConfig>> {
        let alphas = self.alpha.grid()?;
        let gammas = self.gamma.grid()?;
        let epsilons = self.epsilon.grid()?;
        let taus = self.tau.grid()?;
        let mut out = Vec::with_capacity(self.size().unwrap_or(0));
        for &alpha in alphas {
            for &gamma in gammas {
                for &epsilon in epsilons {
                    for &tau in taus {
                        for weights in &self.reward_weights {
                            for features in &self.feature_sets {
                                out.push(self.build(
                                    alpha,
                                    gamma,
                                    epsilon,
                                    tau,
                                    *weights,
                                    features.clone(),
                                ));
                            }
                        }
                    }
                }
            }
        }
        Some(out)
    }
}

/// The ablation ladder of feature subsets (Figure 18's steps) plus the full Table 1 set.
fn feature_ladder() -> Vec<Vec<Feature>> {
    let order = Feature::all_candidates();
    let mut sets: Vec<Vec<Feature>> = (1..=4).map(|n| order[..n].to_vec()).collect();
    sets.push(order.to_vec());
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quick_space_enumerates_six_candidates() {
        let space = DesignSpace::quick();
        assert_eq!(space.size(), Some(6));
        let all = space.enumerate().unwrap();
        assert_eq!(all.len(), 6);
        // Everything but α/γ comes from the base.
        for cfg in &all {
            assert_eq!(cfg.epsilon, space.base.epsilon);
            assert_eq!(cfg.features, space.base.features);
            assert_eq!(cfg.seed, space.base.seed);
        }
        assert!(all.iter().any(|c| c.alpha == 0.9 && c.gamma == 0.3));
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed_and_stays_inside_the_space() {
        let space = DesignSpace::paper_default();
        let draw = |seed: u64| -> Vec<AthenaConfig> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| space.sample(&mut rng)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        for cfg in draw(7) {
            assert!(space.alpha.grid().unwrap().contains(&cfg.alpha));
            assert!(space.gamma.grid().unwrap().contains(&cfg.gamma));
            assert!(space.reward_weights.contains(&cfg.reward_weights));
            assert!(space.feature_sets.contains(&cfg.features));
        }
    }

    #[test]
    fn ranges_sample_uniformly_but_refuse_enumeration() {
        let mut space = DesignSpace::quick();
        space.alpha = ParamSpace::Range { lo: 0.1, hi: 0.9 };
        assert_eq!(space.size(), None);
        assert!(space.enumerate().is_none());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let cfg = space.sample(&mut rng);
            assert!((0.1..0.9).contains(&cfg.alpha));
        }
    }

    #[test]
    fn paper_space_matches_its_advertised_shape() {
        let space = DesignSpace::paper_default();
        assert_eq!(space.size(), Some(9 * 9 * 4 * 3 * 4 * 5));
        assert_eq!(space.feature_sets.len(), 5);
        assert_eq!(space.feature_sets[3], space.base.features);
        assert_eq!(space.feature_sets[4].len(), 7);
    }
}
