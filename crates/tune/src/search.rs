//! The search strategies and the tuning driver.
//!
//! [`tune`] evaluates candidates drawn from a [`DesignSpace`] on the experiment engine:
//! every (candidate × workload) pair — plus one shared prefetchers-only baseline run per
//! workload and budget — becomes an [`athena_engine::Job`], so the search inherits the
//! engine's worker pool, per-cell panic isolation, identity-derived seeding and
//! trace-directory replay wholesale. Two strategies are provided:
//!
//! * **seeded random search** — draw N candidates from the space with a seeded RNG and
//!   evaluate all of them at the full instruction budget;
//! * **successive halving** — screen all candidates on a short budget, promote the best
//!   `1/η` to an η-times-longer budget, and repeat until the survivors have run the full
//!   budget ([`halving_schedule`]).
//!
//! Everything downstream of the engine is a pure fold over the in-order cell results, so
//! the returned [`Leaderboard`] is byte-identical at any worker count and under trace
//! replay.

use std::path::PathBuf;

use athena_engine::{
    CellResult, CoordinatorKind, DistPool, Engine, Job, OcpKind, PrefetcherKind, ProbeSink,
    RunResult, StoreHandle, SystemConfig,
};
use athena_workloads::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::leaderboard::{CandidateResult, Leaderboard};
use crate::objective::Objective;
use crate::space::DesignSpace;

/// The experiment name tuning cells run under (their seed namespace).
pub const TUNE_EXPERIMENT: &str = "tune";

/// Default sampling seed for candidate draws ("DSE").
pub const DEFAULT_TUNE_SEED: u64 = 0xd5e;

/// The smallest budget a screening rung may use: a couple of coordination epochs, below
/// which every online policy is indistinguishable noise.
pub const MIN_RUNG_BUDGET: u64 = 4_096;

/// Options shared by every strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOptions {
    /// Final-rung instruction budget per workload — the budget the leaderboard's scores
    /// are measured at.
    pub instructions: u64,
    /// Engine worker count (`1` is the exact serial path; leaderboards are byte-identical
    /// at any value).
    pub jobs: usize,
    /// Optional directory of recorded traces; single-core cells whose workload has a
    /// `<name>.trace` file there replay it, exactly like `figures --trace-dir`.
    pub trace_dir: Option<PathBuf>,
    /// The scoring rule.
    pub objective: Objective,
    /// Seed of the candidate-sampling RNG (never of the simulations themselves).
    pub seed: u64,
    /// The system configuration candidates are evaluated on (default: CD1 with Pythia and
    /// POPET, the paper's tuning setup).
    pub config: SystemConfig,
    /// Optional persistent result store. Rung budgets are part of each cell's identity,
    /// so a search re-entered over a widened space (or after a kill) re-simulates only
    /// the (candidate × workload × budget) cells the store has not seen.
    pub store: Option<StoreHandle>,
    /// Optional distributed worker pool: evaluation batches run their cells on spawned
    /// worker processes ([`athena_engine::dist`]) instead of in-process threads. Merge
    /// order is unchanged, so leaderboards stay byte-identical at any worker count.
    pub dist: Option<DistPool>,
    /// Optional structured event sink: evaluation batches emit their lifecycle events
    /// through it as JSONL. Observation is not identity — attaching a sink cannot change
    /// a leaderboard byte.
    pub probe: Option<ProbeSink>,
    /// Live `cells done / cached / ETA` progress line on stderr while evaluation batches
    /// simulate. Off by default.
    pub progress: bool,
}

impl TuneOptions {
    /// Options with the given final budget and every other field at its default.
    pub fn new(instructions: u64) -> Self {
        Self {
            instructions,
            jobs: 1,
            trace_dir: None,
            objective: Objective::Speedup,
            seed: DEFAULT_TUNE_SEED,
            config: SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet),
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    /// Returns a copy with a different engine worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Returns a copy replaying recorded traces from `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Returns a copy scoring with a different objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns a copy sampling candidates with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy whose evaluation batches use the given result store (see
    /// [`TuneOptions::store`]).
    pub fn with_store(mut self, store: StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Returns a copy whose evaluation batches run on the given distributed worker pool
    /// (see [`TuneOptions::dist`]).
    pub fn with_dist(mut self, dist: DistPool) -> Self {
        self.dist = Some(dist);
        self
    }

    /// Returns a copy whose evaluation batches emit lifecycle events through the given
    /// sink (see [`TuneOptions::probe`]).
    pub fn with_probe(mut self, probe: ProbeSink) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Returns a copy with the stderr progress line enabled (see
    /// [`TuneOptions::progress`]).
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// How candidates are drawn and promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneStrategy {
    /// Evaluate `samples` candidates at the full budget.
    Random {
        /// Number of candidates to draw.
        samples: usize,
    },
    /// Successive halving: screen `samples` candidates over `rungs` budgets growing by a
    /// factor of `eta`, keeping the best `1/eta` at each promotion.
    Halving {
        /// Number of candidates entering the first rung.
        samples: usize,
        /// Promotion/elimination factor (clamped to ≥ 2).
        eta: usize,
        /// Number of budget rungs (clamped to ≥ 1); the last rung always runs the full
        /// budget.
        rungs: usize,
    },
}

/// One rung of a halving schedule: how many candidates run, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rung {
    /// Candidates evaluated in this rung.
    pub candidates: usize,
    /// Instruction budget per workload.
    pub budget: u64,
}

/// Builds a successive-halving schedule.
///
/// The last rung always runs exactly `final_budget` instructions with
/// `max(1, ceil(samples / eta^(rungs-1)))` candidates; earlier rungs run `eta`-times
/// shorter budgets (floored at [`MIN_RUNG_BUDGET`]) with `eta`-times more candidates.
/// Rungs whose floored budget would not be strictly below the next rung's are merged away
/// (keeping the largest candidate pool), so the returned schedule always satisfies the
/// invariants the tuner relies on: budgets strictly increase, candidate counts never
/// increase, every rung runs at least one candidate, and the first rung admits the whole
/// sample.
pub fn halving_schedule(samples: usize, eta: usize, rungs: usize, final_budget: u64) -> Vec<Rung> {
    let samples = samples.max(1);
    let eta = eta.max(2);
    let rungs = rungs.max(1);
    let final_budget = final_budget.max(1);

    // Raw schedule: survivors shrink by eta per rung, budgets grow by eta toward the
    // final budget.
    let mut raw = Vec::with_capacity(rungs);
    let mut candidates = samples;
    for i in 0..rungs {
        let shrink = eta.saturating_pow((rungs - 1 - i) as u32) as u64;
        let budget = if i == rungs - 1 {
            final_budget
        } else {
            (final_budget / shrink.max(1)).max(MIN_RUNG_BUDGET)
        };
        raw.push(Rung { candidates, budget });
        candidates = candidates.div_ceil(eta).max(1);
    }

    // Merge rungs flattened together by the budget floor (or by a tiny final budget):
    // scanning from the end, keep a rung only if it is strictly shorter than the next
    // kept one; the earliest (largest-pool) rung of each merged group survives.
    let mut schedule: Vec<Rung> = Vec::with_capacity(raw.len());
    for rung in raw.into_iter().rev() {
        match schedule.last_mut() {
            Some(next) if rung.budget >= next.budget => next.candidates = rung.candidates,
            _ => schedule.push(rung),
        }
    }
    schedule.reverse();
    schedule
}

/// The candidates entering the first rung: the space's full enumeration when it is
/// enumerable and no larger than `samples` (the grid *is* the search, no need to sample
/// it), otherwise `samples` seeded draws.
fn initial_candidates(
    space: &DesignSpace,
    samples: usize,
    seed: u64,
) -> Vec<athena_core::AthenaConfig> {
    let samples = samples.max(1);
    if let Some(all) = space.enumerate() {
        if all.len() <= samples && !all.is_empty() {
            return all;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..samples).map(|_| space.sample(&mut rng)).collect()
}

/// Builds the baseline (prefetchers-only) job for one workload at one budget, honouring
/// the options' trace directory exactly like the harness experiments do. Candidate jobs
/// are this job with the coordinator overridden ([`Job::with_athena_config`]).
fn workload_job(spec: &WorkloadSpec, budget: u64, opts: &TuneOptions) -> Job {
    if let Some(dir) = &opts.trace_dir {
        let path = dir.join(format!("{}.trace", spec.name));
        if path.is_file() {
            return Job::from_file(
                TUNE_EXPERIMENT,
                &spec.name,
                path,
                opts.config.clone(),
                CoordinatorKind::PrefetchersOnly,
                budget,
            );
        }
    }
    Job::single(
        TUNE_EXPERIMENT,
        spec.clone(),
        opts.config.clone(),
        CoordinatorKind::PrefetchersOnly,
        budget,
    )
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the search and returns the ranked leaderboard.
///
/// Ranking is total and deterministic: candidates that reached a later rung come first;
/// within a rung, higher objective wins; exact ties fall back to the (stable) candidate
/// id. Wall-clock never enters the leaderboard, so its bytes are identical at any
/// `jobs` count.
///
/// # Panics
///
/// Panics if `workloads` is empty, or if a simulation cell fails (e.g. a corrupt trace
/// under [`TuneOptions::trace_dir`]) — a leaderboard with holes would rank candidates on
/// different evidence.
pub fn tune(
    space: &DesignSpace,
    strategy: &TuneStrategy,
    workloads: &[WorkloadSpec],
    opts: &TuneOptions,
) -> Leaderboard {
    assert!(!workloads.is_empty(), "tuning needs at least one workload");
    let (configs, rungs) = match strategy {
        TuneStrategy::Random { samples } => {
            let configs = initial_candidates(space, *samples, opts.seed);
            let rungs = vec![Rung {
                candidates: configs.len(),
                budget: opts.instructions.max(1),
            }];
            (configs, rungs)
        }
        TuneStrategy::Halving {
            samples,
            eta,
            rungs,
        } => {
            let configs = initial_candidates(space, *samples, opts.seed);
            let schedule = halving_schedule(configs.len(), *eta, *rungs, opts.instructions);
            (configs, schedule)
        }
    };

    let mut entries: Vec<CandidateResult> = configs
        .into_iter()
        .enumerate()
        .map(|(id, config)| CandidateResult {
            id,
            config,
            rung: 0,
            budget: 0,
            objective: 0.0,
            speedup: 0.0,
            prefetch_accuracy: 0.0,
            prefetch_coverage: 0.0,
            dram_ratio: 0.0,
        })
        .collect();

    let engine = Engine::new(opts.jobs)
        .with_store(opts.store.clone())
        .with_dist(opts.dist.clone())
        .with_probe(opts.probe.clone())
        .with_progress(opts.progress);
    let mut survivors: Vec<usize> = (0..entries.len()).collect();
    let mut evaluations = 0usize;

    for (rung_index, rung) in rungs.iter().enumerate() {
        survivors.truncate(rung.candidates);

        // One engine batch per rung: the shared baselines first, then each surviving
        // candidate's cells, all in workload order.
        let mut jobs: Vec<Job> = workloads
            .iter()
            .map(|spec| workload_job(spec, rung.budget, opts))
            .collect();
        for &id in &survivors {
            jobs.extend(workloads.iter().map(|spec| {
                workload_job(spec, rung.budget, opts).with_athena_config(entries[id].config.clone())
            }));
        }
        let mut results = engine.run(jobs).into_iter().map(CellResult::into_single);
        let baselines: Vec<RunResult> = results.by_ref().take(workloads.len()).collect();

        for &id in &survivors {
            let runs: Vec<RunResult> = results.by_ref().take(workloads.len()).collect();
            evaluations += runs.len();
            let sum = |f: fn(&RunResult) -> u64| -> u64 { runs.iter().map(f).sum() };
            let entry = &mut entries[id];
            entry.rung = rung_index;
            entry.budget = rung.budget;
            entry.objective = opts.objective.score_set(&runs, &baselines);
            entry.speedup = Objective::Speedup.score_set(&runs, &baselines);
            entry.prefetch_accuracy = ratio(
                sum(|r| r.stats.prefetches_useful),
                sum(|r| r.stats.prefetches_issued),
            );
            entry.prefetch_coverage = ratio(
                sum(|r| r.stats.prefetches_useful),
                sum(|r| r.stats.prefetches_useful) + sum(|r| r.stats.llc_misses),
            );
            entry.dram_ratio = ratio(
                sum(|r| r.dram.total_requests),
                baselines.iter().map(|r| r.dram.total_requests).sum(),
            );
        }

        // Rank this rung's survivors; the next iteration truncates to its pool size.
        survivors.sort_by(|&a, &b| {
            entries[b]
                .objective
                .partial_cmp(&entries[a].objective)
                .expect("objective scores are finite")
                .then(a.cmp(&b))
        });
    }

    // Final ranking over every candidate: later rung first, then objective, then id.
    entries.sort_by(|a, b| {
        b.rung
            .cmp(&a.rung)
            .then(
                b.objective
                    .partial_cmp(&a.objective)
                    .expect("objective scores are finite"),
            )
            .then(a.id.cmp(&b.id))
    });

    Leaderboard {
        objective: opts.objective,
        instructions: rungs.last().expect("at least one rung").budget,
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        rungs,
        evaluations,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_workloads::tuning_workloads;

    fn tiny_opts() -> TuneOptions {
        TuneOptions::new(8_192).with_jobs(2)
    }

    #[test]
    fn schedule_final_rung_is_exact_and_invariants_hold() {
        let s = halving_schedule(16, 2, 3, 400_000);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s[0],
            Rung {
                candidates: 16,
                budget: 100_000
            }
        );
        assert_eq!(
            s[1],
            Rung {
                candidates: 8,
                budget: 200_000
            }
        );
        assert_eq!(
            s[2],
            Rung {
                candidates: 4,
                budget: 400_000
            }
        );
    }

    #[test]
    fn schedule_merges_rungs_flattened_by_the_floor() {
        // 8192/4 and 8192/2 both floor to MIN_RUNG_BUDGET; the merged schedule keeps one
        // screening rung with the full pool.
        let s = halving_schedule(9, 2, 3, 8_192);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0],
            Rung {
                candidates: 9,
                budget: MIN_RUNG_BUDGET
            }
        );
        assert_eq!(s[1].budget, 8_192);
        // A final budget at the floor collapses to a single full-pool rung.
        let s = halving_schedule(9, 2, 3, MIN_RUNG_BUDGET);
        assert_eq!(
            s,
            vec![Rung {
                candidates: 9,
                budget: MIN_RUNG_BUDGET
            }]
        );
    }

    #[test]
    fn enumerable_spaces_skip_sampling() {
        let space = DesignSpace::quick();
        let six = initial_candidates(&space, 16, 1);
        assert_eq!(six.len(), 6, "full grid fits inside the sample budget");
        let sampled = initial_candidates(&space, 4, 1);
        assert_eq!(sampled.len(), 4, "grid larger than the budget is sampled");
    }

    #[test]
    fn random_and_halving_produce_full_leaderboards() {
        let space = DesignSpace::quick();
        let workloads: Vec<WorkloadSpec> = tuning_workloads().into_iter().take(2).collect();
        let random = tune(
            &space,
            &TuneStrategy::Random { samples: 6 },
            &workloads,
            &tiny_opts(),
        );
        assert_eq!(random.entries.len(), 6);
        assert_eq!(random.rungs.len(), 1);
        assert_eq!(random.evaluations, 6 * 2);
        assert_eq!(random.instructions, 8_192);

        let halving = tune(
            &space,
            &TuneStrategy::Halving {
                samples: 6,
                eta: 2,
                rungs: 2,
            },
            &workloads,
            &tiny_opts(),
        );
        assert_eq!(halving.entries.len(), 6);
        assert_eq!(halving.rungs.len(), 2);
        // 6 candidates screened, 3 promoted; every rung pays its baselines too.
        assert_eq!(halving.evaluations, (6 + 3) * 2);
        let best = halving.best();
        assert_eq!(best.budget, 8_192, "the winner ran the full budget");
        assert!(best.objective > 0.0);
        // Ranking is total: survivors of the final rung precede the screened-out.
        assert!(halving.entries.windows(2).all(|w| w[0].rung >= w[1].rung));
    }

    #[test]
    fn leaderboards_are_identical_at_any_worker_count() {
        let space = DesignSpace::quick();
        let workloads: Vec<WorkloadSpec> = tuning_workloads().into_iter().take(2).collect();
        let strategy = TuneStrategy::Halving {
            samples: 6,
            eta: 2,
            rungs: 2,
        };
        let serial = tune(&space, &strategy, &workloads, &tiny_opts().with_jobs(1));
        let parallel = tune(&space, &strategy, &workloads, &tiny_opts().with_jobs(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }
}
