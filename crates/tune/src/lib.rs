//! # athena-tune
//!
//! Deterministic, parallel design-space exploration over [`AthenaConfig`]s — the
//! reproduction's analogue of the automated DSE that produced the paper's Table 3
//! configuration.
//!
//! The subsystem sits between the experiment engine and the per-figure harness:
//!
//! * a [`DesignSpace`] declares what may vary — hyperparameter grids or ranges for
//!   (α, γ, ε, τ), candidate reward-weight vectors, candidate feature subsets drawn from
//!   Table 1's seven features;
//! * a [`TuneStrategy`] decides how the space is searched — seeded
//!   [random search](TuneStrategy::Random) or
//!   [successive halving](TuneStrategy::Halving), which screens many candidates on short
//!   instruction budgets and promotes the best fraction to longer ones
//!   ([`halving_schedule`]);
//! * every evaluation runs as an [`athena_engine::Job`] batch, inheriting the engine's
//!   worker pool, panic isolation, identity-derived seeding and `--trace-dir` replay;
//! * candidates are scored by a configurable [`Objective`] (IPC speedup over
//!   prefetchers-only, accuracy/coverage-weighted variants, a bandwidth-aware variant
//!   that reads the per-run DRAM statistics);
//! * the result is a ranked [`Leaderboard`] whose CSV/JSON serialisations
//!   (schema `athena-tune-v1`) are byte-identical at any worker count, and whose winning
//!   configuration round-trips to disk ([`load_config`]) so the harness can run it as a
//!   file-loaded `tuned` policy that reproduces the claimed speedup exactly.
//!
//! ```
//! use athena_tune::{tune, DesignSpace, TuneOptions, TuneStrategy};
//! use athena_workloads::tuning_workloads;
//!
//! let workloads: Vec<_> = tuning_workloads().into_iter().take(2).collect();
//! let board = tune(
//!     &DesignSpace::quick(),
//!     &TuneStrategy::Halving { samples: 6, eta: 2, rungs: 2 },
//!     &workloads,
//!     &TuneOptions::new(8_192).with_jobs(2),
//! );
//! assert_eq!(board.entries.len(), 6);
//! assert!(board.best().objective > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod leaderboard;
mod objective;
mod search;
mod space;

// The config ↔ JSON round trip lives in the engine's wire module now (the distributed
// protocol serialises whole jobs, configs included); re-exported here so tuner consumers
// keep their import paths.
pub use athena_engine::wire::{config_from_json, config_to_json, load_config};
pub use leaderboard::{CandidateResult, Leaderboard};
pub use objective::{geomean, Objective};
pub use search::{
    halving_schedule, tune, Rung, TuneOptions, TuneStrategy, DEFAULT_TUNE_SEED, MIN_RUNG_BUDGET,
    TUNE_EXPERIMENT,
};
pub use space::{DesignSpace, ParamSpace};

use athena_core::AthenaConfig;

// The tuner hands design-space values to engine jobs that cross worker threads; keep the
// whole vocabulary `Send + Sync + Clone` — checked at compile time, so a stray `Rc` or
// thread-local sneaking into a config type fails the build here rather than deep inside
// a worker-pool trait bound (the same pattern the engine applies to workloads).
const fn assert_engine_shippable<T: Send + Sync + Clone>() {}
const _: () = {
    assert_engine_shippable::<AthenaConfig>();
    assert_engine_shippable::<DesignSpace>();
    assert_engine_shippable::<ParamSpace>();
    assert_engine_shippable::<TuneOptions>();
    assert_engine_shippable::<TuneStrategy>();
    assert_engine_shippable::<Objective>();
    assert_engine_shippable::<Rung>();
    assert_engine_shippable::<CandidateResult>();
    assert_engine_shippable::<Leaderboard>();
};
