//! Calibration sanity check: verifies the headline dynamics of the paper on a few
//! workloads. Not part of the shipped examples; used during development.

use athena_harness::{simulate, CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
use athena_workloads::all_workloads;
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
    let all = all_workloads();
    let picks = [
        "462.libquantum-714B", // friendly stream
        "410.bwaves-1963B",    // friendly stream
        "437.leslie3d-134B",   // friendly stride
        "436.cactusADM-1804B", // friendly spatial
        "cvp-compute_fp_17",   // friendly mixed-phase
        "429.mcf-184B",        // adverse pointer chase
        "483.xalancbmk-127B",  // adverse
        "450.soplex-247B",     // adverse hash probe
        "ligra-BFS-24B",       // adverse graph
        "cvp-compute_int_5",   // adverse compute
    ];
    let n = 200_000;
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "base", "pf-only", "ocp-only", "naive", "athena", "mab"
    );
    for name in picks {
        let spec = all.iter().find(|w| w.name == name).expect(name);
        let t0 = Instant::now();
        let base = simulate(spec, &cfg, CoordinatorKind::Baseline, n);
        let pf = simulate(spec, &cfg, CoordinatorKind::PrefetchersOnly, n);
        let ocp = simulate(spec, &cfg, CoordinatorKind::OcpOnly, n);
        let naive = simulate(spec, &cfg, CoordinatorKind::Naive, n);
        let athena = simulate(spec, &cfg, CoordinatorKind::Athena, n);
        let mab = simulate(spec, &cfg, CoordinatorKind::Mab, n);
        println!(
            "{:<24} {:>9.4} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}   ({:?} for 6 runs, pf acc {:.2}, ocp acc {:.2}, mpki {:.1})",
            name,
            base.ipc,
            pf.ipc / base.ipc,
            ocp.ipc / base.ipc,
            naive.ipc / base.ipc,
            athena.ipc / base.ipc,
            mab.ipc / base.ipc,
            t0.elapsed(),
            naive.stats.prefetcher_accuracy(),
            naive.stats.ocp_accuracy(),
            base.stats.llc_mpki(),
        );
    }
}
