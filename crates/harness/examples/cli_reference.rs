//! Prints the generated `docs/CLI.md` to stdout.
//!
//! ```sh
//! cargo run --release -p athena-harness --example cli_reference > docs/CLI.md
//! ```
//!
//! CI runs this and diffs the output against the committed `docs/CLI.md`, so the CLI
//! reference cannot drift from the binaries' actual `--help` text.

fn main() {
    print!("{}", athena_harness::cli::cli_reference());
}
