//! # athena-harness
//!
//! The experiment harness that reproduces every figure of the Athena paper's evaluation.
//!
//! The harness wires together the workload suite (`athena-workloads`), the simulator
//! substrate (`athena-sim`), the prefetchers, off-chip predictors, baseline coordination
//! policies and the Athena agent, and exposes:
//!
//! * [`SystemConfig`] — the four cache designs (CD1–CD4) and their sensitivity variants;
//! * [`simulate`] — one single-core run of a workload under a configuration and policy;
//! * [`experiments`] — one function per paper figure (`fig1()` … `fig21()`, plus the DSE
//!   and storage tables), each returning an [`ExperimentTable`] that can be printed or
//!   written as CSV/JSON. Every experiment enumerates its simulation cells as jobs on the
//!   `athena-engine` worker pool; [`RunOptions::jobs`] picks the worker count and the
//!   results are bit-identical at any value;
//! * the `figures` binary — `cargo run --release -p athena-harness --bin figures -- --fig
//!   fig7 --jobs 8`;
//! * the `trace` binary — records workloads to on-disk trace files (`trace record --quick
//!   --out traces/`), inspects them (`trace info` / `trace stats`) and converts between
//!   the binary and text formats (`trace convert`); recorded directories replay through
//!   `figures --trace-dir`, reproducing the generated tables byte-for-byte;
//! * the `tune` binary — design-space exploration over Athena configurations
//!   (`athena-tune`, re-exported here as [`tune`]): seeded random search or successive
//!   halving on the engine, deterministic leaderboards, and a winning configuration that
//!   `figures --fig tuned --tuned-config` re-measures exactly.
//!
//! ```no_run
//! use athena_harness::{simulate, CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
//! use athena_workloads::all_workloads;
//!
//! let spec = &all_workloads()[0];
//! let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
//! let run = simulate(spec, &config, CoordinatorKind::Athena, 100_000);
//! println!("{} IPC = {:.3}", spec.name, run.ipc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
mod run;
pub mod timeline;

pub use athena_engine::ExperimentTable;
pub use athena_tune as tune;
pub use run::{
    simulate, simulate_multicore, CoordinatorKind, DistPool, OcpKind, PrefetcherKind, ProbeSink,
    RunOptions, RunResult, StoreHandle, StorePolicy, SystemConfig, WorkerCommand,
};

// One geomean for the whole workspace: the experiments aggregate through the exact same
// function the tuner scores with, which is part of why a tuned configuration's replayed
// speedup matches its leaderboard claim bit for bit.
pub use athena_tune::geomean;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
