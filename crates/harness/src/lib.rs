//! # athena-harness
//!
//! The experiment harness that reproduces every figure of the Athena paper's evaluation.
//!
//! The harness wires together the workload suite (`athena-workloads`), the simulator
//! substrate (`athena-sim`), the prefetchers, off-chip predictors, baseline coordination
//! policies and the Athena agent, and exposes:
//!
//! * [`SystemConfig`] — the four cache designs (CD1–CD4) and their sensitivity variants;
//! * [`simulate`] — one single-core run of a workload under a configuration and policy;
//! * [`experiments`] — one function per paper figure (`fig1()` … `fig21()`, plus the DSE
//!   and storage tables), each returning an [`ExperimentTable`] that can be printed or
//!   written as CSV/JSON. Every experiment enumerates its simulation cells as jobs on the
//!   `athena-engine` worker pool; [`RunOptions::jobs`] picks the worker count and the
//!   results are bit-identical at any value;
//! * the `figures` binary — `cargo run --release -p athena-harness --bin figures -- --fig
//!   fig7 --jobs 8`;
//! * the `trace` binary — records workloads to on-disk trace files (`trace record --quick
//!   --out traces/`), inspects them (`trace info` / `trace stats`) and converts between
//!   the binary and text formats (`trace convert`); recorded directories replay through
//!   `figures --trace-dir`, reproducing the generated tables byte-for-byte.
//!
//! ```no_run
//! use athena_harness::{simulate, CoordinatorKind, OcpKind, PrefetcherKind, SystemConfig};
//! use athena_workloads::all_workloads;
//!
//! let spec = &all_workloads()[0];
//! let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
//! let run = simulate(spec, &config, CoordinatorKind::Athena, 100_000);
//! println!("{} IPC = {:.3}", spec.name, run.ipc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
mod run;
pub mod timeline;

pub use athena_engine::ExperimentTable;
pub use run::{
    simulate, simulate_multicore, CoordinatorKind, OcpKind, PrefetcherKind, RunOptions, RunResult,
    SystemConfig,
};

/// Geometric mean of a slice of positive values; returns 1.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
