//! The `trace` CLI: record, inspect and convert on-disk workload traces.
//!
//! ```text
//! # Record the quick experiment preset's 12 workloads (40 K instructions each):
//! cargo run --release -p athena-harness --bin trace -- record --quick --out traces/
//!
//! # Record one workload at full length, and the text form of another:
//! cargo run --release -p athena-harness --bin trace -- record --workload 429.mcf-184B --out traces/
//! cargo run --release -p athena-harness --bin trace -- record --workload 429.mcf-184B --text --out traces/
//!
//! # Inspect:
//! cargo run --release -p athena-harness --bin trace -- info traces/429.mcf-184B.trace
//! cargo run --release -p athena-harness --bin trace -- stats traces/429.mcf-184B.trace
//!
//! # Convert between the binary and text formats (lossless both ways):
//! cargo run --release -p athena-harness --bin trace -- convert traces/a.trace a.trace.txt
//! ```
//!
//! Recorded directories plug into the `figures` CLI via `--trace-dir`; see the format
//! specification in the `athena-trace-io` crate docs and DESIGN.md.

use std::path::{Path, PathBuf};

use athena_harness::cli::{fail, TRACE_HELP as HELP};
use athena_harness::experiments::{standard_mixes, workload_set};
use athena_harness::RunOptions;
use athena_trace_io::{convert, open_trace, record_trace, sniff_format, TraceFormat, TraceSummary};
use athena_workloads::{
    all_workloads, find_workload, google_like_workloads, tuning_workloads, WorkloadSpec,
};

/// Selection accumulated by the `record` flag parser.
struct RecordArgs {
    out: PathBuf,
    specs: Vec<WorkloadSpec>,
    instructions: u64,
    format: TraceFormat,
}

fn parse_record_args(mut args: std::env::Args) -> RecordArgs {
    let mut out = PathBuf::from("traces");
    let mut named: Vec<String> = Vec::new();
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    let mut instructions: Option<u64> = None;
    let mut quick = false;
    let mut format = TraceFormat::Binary;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| fail("--out needs a value")))
            }
            "--workload" => named.push(
                args.next()
                    .unwrap_or_else(|| fail("--workload needs a value")),
            ),
            "--quick" => quick = true,
            "--all" => specs.extend(all_workloads()),
            "--tuning" => specs.extend(tuning_workloads()),
            "--google" => specs.extend(google_like_workloads()),
            "--mixes" => {
                let cores: usize = args
                    .next()
                    .unwrap_or_else(|| fail("--mixes needs a core count"))
                    .parse()
                    .unwrap_or_else(|e| fail(format!("bad --mixes core count: {e}")));
                // Recording the distinct members of the standard mix list covers every
                // core of every mix fig15/fig16 run.
                for mix in standard_mixes(cores) {
                    specs.extend(mix.workloads);
                }
            }
            "--instructions" => {
                instructions = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--instructions needs a value"))
                        .parse()
                        .unwrap_or_else(|e| fail(format!("bad --instructions: {e}"))),
                )
            }
            "--text" => format = TraceFormat::Text,
            other => fail(format!("unknown record argument: {other}")),
        }
    }
    if quick {
        specs.extend(workload_set(&RunOptions::quick()));
    }
    for name in named {
        match find_workload(&name) {
            Some(spec) => specs.push(spec),
            None => fail(format!("unknown workload '{name}'")),
        }
    }
    if specs.is_empty() {
        fail("nothing selected; use --workload/--quick/--all/--tuning/--google/--mixes");
    }
    // Deduplicate while keeping selection order (mix members repeat across mixes).
    let mut seen = std::collections::HashSet::new();
    specs.retain(|s| seen.insert(s.name.clone()));
    let instructions = instructions.unwrap_or(if quick {
        RunOptions::quick().instructions
    } else {
        RunOptions::full().instructions
    });
    RecordArgs {
        out,
        specs,
        instructions,
        format,
    }
}

fn cmd_record(args: std::env::Args) {
    let r = parse_record_args(args);
    if let Err(e) = std::fs::create_dir_all(&r.out) {
        fail(format!("cannot create {}: {e}", r.out.display()));
    }
    for spec in &r.specs {
        let file_name = match r.format {
            TraceFormat::Binary => format!("{}.trace", spec.name),
            TraceFormat::Text => format!("{}.trace.txt", spec.name),
        };
        let path = r.out.join(file_name);
        let mut generator = spec.trace();
        match record_trace(&mut generator, r.instructions, &path, r.format) {
            Ok(written) => println!(
                "recorded {written} records of {} ({}, seed {}) -> {}",
                spec.name,
                spec.suite,
                spec.seed,
                path.display()
            ),
            Err(e) => fail(format!("recording {}: {e}", spec.name)),
        }
    }
}

fn cmd_info(files: &[String]) {
    if files.is_empty() {
        fail("info needs at least one trace file");
    }
    for file in files {
        let path = Path::new(file);
        let format = sniff_format(path).unwrap_or_else(|e| fail(format!("{file}: {e}")));
        let trace = open_trace(path).unwrap_or_else(|e| fail(format!("{file}: {e}")));
        println!("{file}:");
        println!("  format:   {format}");
        match trace.header() {
            Some(h) => {
                println!("  version:  {}", h.version);
                println!("  records:  {}", h.records);
                println!("  loads:    {}", h.loads);
            }
            None => println!("  (text format: no header; use `trace stats` for counts)"),
        }
    }
}

fn cmd_stats(args: std::env::Args) {
    let mut files: Vec<String> = Vec::new();
    let mut limit = u64::MAX;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--limit" => {
                limit = args
                    .next()
                    .unwrap_or_else(|| fail("--limit needs a value"))
                    .parse()
                    .unwrap_or_else(|e| fail(format!("bad --limit: {e}")))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        fail("stats needs at least one trace file");
    }
    for file in &files {
        let mut trace =
            open_trace(Path::new(file)).unwrap_or_else(|e| fail(format!("{file}: {e}")));
        let summary = TraceSummary::scan(&mut trace, limit);
        println!("{file}:");
        for line in summary.to_string().lines() {
            println!("  {line}");
        }
    }
}

fn cmd_convert(args: std::env::Args) {
    let mut positional: Vec<String> = Vec::new();
    let mut to: Option<TraceFormat> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--to" => {
                to = Some(
                    match args
                        .next()
                        .unwrap_or_else(|| fail("--to needs a value"))
                        .as_str()
                    {
                        "binary" => TraceFormat::Binary,
                        "text" => TraceFormat::Text,
                        other => fail(format!("bad --to '{other}' (expected binary or text)")),
                    },
                )
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        fail("convert needs exactly <IN> and <OUT> paths");
    };
    let output = Path::new(output);
    let to = to.unwrap_or_else(|| TraceFormat::for_path(output));
    match convert(Path::new(input), output, to) {
        Ok(n) => println!(
            "converted {n} records: {input} -> {} ({to})",
            output.display()
        ),
        Err(e) => fail(format!("converting {input}: {e}")),
    }
}

fn main() {
    let mut args = std::env::args();
    args.next(); // program name
    match args.next().as_deref() {
        Some("record") => cmd_record(args),
        Some("info") => cmd_info(&args.collect::<Vec<_>>()),
        Some("stats") => cmd_stats(args),
        Some("convert") => cmd_convert(args),
        Some("--version") => println!("trace {}", env!("CARGO_PKG_VERSION")),
        Some("--help") | Some("-h") | None => println!("{HELP}"),
        Some(other) => fail(format!("unknown command '{other}' (see --help)")),
    }
}
