//! The `results` CLI: inspect and maintain a persistent result store.
//!
//! ```text
//! cargo run --release -p athena-harness --bin results -- stats --store results/store
//! cargo run --release -p athena-harness --bin results -- query --store results/store --experiment fig7
//! cargo run --release -p athena-harness --bin results -- diff --store a/ --against b/
//! cargo run --release -p athena-harness --bin results -- gc --store results/store
//! cargo run --release -p athena-harness --bin results -- verify --store results/store
//! cargo run --release -p athena-harness --bin results -- events results/events.jsonl
//! cargo run --release -p athena-harness --bin results -- trace results/events.jsonl --out trace.json
//! cargo run --release -p athena-harness --bin results -- metrics results/fig7.json
//! ```
//!
//! Every store command except `gc` opens the store read-only and takes no writer lock,
//! so a running sweep can be inspected live. `verify` exits non-zero on any corruption;
//! `diff` exits non-zero when the two stores disagree. Three commands read files instead
//! of a store: `events` summarises an event log written by `figures --events` /
//! `tune --events` — event counts by kind, the store cache-hit ratio, the slowest
//! simulated cells, and the per-worker breakdown of a distributed run; `trace` converts
//! such a log into Chrome `trace_event` JSON viewable in Perfetto (one process row per
//! distributed worker, cell spans with phase-profile child slices); `metrics` prints the
//! engine metrics snapshot embedded in a JSON report. Run `results --help` for the full
//! reference (also rendered into `docs/CLI.md`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use athena_engine::json::Json;
use athena_engine::report::METRICS_SCHEMA;
use athena_engine::{RecordKey, StoreHandle, StorePolicy, EVENTS_SCHEMA_ID};
use athena_harness::cli::{fail, fail_env, RESULTS_HELP as HELP};

#[derive(PartialEq)]
enum Command {
    Stats,
    Query,
    Diff,
    Gc,
    Verify,
    Events,
    Trace,
    Metrics,
}

impl Command {
    /// Commands that read a file argument instead of opening a store.
    fn takes_file(&self) -> bool {
        matches!(self, Command::Events | Command::Trace | Command::Metrics)
    }
}

struct Args {
    command: Command,
    /// The store directory; empty (and unused) for the file commands.
    store: PathBuf,
    /// `events`/`trace`: the event log file; `metrics`: the JSON report file.
    events_file: PathBuf,
    /// `trace` only: the output path (default: `trace.json` next to the log).
    out: Option<PathBuf>,
    /// `diff` only: the second store.
    against: Option<PathBuf>,
    /// `query` filters (exact match on the record envelope's fields).
    experiment: Option<String>,
    workload: Option<String>,
    coordinator: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut store = None;
    let mut events_file = None;
    let mut out = None;
    let mut against = None;
    let mut experiment = None;
    let mut workload = None;
    let mut coordinator = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "stats" if command.is_none() => command = Some(Command::Stats),
            "query" if command.is_none() => command = Some(Command::Query),
            "diff" if command.is_none() => command = Some(Command::Diff),
            "gc" if command.is_none() => command = Some(Command::Gc),
            "verify" if command.is_none() => command = Some(Command::Verify),
            "events" if command.is_none() => {
                command = Some(Command::Events);
                events_file = Some(PathBuf::from(
                    args.next()
                        .ok_or("events needs an event log file (results events <FILE>)")?,
                ));
            }
            "trace" if command.is_none() => {
                command = Some(Command::Trace);
                events_file = Some(PathBuf::from(
                    args.next()
                        .ok_or("trace needs an event log file (results trace <FILE>)")?,
                ));
            }
            "metrics" if command.is_none() => {
                command = Some(Command::Metrics);
                events_file = Some(PathBuf::from(
                    args.next()
                        .ok_or("metrics needs a JSON report file (results metrics <FILE>)")?,
                ));
            }
            "--store" => store = Some(PathBuf::from(value("--store")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--against" => against = Some(PathBuf::from(value("--against")?)),
            "--experiment" => experiment = Some(value("--experiment")?),
            "--workload" => workload = Some(value("--workload")?),
            "--coordinator" => coordinator = Some(value("--coordinator")?),
            "--json" => json = true,
            "--version" => {
                println!("results {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let command = command
        .ok_or("no command given (stats, query, diff, gc, verify, events, trace, metrics)")?;
    let store = match (command.takes_file(), store) {
        (true, Some(_)) => {
            return Err(
                "--store does not apply to events/trace/metrics (pass the file as the \
                 command's argument)"
                    .to_string(),
            )
        }
        (true, None) => PathBuf::new(),
        (false, Some(dir)) => dir,
        (false, None) => return Err("--store <DIR> is required".to_string()),
    };
    if command == Command::Diff && against.is_none() {
        return Err("diff needs --against <DIR>".to_string());
    }
    if command != Command::Diff && against.is_some() {
        return Err("--against only applies to diff".to_string());
    }
    if command != Command::Trace && out.is_some() {
        return Err("--out only applies to trace".to_string());
    }
    if command == Command::Trace && json {
        return Err("trace always writes JSON; --json does not apply".to_string());
    }
    if command != Command::Query
        && (experiment.is_some() || workload.is_some() || coordinator.is_some())
    {
        return Err("--experiment/--workload/--coordinator only apply to query".to_string());
    }
    Ok(Args {
        command,
        store,
        events_file: events_file.unwrap_or_default(),
        out,
        against,
        experiment,
        workload,
        coordinator,
        json,
    })
}

/// Opens a store or dies loudly (exit 1): a store this tool cannot read must be looked
/// at, not worked around.
fn open(dir: &std::path::Path, policy: StorePolicy) -> StoreHandle {
    match StoreHandle::open(dir, policy) {
        Ok(handle) => handle,
        Err(e) => fail_env(format!("result store {}: {e}", dir.display())),
    }
}

/// The self-describing half of a record payload (everything but the output itself).
struct Envelope {
    experiment: String,
    label: String,
    workload: String,
    coordinator: String,
    instructions: u64,
    seed: u64,
}

/// Parses a record envelope, failing loudly on any malformed payload.
fn envelope(key: RecordKey, payload: &[u8]) -> Result<Envelope, String> {
    let text = std::str::from_utf8(payload).map_err(|e| {
        format!(
            "record {:016x}.{:016x}: payload is not UTF-8: {e}",
            key.identity, key.variant
        )
    })?;
    let doc = Json::parse(text).map_err(|e| {
        format!(
            "record {:016x}.{:016x}: payload is not JSON: {e}",
            key.identity, key.variant
        )
    })?;
    let field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!(
                "record {:016x}.{:016x} has no '{name}' field",
                key.identity, key.variant
            ))
    };
    let hex = |name: &str| -> Result<u64, String> {
        doc.get(name).and_then(Json::as_hex_u64).ok_or(format!(
            "record {:016x}.{:016x} has no hex '{name}' field",
            key.identity, key.variant
        ))
    };
    Ok(Envelope {
        experiment: field("experiment")?,
        label: field("label")?,
        workload: field("workload")?,
        coordinator: field("coordinator")?,
        instructions: hex("instructions")?,
        seed: hex("seed")?,
    })
}

fn run_stats(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let stats = handle.lock().stats();
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("live_records", Json::int(stats.live_records as usize)),
            ("superseded_records", Json::int(stats.superseded() as usize)),
            ("total_records", Json::int(stats.total_records as usize)),
            ("log_bytes", Json::num(stats.log_bytes as f64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: {} live records ({} superseded of {} total), {} log bytes",
            args.store.display(),
            stats.live_records,
            stats.superseded(),
            stats.total_records,
            stats.log_bytes
        );
    }
}

fn run_query(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let mut store = handle.lock();
    let mut rows = Vec::new();
    for key in store.keys() {
        let payload = match store.get(key) {
            Ok(Some(p)) => p,
            Ok(None) => continue,
            Err(e) => fail_env(format!("result store {}: {e}", args.store.display())),
        };
        let env = match envelope(key, &payload) {
            Ok(env) => env,
            Err(e) => fail_env(format!("result store {}: {e}", args.store.display())),
        };
        if args
            .experiment
            .as_deref()
            .is_some_and(|f| f != env.experiment)
            || args.workload.as_deref().is_some_and(|f| f != env.workload)
            || args
                .coordinator
                .as_deref()
                .is_some_and(|f| f != env.coordinator)
        {
            continue;
        }
        rows.push((key, env));
    }
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("records", Json::int(rows.len())),
            (
                "entries",
                Json::arr(
                    rows.iter()
                        .map(|(key, env)| {
                            Json::obj(vec![
                                ("identity", Json::hex(key.identity)),
                                ("variant", Json::hex(key.variant)),
                                ("experiment", Json::str(&env.experiment)),
                                ("workload", Json::str(&env.workload)),
                                ("coordinator", Json::str(&env.coordinator)),
                                ("label", Json::str(&env.label)),
                                ("instructions", Json::hex(env.instructions)),
                                ("seed", Json::hex(env.seed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for (key, env) in &rows {
            println!(
                "{:016x}.{:016x}  {}  {}  {}  {}",
                key.identity, key.variant, env.experiment, env.workload, env.coordinator, env.label
            );
        }
        println!("{} records", rows.len());
    }
}

fn run_diff(args: &Args) {
    let b_dir = args.against.as_ref().expect("diff always has --against");
    let a_handle = open(&args.store, StorePolicy::ReadOnly);
    let b_handle = open(b_dir, StorePolicy::ReadOnly);
    let mut a = a_handle.lock();
    let mut b = b_handle.lock();
    let fetch = |store: &mut athena_engine::ResultStore, dir: &std::path::Path, key: RecordKey| {
        store.get(key).unwrap_or_else(|e| {
            fail_env(format!(
                "result store {}: record {:016x}.{:016x}: {e}",
                dir.display(),
                key.identity,
                key.variant
            ))
        })
    };
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let mut differ = Vec::new();
    let mut matching = 0usize;
    for key in a.keys() {
        match fetch(&mut b, b_dir, key) {
            None => only_a.push(key),
            Some(theirs) => {
                let ours = fetch(&mut a, &args.store, key).expect("key listed by the store");
                if ours == theirs {
                    matching += 1;
                } else {
                    differ.push(key);
                }
            }
        }
    }
    for key in b.keys() {
        if fetch(&mut a, &args.store, key).is_none() {
            only_b.push(key);
        }
    }
    let key_list = |keys: &[RecordKey]| {
        Json::arr(
            keys.iter()
                .map(|k| Json::str(format!("{:016x}.{:016x}", k.identity, k.variant)))
                .collect(),
        )
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("against", Json::str(b_dir.display().to_string())),
            ("matching", Json::int(matching)),
            ("only_store", key_list(&only_a)),
            ("only_against", key_list(&only_b)),
            ("differing", key_list(&differ)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for key in &only_a {
            println!(
                "only {}: {:016x}.{:016x}",
                args.store.display(),
                key.identity,
                key.variant
            );
        }
        for key in &only_b {
            println!(
                "only {}: {:016x}.{:016x}",
                b_dir.display(),
                key.identity,
                key.variant
            );
        }
        for key in &differ {
            println!(
                "payloads differ: {:016x}.{:016x}",
                key.identity, key.variant
            );
        }
        println!(
            "{} matching, {} only in {}, {} only in {}, {} differing",
            matching,
            only_a.len(),
            args.store.display(),
            only_b.len(),
            b_dir.display(),
            differ.len()
        );
    }
    if !(only_a.is_empty() && only_b.is_empty() && differ.is_empty()) {
        std::process::exit(1);
    }
}

fn run_gc(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadWrite);
    let report = match handle.lock().gc() {
        Ok(r) => r,
        Err(e) => fail_env(format!(
            "result store {}: gc failed: {e}",
            args.store.display()
        )),
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("kept", Json::int(report.kept as usize)),
            ("dropped", Json::int(report.dropped as usize)),
            ("bytes_before", Json::num(report.bytes_before as f64)),
            ("bytes_after", Json::num(report.bytes_after as f64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: kept {} records, dropped {} superseded, {} -> {} bytes",
            args.store.display(),
            report.kept,
            report.dropped,
            report.bytes_before,
            report.bytes_after
        );
    }
}

fn run_verify(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let report = match handle.lock().verify() {
        Ok(r) => r,
        Err(e) => fail_env(format!(
            "result store {}: verify failed: {e}",
            args.store.display()
        )),
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            (
                "records_scanned",
                Json::int(report.records_scanned as usize),
            ),
            ("live_records", Json::int(report.live_records as usize)),
            ("payload_bytes", Json::num(report.payload_bytes as f64)),
            ("ok", Json::Bool(true)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: ok — {} records scanned ({} live), {} payload bytes, every checksum verified",
            args.store.display(),
            report.records_scanned,
            report.live_records,
            report.payload_bytes
        );
    }
}

/// `events <FILE>`: summarise an event log written by `figures --events` /
/// `tune --events` — counts by kind, the store cache-hit ratio, the slowest cells, and
/// (for distributed logs) the per-worker breakdown.
fn run_events(args: &Args) {
    let path = &args.events_file;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_env(format!("event log {}: {e}", path.display())));
    let mut by_kind: Vec<(String, usize)> = Vec::new();
    let mut hits = 0usize;
    let mut scheduled = 0usize;
    let mut panicked = 0usize;
    let mut reports = 0usize;
    let mut report_bytes = 0.0f64;
    let mut finished: Vec<(String, String, f64)> = Vec::new();
    // Distributed vocabulary: cell events per worker id, topology tallies, shard bytes.
    let mut worker_cell_events: BTreeMap<u64, usize> = BTreeMap::new();
    let mut worker_deaths = 0usize;
    let mut cells_reassigned = 0usize;
    let mut shard_frames = 0usize;
    let mut shard_bytes = 0.0f64;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let malformed = |what: &str| -> ! {
            fail_env(format!(
                "event log {}: line {}: {what}",
                path.display(),
                idx + 1
            ))
        };
        let doc = Json::parse(line).unwrap_or_else(|e| malformed(&format!("not JSON: {e}")));
        match doc.get("schema").and_then(Json::as_str) {
            Some(schema) if schema == EVENTS_SCHEMA_ID => {}
            Some(schema) => malformed(&format!("schema '{schema}' is not '{EVENTS_SCHEMA_ID}'")),
            None => malformed("no 'schema' field"),
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| malformed("no 'kind' field"))
            .to_string();
        match by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((kind.clone(), 1)),
        }
        if matches!(
            kind.as_str(),
            "cell_started" | "cell_finished" | "cell_panicked"
        ) {
            if let Some(worker) = doc.get("worker").and_then(Json::as_f64) {
                *worker_cell_events.entry(worker as u64).or_insert(0) += 1;
            }
        }
        match kind.as_str() {
            "cell_store_hit" => hits += 1,
            "cell_scheduled" => scheduled += 1,
            "cell_panicked" => panicked += 1,
            "worker_died" => worker_deaths += 1,
            "cell_reassigned" => cells_reassigned += 1,
            "shard_dispatched" => {
                shard_frames += 1;
                shard_bytes += doc.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "report_written" => {
                reports += 1;
                report_bytes += doc.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "cell_finished" => finished.push((
                doc.get("experiment")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| malformed("cell_finished without 'experiment'"))
                    .to_string(),
                doc.get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| malformed("cell_finished without 'label'"))
                    .to_string(),
                doc.get("wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| malformed("cell_finished without 'wall_ms'")),
            )),
            _ => {}
        }
    }
    let total: usize = by_kind.iter().map(|(_, n)| n).sum();
    by_kind.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let cells = hits + scheduled;
    let hit_ratio = if cells > 0 {
        hits as f64 / cells as f64
    } else {
        0.0
    };
    finished.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
    finished.truncate(5);
    let distributed = !worker_cell_events.is_empty()
        || by_kind.iter().any(|(k, _)| k == "worker_joined")
        || worker_deaths > 0;
    if args.json {
        let mut fields = vec![
            ("log", Json::str(path.display().to_string())),
            ("schema", Json::str(EVENTS_SCHEMA_ID)),
            ("events", Json::int(total)),
            (
                "by_kind",
                Json::obj(
                    by_kind
                        .iter()
                        .map(|(k, n)| (k.as_str(), Json::int(*n)))
                        .collect(),
                ),
            ),
            ("cells", Json::int(cells)),
            ("store_hits", Json::int(hits)),
            ("cache_hit_ratio", Json::num(hit_ratio)),
            ("panicked", Json::int(panicked)),
            ("reports_written", Json::int(reports)),
            ("report_bytes", Json::num(report_bytes)),
            (
                "slowest_cells",
                Json::arr(
                    finished
                        .iter()
                        .map(|(experiment, label, wall_ms)| {
                            Json::obj(vec![
                                ("experiment", Json::str(experiment)),
                                ("label", Json::str(label)),
                                ("wall_ms", Json::num(*wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if distributed {
            fields.push((
                "distributed",
                Json::obj(vec![
                    (
                        "workers",
                        Json::arr(
                            worker_cell_events
                                .iter()
                                .map(|(&worker, &events)| {
                                    Json::obj(vec![
                                        ("worker", Json::int(worker as usize)),
                                        ("cell_events", Json::int(events)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("worker_deaths", Json::int(worker_deaths)),
                    ("cells_reassigned", Json::int(cells_reassigned)),
                    ("shard_frames", Json::int(shard_frames)),
                    ("shard_bytes", Json::num(shard_bytes)),
                ]),
            ));
        }
        println!("{}", Json::obj(fields).to_pretty());
    } else {
        println!("{}: {total} events ({EVENTS_SCHEMA_ID})", path.display());
        for (kind, n) in &by_kind {
            println!("  {kind:<16} {n:>8}");
        }
        println!(
            "cells: {cells} ({hits} served from the store, {:.1}% hit ratio); {panicked} panicked",
            hit_ratio * 100.0
        );
        println!("reports: {reports} files, {report_bytes:.0} bytes");
        if distributed {
            let per: Vec<String> = worker_cell_events
                .iter()
                .map(|(w, n)| format!("w{w}:{n}"))
                .collect();
            println!(
                "distributed: cell events by worker [{}]; {worker_deaths} worker deaths, \
                 {cells_reassigned} cells reassigned; {shard_frames} shards, \
                 {shard_bytes:.0} payload bytes",
                per.join(" ")
            );
        }
        if !finished.is_empty() {
            println!("slowest cells:");
            for (experiment, label, wall_ms) in &finished {
                println!("  {experiment}:{label:<40} {wall_ms:>9.1} ms");
            }
        }
    }
}

/// One simulated cell's span in the exported trace, before lane assignment.
struct CellSpan {
    pid: usize,
    start_us: f64,
    end_us: f64,
    label: String,
    experiment: String,
    /// `(phase name, duration in µs)` child slices from the cell's phase profile.
    phases: Vec<(String, f64)>,
}

/// A point event in the exported trace.
struct TraceInstant {
    pid: usize,
    ts_us: f64,
    name: String,
}

/// `trace <FILE>`: convert a JSONL event log into Chrome `trace_event` JSON (the format
/// Perfetto and chrome://tracing open). Distributed workers become process rows (the
/// coordinator is process 0); concurrent cell spans within a process are packed onto
/// numbered thread lanes; a cell's phase profile becomes child slices under its span.
fn run_trace(args: &Args) {
    let path = &args.events_file;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_env(format!("event log {}: {e}", path.display())));
    let mut spans: Vec<CellSpan> = Vec::new();
    let mut instants: Vec<TraceInstant> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let malformed = |what: &str| -> ! {
            fail_env(format!(
                "event log {}: line {}: {what}",
                path.display(),
                idx + 1
            ))
        };
        let doc = Json::parse(line).unwrap_or_else(|e| malformed(&format!("not JSON: {e}")));
        match doc.get("schema").and_then(Json::as_str) {
            Some(schema) if schema == EVENTS_SCHEMA_ID => {}
            Some(schema) => malformed(&format!("schema '{schema}' is not '{EVENTS_SCHEMA_ID}'")),
            None => malformed("no 'schema' field"),
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| malformed("no 'kind' field"));
        let t_us = doc
            .get("t_ms")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| malformed("no 't_ms' field"))
            * 1e3;
        // Worker-attributed lines land on that worker's process row; everything else is
        // the coordinator's (process 0).
        let pid = doc
            .get("worker")
            .and_then(Json::as_f64)
            .map_or(0, |w| w as usize + 1);
        let label = |field: &str| {
            doc.get(field)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        match kind {
            "cell_finished" => {
                let wall_us = doc
                    .get("wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| malformed("cell_finished without 'wall_ms'"))
                    * 1e3;
                // Synthetic or clock-skewed logs can put a span start before the sink
                // epoch; clamp so the viewer never sees negative timestamps.
                let start_us = (t_us - wall_us).max(0.0);
                let mut phases = Vec::new();
                if let Some(Json::Obj(profile_phases)) =
                    doc.get("profile").and_then(|p| p.get("phases"))
                {
                    for (phase, stat) in profile_phases {
                        let nanos = stat.get("nanos").and_then(Json::as_f64).unwrap_or(0.0);
                        phases.push((phase.clone(), nanos / 1e3));
                    }
                }
                spans.push(CellSpan {
                    pid,
                    start_us,
                    end_us: t_us,
                    label: label("label"),
                    experiment: label("experiment"),
                    phases,
                });
            }
            "cell_panicked" => instants.push(TraceInstant {
                pid,
                ts_us: t_us,
                name: format!("panic: {}", label("label")),
            }),
            "batch_opened" | "store_fetch" | "store_persist" | "cell_store_hit"
            | "report_written" | "worker_joined" | "shard_dispatched" | "worker_died"
            | "cell_reassigned" => {
                let name = match kind {
                    "cell_store_hit" => format!("store hit: {}", label("label")),
                    "report_written" => format!("report: {}", label("path")),
                    "cell_reassigned" => format!("reassigned: {}", label("label")),
                    other => other.to_string(),
                };
                instants.push(TraceInstant {
                    pid,
                    ts_us: t_us,
                    name,
                });
            }
            // cell_scheduled/cell_started carry no duration of their own; the
            // cell_finished span covers them.
            _ => {}
        }
    }

    // Greedy lane packing per process: each span takes the lowest-numbered lane that is
    // free at its start. Lane 0 of every process is reserved for instants.
    let mut events: Vec<Json> = Vec::new();
    let mut pids: Vec<usize> = spans
        .iter()
        .map(|s| s.pid)
        .chain(instants.iter().map(|i| i.pid))
        .collect();
    pids.sort_unstable();
    pids.dedup();
    let mut lanes_per_pid: BTreeMap<usize, usize> = BTreeMap::new();
    spans.sort_by(|a, b| {
        a.pid
            .cmp(&b.pid)
            .then(a.start_us.total_cmp(&b.start_us))
            .then(a.end_us.total_cmp(&b.end_us))
    });
    let mut lane_ends: Vec<f64> = Vec::new();
    let mut current_pid = usize::MAX;
    for span in &spans {
        if span.pid != current_pid {
            lane_ends.clear();
            current_pid = span.pid;
        }
        let lane = match lane_ends.iter().position(|&end| end <= span.start_us) {
            Some(lane) => lane,
            None => {
                lane_ends.push(0.0);
                lane_ends.len() - 1
            }
        };
        lane_ends[lane] = span.end_us;
        let seen = lanes_per_pid.entry(span.pid).or_insert(0);
        *seen = (*seen).max(lane + 1);
        let tid = lane + 1;
        events.push(Json::obj(vec![
            ("ph", Json::str("X")),
            ("pid", Json::int(span.pid)),
            ("tid", Json::int(tid)),
            ("ts", Json::num(span.start_us)),
            ("dur", Json::num(span.end_us - span.start_us)),
            ("name", Json::str(&span.label)),
            ("cat", Json::str("cell")),
            (
                "args",
                Json::obj(vec![("experiment", Json::str(&span.experiment))]),
            ),
        ]));
        let mut cursor = span.start_us;
        for (phase, dur_us) in &span.phases {
            events.push(Json::obj(vec![
                ("ph", Json::str("X")),
                ("pid", Json::int(span.pid)),
                ("tid", Json::int(tid)),
                ("ts", Json::num(cursor)),
                ("dur", Json::num(*dur_us)),
                ("name", Json::str(phase)),
                ("cat", Json::str("phase")),
            ]));
            cursor += dur_us;
        }
    }
    for instant in &instants {
        events.push(Json::obj(vec![
            ("ph", Json::str("i")),
            ("pid", Json::int(instant.pid)),
            ("tid", Json::int(0)),
            ("ts", Json::num(instant.ts_us)),
            ("name", Json::str(&instant.name)),
            ("cat", Json::str("event")),
            ("s", Json::str("p")),
        ]));
    }
    // Metadata rows come first so viewers name every process before its events.
    let mut meta = Vec::new();
    for &pid in &pids {
        let name = if pid == 0 {
            "coordinator".to_string()
        } else {
            format!("worker {}", pid - 1)
        };
        meta.push(Json::obj(vec![
            ("ph", Json::str("M")),
            ("pid", Json::int(pid)),
            ("tid", Json::int(0)),
            ("name", Json::str("process_name")),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ]));
        meta.push(Json::obj(vec![
            ("ph", Json::str("M")),
            ("pid", Json::int(pid)),
            ("tid", Json::int(0)),
            ("name", Json::str("thread_name")),
            ("args", Json::obj(vec![("name", Json::str("events"))])),
        ]));
        for lane in 0..lanes_per_pid.get(&pid).copied().unwrap_or(0) {
            meta.push(Json::obj(vec![
                ("ph", Json::str("M")),
                ("pid", Json::int(pid)),
                ("tid", Json::int(lane + 1)),
                ("name", Json::str("thread_name")),
                (
                    "args",
                    Json::obj(vec![("name", Json::str(format!("slot {lane}")))]),
                ),
            ]));
        }
    }
    meta.extend(events);
    let trace_events = meta.len();
    let doc = Json::obj(vec![
        ("traceEvents", Json::arr(meta)),
        ("displayTimeUnit", Json::str("ms")),
    ]);
    let out = args.out.clone().unwrap_or_else(|| {
        path.parent()
            .map(|d| d.to_path_buf())
            .unwrap_or_default()
            .join("trace.json")
    });
    if let Err(e) = std::fs::write(&out, doc.to_string()) {
        fail_env(format!("cannot write {}: {e}", out.display()));
    }
    println!(
        "wrote {}: {trace_events} trace events ({} cell spans) across {} processes",
        out.display(),
        spans.len(),
        pids.len()
    );
}

/// `metrics <FILE>`: print the `athena-metrics-v1` snapshot embedded in a JSON report
/// (or a standalone snapshot document).
fn run_metrics(args: &Args) {
    let path = &args.events_file;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_env(format!("report {}: {e}", path.display())));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail_env(format!("report {}: not JSON: {e}", path.display())));
    let snapshot = if METRICS_SCHEMA.matches(&doc) {
        doc
    } else {
        match doc.get("metrics") {
            Some(metrics) if METRICS_SCHEMA.matches(metrics) => metrics.clone(),
            Some(_) => fail_env(format!(
                "report {}: its 'metrics' object does not declare schema '{}'",
                path.display(),
                METRICS_SCHEMA.id()
            )),
            None => fail_env(format!(
                "report {}: no 'metrics' object (expected a figures --json report, \
                 BENCH_sim.json, BENCH_tune.json, or a bare snapshot)",
                path.display()
            )),
        }
    };
    if args.json {
        println!("{}", snapshot.to_pretty());
        return;
    }
    println!("{} ({})", path.display(), METRICS_SCHEMA.id());
    if let Some(Json::Obj(counters)) = snapshot.get("counters") {
        println!("counters:");
        for (name, value) in counters {
            println!("  {name:<24} {value}");
        }
    }
    if let Some(Json::Obj(histograms)) = snapshot.get("histograms") {
        println!("histograms (nanoseconds):");
        println!(
            "  {:<24} {:>10} {:>14} {:>14} {:>14}",
            "name", "count", "min", "mean", "max"
        );
        for (name, h) in histograms {
            let field = |f: &str| h.get(f).and_then(Json::as_f64).unwrap_or(0.0);
            println!(
                "  {name:<24} {:>10} {:>14.0} {:>14.0} {:>14.0}",
                field("count"),
                field("min"),
                field("mean"),
                field("max"),
            );
        }
    }
    if let Some(workers) = snapshot.get("workers").and_then(Json::as_array) {
        if !workers.is_empty() {
            println!("workers:");
            for w in workers {
                let field = |f: &str| w.get(f).and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "  worker {:<4} {:>6} cells  {:>12.1} ms busy",
                    field("worker"),
                    field("cells"),
                    field("busy_nanos") / 1e6,
                );
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => fail(e),
    };
    match args.command {
        Command::Stats => run_stats(&args),
        Command::Query => run_query(&args),
        Command::Diff => run_diff(&args),
        Command::Gc => run_gc(&args),
        Command::Verify => run_verify(&args),
        Command::Events => run_events(&args),
        Command::Trace => run_trace(&args),
        Command::Metrics => run_metrics(&args),
    }
}
