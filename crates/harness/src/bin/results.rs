//! The `results` CLI: inspect and maintain a persistent result store.
//!
//! ```text
//! cargo run --release -p athena-harness --bin results -- stats --store results/store
//! cargo run --release -p athena-harness --bin results -- query --store results/store --experiment fig7
//! cargo run --release -p athena-harness --bin results -- diff --store a/ --against b/
//! cargo run --release -p athena-harness --bin results -- gc --store results/store
//! cargo run --release -p athena-harness --bin results -- verify --store results/store
//! cargo run --release -p athena-harness --bin results -- events results/events.jsonl
//! ```
//!
//! Every store command except `gc` opens the store read-only and takes no writer lock,
//! so a running sweep can be inspected live. `verify` exits non-zero on any corruption;
//! `diff` exits non-zero when the two stores disagree. `events` works on an event log
//! written by `figures --events` / `tune --events` rather than a store: it summarises
//! the run — event counts by kind, the store cache-hit ratio, the slowest simulated
//! cells. Run `results --help` for the full reference (also rendered into
//! `docs/CLI.md`).

use std::path::PathBuf;

use athena_engine::json::Json;
use athena_engine::{RecordKey, StoreHandle, StorePolicy, EVENTS_SCHEMA_ID};
use athena_harness::cli::{fail, fail_env, RESULTS_HELP as HELP};

#[derive(PartialEq)]
enum Command {
    Stats,
    Query,
    Diff,
    Gc,
    Verify,
    Events,
}

struct Args {
    command: Command,
    /// The store directory; empty (and unused) for `events`.
    store: PathBuf,
    /// `events` only: the event log file.
    events_file: PathBuf,
    /// `diff` only: the second store.
    against: Option<PathBuf>,
    /// `query` filters (exact match on the record envelope's fields).
    experiment: Option<String>,
    workload: Option<String>,
    coordinator: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut store = None;
    let mut events_file = None;
    let mut against = None;
    let mut experiment = None;
    let mut workload = None;
    let mut coordinator = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "stats" if command.is_none() => command = Some(Command::Stats),
            "query" if command.is_none() => command = Some(Command::Query),
            "diff" if command.is_none() => command = Some(Command::Diff),
            "gc" if command.is_none() => command = Some(Command::Gc),
            "verify" if command.is_none() => command = Some(Command::Verify),
            "events" if command.is_none() => {
                command = Some(Command::Events);
                events_file = Some(PathBuf::from(
                    args.next()
                        .ok_or("events needs an event log file (results events <FILE>)")?,
                ));
            }
            "--store" => store = Some(PathBuf::from(value("--store")?)),
            "--against" => against = Some(PathBuf::from(value("--against")?)),
            "--experiment" => experiment = Some(value("--experiment")?),
            "--workload" => workload = Some(value("--workload")?),
            "--coordinator" => coordinator = Some(value("--coordinator")?),
            "--json" => json = true,
            "--version" => {
                println!("results {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let command = command.ok_or("no command given (stats, query, diff, gc, verify, events)")?;
    let store = match (&command, store) {
        (Command::Events, Some(_)) => {
            return Err(
                "--store does not apply to events (pass the log file as its argument)".to_string(),
            )
        }
        (Command::Events, None) => PathBuf::new(),
        (_, Some(dir)) => dir,
        (_, None) => return Err("--store <DIR> is required".to_string()),
    };
    if command == Command::Diff && against.is_none() {
        return Err("diff needs --against <DIR>".to_string());
    }
    if command != Command::Diff && against.is_some() {
        return Err("--against only applies to diff".to_string());
    }
    if command != Command::Query
        && (experiment.is_some() || workload.is_some() || coordinator.is_some())
    {
        return Err("--experiment/--workload/--coordinator only apply to query".to_string());
    }
    Ok(Args {
        command,
        store,
        events_file: events_file.unwrap_or_default(),
        against,
        experiment,
        workload,
        coordinator,
        json,
    })
}

/// Opens a store or dies loudly (exit 1): a store this tool cannot read must be looked
/// at, not worked around.
fn open(dir: &std::path::Path, policy: StorePolicy) -> StoreHandle {
    match StoreHandle::open(dir, policy) {
        Ok(handle) => handle,
        Err(e) => fail_env(format!("result store {}: {e}", dir.display())),
    }
}

/// The self-describing half of a record payload (everything but the output itself).
struct Envelope {
    experiment: String,
    label: String,
    workload: String,
    coordinator: String,
    instructions: u64,
    seed: u64,
}

/// Parses a record envelope, failing loudly on any malformed payload.
fn envelope(key: RecordKey, payload: &[u8]) -> Result<Envelope, String> {
    let text = std::str::from_utf8(payload).map_err(|e| {
        format!(
            "record {:016x}.{:016x}: payload is not UTF-8: {e}",
            key.identity, key.variant
        )
    })?;
    let doc = Json::parse(text).map_err(|e| {
        format!(
            "record {:016x}.{:016x}: payload is not JSON: {e}",
            key.identity, key.variant
        )
    })?;
    let field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!(
                "record {:016x}.{:016x} has no '{name}' field",
                key.identity, key.variant
            ))
    };
    let hex = |name: &str| -> Result<u64, String> {
        doc.get(name).and_then(Json::as_hex_u64).ok_or(format!(
            "record {:016x}.{:016x} has no hex '{name}' field",
            key.identity, key.variant
        ))
    };
    Ok(Envelope {
        experiment: field("experiment")?,
        label: field("label")?,
        workload: field("workload")?,
        coordinator: field("coordinator")?,
        instructions: hex("instructions")?,
        seed: hex("seed")?,
    })
}

fn run_stats(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let stats = handle.lock().stats();
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("live_records", Json::int(stats.live_records as usize)),
            ("superseded_records", Json::int(stats.superseded() as usize)),
            ("total_records", Json::int(stats.total_records as usize)),
            ("log_bytes", Json::num(stats.log_bytes as f64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: {} live records ({} superseded of {} total), {} log bytes",
            args.store.display(),
            stats.live_records,
            stats.superseded(),
            stats.total_records,
            stats.log_bytes
        );
    }
}

fn run_query(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let mut store = handle.lock();
    let mut rows = Vec::new();
    for key in store.keys() {
        let payload = match store.get(key) {
            Ok(Some(p)) => p,
            Ok(None) => continue,
            Err(e) => fail_env(format!("result store {}: {e}", args.store.display())),
        };
        let env = match envelope(key, &payload) {
            Ok(env) => env,
            Err(e) => fail_env(format!("result store {}: {e}", args.store.display())),
        };
        if args
            .experiment
            .as_deref()
            .is_some_and(|f| f != env.experiment)
            || args.workload.as_deref().is_some_and(|f| f != env.workload)
            || args
                .coordinator
                .as_deref()
                .is_some_and(|f| f != env.coordinator)
        {
            continue;
        }
        rows.push((key, env));
    }
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("records", Json::int(rows.len())),
            (
                "entries",
                Json::arr(
                    rows.iter()
                        .map(|(key, env)| {
                            Json::obj(vec![
                                ("identity", Json::hex(key.identity)),
                                ("variant", Json::hex(key.variant)),
                                ("experiment", Json::str(&env.experiment)),
                                ("workload", Json::str(&env.workload)),
                                ("coordinator", Json::str(&env.coordinator)),
                                ("label", Json::str(&env.label)),
                                ("instructions", Json::hex(env.instructions)),
                                ("seed", Json::hex(env.seed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for (key, env) in &rows {
            println!(
                "{:016x}.{:016x}  {}  {}  {}  {}",
                key.identity, key.variant, env.experiment, env.workload, env.coordinator, env.label
            );
        }
        println!("{} records", rows.len());
    }
}

fn run_diff(args: &Args) {
    let b_dir = args.against.as_ref().expect("diff always has --against");
    let a_handle = open(&args.store, StorePolicy::ReadOnly);
    let b_handle = open(b_dir, StorePolicy::ReadOnly);
    let mut a = a_handle.lock();
    let mut b = b_handle.lock();
    let fetch = |store: &mut athena_engine::ResultStore, dir: &std::path::Path, key: RecordKey| {
        store.get(key).unwrap_or_else(|e| {
            fail_env(format!(
                "result store {}: record {:016x}.{:016x}: {e}",
                dir.display(),
                key.identity,
                key.variant
            ))
        })
    };
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let mut differ = Vec::new();
    let mut matching = 0usize;
    for key in a.keys() {
        match fetch(&mut b, b_dir, key) {
            None => only_a.push(key),
            Some(theirs) => {
                let ours = fetch(&mut a, &args.store, key).expect("key listed by the store");
                if ours == theirs {
                    matching += 1;
                } else {
                    differ.push(key);
                }
            }
        }
    }
    for key in b.keys() {
        if fetch(&mut a, &args.store, key).is_none() {
            only_b.push(key);
        }
    }
    let key_list = |keys: &[RecordKey]| {
        Json::arr(
            keys.iter()
                .map(|k| Json::str(format!("{:016x}.{:016x}", k.identity, k.variant)))
                .collect(),
        )
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("against", Json::str(b_dir.display().to_string())),
            ("matching", Json::int(matching)),
            ("only_store", key_list(&only_a)),
            ("only_against", key_list(&only_b)),
            ("differing", key_list(&differ)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for key in &only_a {
            println!(
                "only {}: {:016x}.{:016x}",
                args.store.display(),
                key.identity,
                key.variant
            );
        }
        for key in &only_b {
            println!(
                "only {}: {:016x}.{:016x}",
                b_dir.display(),
                key.identity,
                key.variant
            );
        }
        for key in &differ {
            println!(
                "payloads differ: {:016x}.{:016x}",
                key.identity, key.variant
            );
        }
        println!(
            "{} matching, {} only in {}, {} only in {}, {} differing",
            matching,
            only_a.len(),
            args.store.display(),
            only_b.len(),
            b_dir.display(),
            differ.len()
        );
    }
    if !(only_a.is_empty() && only_b.is_empty() && differ.is_empty()) {
        std::process::exit(1);
    }
}

fn run_gc(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadWrite);
    let report = match handle.lock().gc() {
        Ok(r) => r,
        Err(e) => fail_env(format!(
            "result store {}: gc failed: {e}",
            args.store.display()
        )),
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            ("kept", Json::int(report.kept as usize)),
            ("dropped", Json::int(report.dropped as usize)),
            ("bytes_before", Json::num(report.bytes_before as f64)),
            ("bytes_after", Json::num(report.bytes_after as f64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: kept {} records, dropped {} superseded, {} -> {} bytes",
            args.store.display(),
            report.kept,
            report.dropped,
            report.bytes_before,
            report.bytes_after
        );
    }
}

fn run_verify(args: &Args) {
    let handle = open(&args.store, StorePolicy::ReadOnly);
    let report = match handle.lock().verify() {
        Ok(r) => r,
        Err(e) => fail_env(format!(
            "result store {}: verify failed: {e}",
            args.store.display()
        )),
    };
    if args.json {
        let doc = Json::obj(vec![
            ("store", Json::str(args.store.display().to_string())),
            (
                "records_scanned",
                Json::int(report.records_scanned as usize),
            ),
            ("live_records", Json::int(report.live_records as usize)),
            ("payload_bytes", Json::num(report.payload_bytes as f64)),
            ("ok", Json::Bool(true)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "{}: ok — {} records scanned ({} live), {} payload bytes, every checksum verified",
            args.store.display(),
            report.records_scanned,
            report.live_records,
            report.payload_bytes
        );
    }
}

/// `events <FILE>`: summarise an event log written by `figures --events` /
/// `tune --events` — counts by kind, the store cache-hit ratio, the slowest cells.
fn run_events(args: &Args) {
    let path = &args.events_file;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_env(format!("event log {}: {e}", path.display())));
    let mut by_kind: Vec<(String, usize)> = Vec::new();
    let mut hits = 0usize;
    let mut scheduled = 0usize;
    let mut panicked = 0usize;
    let mut reports = 0usize;
    let mut report_bytes = 0.0f64;
    let mut finished: Vec<(String, String, f64)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let malformed = |what: &str| -> ! {
            fail_env(format!(
                "event log {}: line {}: {what}",
                path.display(),
                idx + 1
            ))
        };
        let doc = Json::parse(line).unwrap_or_else(|e| malformed(&format!("not JSON: {e}")));
        match doc.get("schema").and_then(Json::as_str) {
            Some(schema) if schema == EVENTS_SCHEMA_ID => {}
            Some(schema) => malformed(&format!("schema '{schema}' is not '{EVENTS_SCHEMA_ID}'")),
            None => malformed("no 'schema' field"),
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| malformed("no 'kind' field"))
            .to_string();
        match by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((kind.clone(), 1)),
        }
        match kind.as_str() {
            "cell_store_hit" => hits += 1,
            "cell_scheduled" => scheduled += 1,
            "cell_panicked" => panicked += 1,
            "report_written" => {
                reports += 1;
                report_bytes += doc.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "cell_finished" => finished.push((
                doc.get("experiment")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| malformed("cell_finished without 'experiment'"))
                    .to_string(),
                doc.get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| malformed("cell_finished without 'label'"))
                    .to_string(),
                doc.get("wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| malformed("cell_finished without 'wall_ms'")),
            )),
            _ => {}
        }
    }
    let total: usize = by_kind.iter().map(|(_, n)| n).sum();
    by_kind.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let cells = hits + scheduled;
    let hit_ratio = if cells > 0 {
        hits as f64 / cells as f64
    } else {
        0.0
    };
    finished.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
    finished.truncate(5);
    if args.json {
        let doc = Json::obj(vec![
            ("log", Json::str(path.display().to_string())),
            ("schema", Json::str(EVENTS_SCHEMA_ID)),
            ("events", Json::int(total)),
            (
                "by_kind",
                Json::obj(
                    by_kind
                        .iter()
                        .map(|(k, n)| (k.as_str(), Json::int(*n)))
                        .collect(),
                ),
            ),
            ("cells", Json::int(cells)),
            ("store_hits", Json::int(hits)),
            ("cache_hit_ratio", Json::num(hit_ratio)),
            ("panicked", Json::int(panicked)),
            ("reports_written", Json::int(reports)),
            ("report_bytes", Json::num(report_bytes)),
            (
                "slowest_cells",
                Json::arr(
                    finished
                        .iter()
                        .map(|(experiment, label, wall_ms)| {
                            Json::obj(vec![
                                ("experiment", Json::str(experiment)),
                                ("label", Json::str(label)),
                                ("wall_ms", Json::num(*wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!("{}: {total} events ({EVENTS_SCHEMA_ID})", path.display());
        for (kind, n) in &by_kind {
            println!("  {kind:<16} {n:>8}");
        }
        println!(
            "cells: {cells} ({hits} served from the store, {:.1}% hit ratio); {panicked} panicked",
            hit_ratio * 100.0
        );
        println!("reports: {reports} files, {report_bytes:.0} bytes");
        if !finished.is_empty() {
            println!("slowest cells:");
            for (experiment, label, wall_ms) in &finished {
                println!("  {experiment}:{label:<40} {wall_ms:>9.1} ms");
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => fail(e),
    };
    match args.command {
        Command::Stats => run_stats(&args),
        Command::Query => run_query(&args),
        Command::Diff => run_diff(&args),
        Command::Gc => run_gc(&args),
        Command::Verify => run_verify(&args),
        Command::Events => run_events(&args),
    }
}
