//! `bench_gate` — the simulator hot-path regression gate.
//!
//! Compares a freshly generated `BENCH_sim.json` (written by `figures --profile`) against
//! the committed baseline and fails when any phase's **share** of the per-cell time grows
//! past the tolerance. Shares, not absolute nanoseconds: CI runners and developer machines
//! differ wildly in clock speed and contention, but the *distribution* of time across the
//! instrumented phases is a property of the code. A phase whose share balloons means the
//! hot path regressed there, whatever the host.
//!
//! A candidate share must satisfy `share <= baseline_share * 1.10 + 0.02` — the
//! multiplicative term catches regressions in the big phases, the additive floor keeps
//! tiny phases (well under a percent) from tripping the gate on noise.
//!
//! The gate also checks per-phase **call counts per profiled cell**, which are
//! deterministic for a fixed experiment grid: a drop means instrumentation was lost, a
//! rise means a hot-path loop got longer. Counts may differ when the grids differ (the
//! committed baseline is a `--quick` sweep), so this check only applies when both files
//! profiled the same cell count.

use athena_engine::json::Json;
use athena_harness::cli;
use std::fmt::Write as _;

/// Multiplicative share tolerance (10%).
const SHARE_FACTOR: f64 = 1.10;
/// Additive share floor, absorbing noise in sub-percent phases.
const SHARE_MARGIN: f64 = 0.02;
/// Tolerated relative drift of calls-per-cell when the grids match (1%).
const CALLS_TOLERANCE: f64 = 0.01;

struct Report {
    schema: String,
    profiled_cells: f64,
    total_nanos: f64,
    /// Phase name → (calls, nanos), in file order.
    phases: Vec<(String, f64, f64)>,
}

fn load(path: &str) -> Report {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| cli::fail(format!("cannot read '{path}': {e}")));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| cli::fail(format!("'{path}' is not valid JSON: {e:?}")));
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or_else(|| cli::fail(format!("'{path}' has no schema field")))
        .to_string();
    let profiled_cells = doc
        .get("profiled_cells")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| cli::fail(format!("'{path}' has no profiled_cells field")));
    let cell_phases = doc
        .get("cell_phases")
        .unwrap_or_else(|| cli::fail(format!("'{path}' has no cell_phases object")));
    let total_nanos = cell_phases
        .get("total_nanos")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| cli::fail(format!("'{path}' has no cell_phases.total_nanos")));
    let phases = match cell_phases.get("phases") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(name, v)| {
                let calls = v.get("calls").and_then(Json::as_f64).unwrap_or(0.0);
                let nanos = v.get("nanos").and_then(Json::as_f64).unwrap_or(0.0);
                (name.clone(), calls, nanos)
            })
            .collect(),
        _ => cli::fail(format!("'{path}' has no cell_phases.phases object")),
    };
    Report {
        schema,
        profiled_cells,
        total_nanos,
        phases,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", cli::BENCH_GATE_HELP);
        return;
    }
    if args.iter().any(|a| a == "--version") {
        println!("bench_gate {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut positional = Vec::new();
    let mut out = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| cli::fail("--out needs a file path")),
                )
            }
            _ if arg.starts_with("--") => cli::fail(format!("unknown option '{arg}'")),
            _ => positional.push(arg),
        }
    }
    let [baseline_path, candidate_path] = positional.as_slice() else {
        cli::fail(
            "usage: bench_gate <baseline BENCH_sim.json> <candidate BENCH_sim.json> [--out <FILE>]",
        );
    };

    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    if baseline.schema != candidate.schema {
        cli::fail(format!(
            "schema mismatch: baseline '{}' vs candidate '{}'",
            baseline.schema, candidate.schema
        ));
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "hot-path phase comparison ({} baseline cells @ {:.2} ms/cell, {} candidate cells @ {:.2} ms/cell)",
        baseline.profiled_cells,
        baseline.total_nanos / baseline.profiled_cells.max(1.0) / 1e6,
        candidate.profiled_cells,
        candidate.total_nanos / candidate.profiled_cells.max(1.0) / 1e6,
    );
    let _ = writeln!(
        report,
        "  {:<20} {:>10} {:>10} {:>12} {:>12}  verdict",
        "phase", "base %", "cand %", "base c/cell", "cand c/cell"
    );

    let same_grid = baseline.profiled_cells == candidate.profiled_cells;
    let mut failures = Vec::new();
    for (name, base_calls, base_nanos) in &baseline.phases {
        let Some((_, cand_calls, cand_nanos)) = candidate.phases.iter().find(|(n, _, _)| n == name)
        else {
            failures.push(format!("phase '{name}' disappeared from the candidate"));
            continue;
        };
        let base_share = base_nanos / baseline.total_nanos.max(1.0);
        let cand_share = cand_nanos / candidate.total_nanos.max(1.0);
        let share_ok = cand_share <= base_share * SHARE_FACTOR + SHARE_MARGIN;
        let base_cpc = base_calls / baseline.profiled_cells.max(1.0);
        let cand_cpc = cand_calls / candidate.profiled_cells.max(1.0);
        let calls_ok =
            !same_grid || (cand_cpc - base_cpc).abs() <= base_cpc.max(1.0) * CALLS_TOLERANCE;
        let verdict = match (share_ok, calls_ok) {
            (true, true) => "ok",
            (false, _) => "SHARE REGRESSED",
            (_, false) => "CALLS DRIFTED",
        };
        let _ = writeln!(
            report,
            "  {name:<20} {:>9.1}% {:>9.1}% {:>12.1} {:>12.1}  {verdict}",
            base_share * 100.0,
            cand_share * 100.0,
            base_cpc,
            cand_cpc,
        );
        if !share_ok {
            failures.push(format!(
                "phase '{name}' share grew from {:.2}% to {:.2}% (limit {:.2}%)",
                base_share * 100.0,
                cand_share * 100.0,
                (base_share * SHARE_FACTOR + SHARE_MARGIN) * 100.0
            ));
        }
        if !calls_ok {
            failures.push(format!(
                "phase '{name}' calls/cell drifted from {base_cpc:.1} to {cand_cpc:.1} on the same grid",
            ));
        }
    }
    for (name, _, _) in &candidate.phases {
        if !baseline.phases.iter().any(|(n, _, _)| n == name) {
            let _ = writeln!(report, "  {name:<20} (new phase, not in baseline)");
        }
    }

    print!("{report}");
    if let Some(path) = out {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, &report)
            .unwrap_or_else(|e| cli::fail(format!("cannot write '{path}': {e}")));
        println!("wrote {path}");
    }
    if failures.is_empty() {
        println!("gate: ok — no phase regressed past share*{SHARE_FACTOR}+{SHARE_MARGIN}");
    } else {
        eprintln!("gate: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
