//! The `tune` CLI: design-space exploration over Athena agent configurations on the
//! parallel experiment engine.
//!
//! ```text
//! cargo run --release -p athena-harness --bin tune -- --quick --jobs 4
//! cargo run --release -p athena-harness --bin tune -- --strategy halving --samples 16 --rungs 3
//! cargo run --release -p athena-harness --bin tune -- --quick --trace-dir traces/
//! cargo run --release -p athena-harness --bin tune -- --quick --bench-report
//! ```
//!
//! Writes `leaderboard.csv`, `leaderboard.json` (schema `athena-tune-v1`) and `best.json`
//! (the winning configuration) into `--out` (default `results/tune`); `--bench-report`
//! drops its `BENCH_tune.json` snapshot next to `BENCH_engine.json` in the working
//! directory unless `--out` relocates it. The leaderboard is
//! byte-identical at any `--jobs` value and under `--trace-dir` replay; the winning
//! configuration, fed back through `figures --fig tuned --tuned-config .../best.json`
//! with matching options, reproduces its claimed speedup exactly. Run `tune --help` for
//! the full flag reference (also rendered into `docs/CLI.md`).

use std::path::PathBuf;
use std::time::Instant;

use athena_engine::json::Json;
use athena_engine::report::{metrics_snapshot_json, TUNE_BENCH_SCHEMA};
use athena_engine::{available_parallelism, with_recording};
use athena_harness::cli::{fail, fail_env, TUNE_HELP as HELP};
use athena_harness::experiments::tuning_set;
use athena_harness::{DistPool, ProbeSink, RunOptions, StoreHandle, StorePolicy, WorkerCommand};
use athena_tune::{tune, DesignSpace, Leaderboard, Objective, TuneOptions, TuneStrategy};

struct Args {
    space: DesignSpace,
    strategy: TuneStrategy,
    run: RunOptions,
    tune_opts: TuneOptions,
    /// `--out`, when given. Leaderboard files default to `results/tune/`; the
    /// `--bench-report` snapshot defaults to the working directory (`BENCH_tune.json`,
    /// matching `figures --bench-report`); an explicit `--out` relocates both.
    out_dir: Option<PathBuf>,
    top: usize,
    bench_report: bool,
    /// The parallel worker count (`--jobs`, or every hardware thread).
    parallel_jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut workload_limit: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut strategy_name = "halving".to_string();
    let mut samples = 16usize;
    let mut eta = 2usize;
    let mut rungs = 3usize;
    let mut seed: Option<u64> = None;
    let mut objective = Objective::Speedup;
    let mut out_dir: Option<PathBuf> = None;
    let mut top = 10usize;
    let mut bench_report = false;
    let mut store_dir: Option<PathBuf> = None;
    let mut store_policy: Option<String> = None;
    let mut events: Option<PathBuf> = None;
    let mut progress = false;
    let mut workers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--bench-report" => bench_report = true,
            "--instructions" => {
                instructions = Some(
                    value("--instructions")?
                        .parse()
                        .map_err(|e| format!("bad --instructions: {e}"))?,
                )
            }
            "--workloads" => {
                workload_limit = Some(
                    value("--workloads")?
                        .parse()
                        .map_err(|e| format!("bad --workloads: {e}"))?,
                )
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--trace-dir" => trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--strategy" => strategy_name = value("--strategy")?,
            "--samples" => {
                samples = value("--samples")?
                    .parse()
                    .map_err(|e| format!("bad --samples: {e}"))?;
                if samples == 0 {
                    return Err("--samples must be at least 1".to_string());
                }
            }
            "--eta" => {
                eta = value("--eta")?
                    .parse()
                    .map_err(|e| format!("bad --eta: {e}"))?
            }
            "--rungs" => {
                rungs = value("--rungs")?
                    .parse()
                    .map_err(|e| format!("bad --rungs: {e}"))?
            }
            "--seed" => {
                let text = value("--seed")?;
                let parsed = match text.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse(),
                };
                seed = Some(parsed.map_err(|e| format!("bad --seed: {e}"))?);
            }
            "--objective" => {
                let name = value("--objective")?;
                objective = Objective::from_name(&name).ok_or(format!(
                    "unknown objective '{name}' (speedup, accuracy-weighted, \
                     coverage-weighted, bandwidth-aware)"
                ))?;
            }
            "--events" => events = Some(PathBuf::from(value("--events")?)),
            "--progress" => progress = true,
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                workers = Some(n);
            }
            "--worker" => {
                return Err(
                    "--worker must be the sole argument (it is how a coordinator invokes \
                     its worker processes, not a run option)"
                        .to_string(),
                )
            }
            "--store" => store_dir = Some(PathBuf::from(value("--store")?)),
            "--store-policy" => store_policy = Some(value("--store-policy")?),
            "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
            "--top" => {
                top = value("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            "--version" => {
                println!("tune {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    if bench_report && store_dir.is_some() {
        return Err(
            "--bench-report measures search wall-clock; a result store would serve \
             cached cells and corrupt the timings — drop --store"
                .to_string(),
        );
    }
    if workers.is_some() && bench_report {
        return Err(
            "--bench-report times the in-process pool against the serial path; a \
             distributed run is a different measurement — drop --workers"
                .to_string(),
        );
    }
    if store_policy.is_some() && store_dir.is_none() {
        return Err("--store-policy only applies with --store <DIR>".to_string());
    }
    let mut run = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(i) = instructions {
        run.instructions = i;
    }
    if let Some(w) = workload_limit {
        run.workload_limit = Some(w);
    }
    run.trace_dir = trace_dir;
    let parallel_jobs = jobs.unwrap_or_else(available_parallelism);
    run.jobs = parallel_jobs;

    let space = if quick {
        DesignSpace::quick()
    } else {
        DesignSpace::paper_default()
    };
    let strategy = match strategy_name.as_str() {
        "halving" => TuneStrategy::Halving {
            samples,
            eta,
            rungs,
        },
        "random" => TuneStrategy::Random { samples },
        other => return Err(format!("unknown strategy '{other}' (halving, random)")),
    };
    let mut tune_opts = TuneOptions::new(run.instructions)
        .with_jobs(run.jobs)
        .with_objective(objective);
    if let Some(s) = seed {
        tune_opts = tune_opts.with_seed(s);
    }
    if let Some(dir) = &run.trace_dir {
        tune_opts = tune_opts.with_trace_dir(dir.clone());
    }
    let policy = match &store_policy {
        Some(name) => StorePolicy::from_name(name)
            .ok_or_else(|| format!("unknown --store-policy '{name}' (rw, ro, refresh, off)"))?,
        None => StorePolicy::ReadWrite,
    };
    // `off` skips the store entirely; an unopenable or corrupt store exits 1 here
    // (environment failure), not through the usage-error path (exit 2).
    if let Some(dir) = store_dir.filter(|_| policy != StorePolicy::Off) {
        match StoreHandle::open(&dir, policy) {
            Ok(handle) => {
                run.store = Some(handle.clone());
                tune_opts = tune_opts.with_store(handle);
            }
            Err(e) => fail_env(format!("result store {}: {e}", dir.display())),
        }
    }
    if let Some(path) = events {
        let sink = ProbeSink::create(&path)
            .unwrap_or_else(|e| fail_env(format!("event log {}: {e}", path.display())));
        run.probe = Some(sink.clone());
        tune_opts = tune_opts.with_probe(sink);
    }
    run.progress = progress;
    tune_opts = tune_opts.with_progress(progress);
    if let Some(n) = workers {
        let command = WorkerCommand::self_worker().unwrap_or_else(|e| fail_env(e));
        let pool = DistPool::new(command, n);
        run.dist = Some(pool.clone());
        tune_opts = tune_opts.with_dist(pool);
    }
    Ok(Args {
        space,
        strategy,
        run,
        tune_opts,
        out_dir,
        top,
        bench_report,
        parallel_jobs,
    })
}

fn write_file(probe: Option<&ProbeSink>, path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail_env(format!("cannot create {}: {e}", dir.display()));
            }
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        fail_env(format!("cannot write {}: {e}", path.display()));
    }
    if let Some(sink) = probe {
        sink.emit(&athena_engine::Event::ReportWritten {
            path: path.display().to_string(),
            bytes: contents.len(),
        });
    }
    println!("wrote {}", path.display());
}

fn print_summary(board: &Leaderboard, top: usize) {
    println!(
        "objective {} over {} workloads; schedule: {}",
        board.objective.name(),
        board.workloads.len(),
        board
            .rungs
            .iter()
            .map(|r| format!("{}x{}", r.candidates, r.budget))
            .collect::<Vec<String>>()
            .join(" -> "),
    );
    println!("rank  objective   speedup   budget configuration");
    for (rank, e) in board.entries.iter().take(top).enumerate() {
        let features: Vec<&str> = e.config.features.iter().map(|f| f.short_name()).collect();
        println!(
            "{:<5} {:>9.4} {:>9.4} {:>8} a{} g{} e{} t{} [{}]",
            rank + 1,
            e.objective,
            e.speedup,
            e.budget,
            e.config.alpha,
            e.config.gamma,
            e.config.epsilon,
            e.config.tau,
            features.join("+"),
        );
    }
    let best = board.best();
    println!(
        "best: candidate {} with {} {:.4} (speedup {:.4}) after {} evaluations",
        best.id,
        board.objective.name(),
        best.objective,
        best.speedup,
        board.evaluations,
    );
}

/// `--bench-report`: the same search at `--jobs 1` and at the parallel worker count, a
/// byte-identity check between the two leaderboards, and a `BENCH_tune.json` snapshot.
fn run_bench_report(args: &Args, board: &Leaderboard, parallel_wall: std::time::Duration) {
    // The serial verification pass is not part of the observed run: it would interleave a
    // second batch of events into the same log and double the profile counts. The metrics
    // snapshot is taken here, before that pass, for the same reason.
    let metrics = metrics_snapshot_json(&athena_engine::metrics().snapshot());
    let mut serial_opts = args.tune_opts.clone().with_jobs(1);
    serial_opts.probe = None;
    serial_opts.progress = false;
    let start = Instant::now();
    let serial = tune(
        &args.space,
        &args.strategy,
        &tuning_set(&args.run),
        &serial_opts,
    );
    let serial_wall = start.elapsed();
    let identical = serial.to_csv() == board.to_csv()
        && serial.to_json().to_string() == board.to_json().to_string();
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    println!(
        "bench: serial {serial_wall:.1?}, parallel {parallel_wall:.1?} ({} jobs), \
         speedup {speedup:.2}x, identical: {identical}",
        args.parallel_jobs
    );
    if !identical {
        fail_env("parallel leaderboard diverged from the serial run");
    }
    let host = available_parallelism();
    let mut pairs = vec![
        ("jobs", Json::int(args.parallel_jobs)),
        ("host_parallelism", Json::int(host)),
    ];
    if host < 4 {
        pairs.push((
            "note",
            Json::str(format!(
                "measured on a {host}-thread host: parallel speedup needs hardware \
                 parallelism; determinism (identical leaderboards) is the asserted \
                 property here and in tests/tune_determinism.rs"
            )),
        ));
    }
    pairs.extend(vec![
        ("instructions", Json::num(board.instructions as f64)),
        ("workloads", Json::int(board.workloads.len())),
        ("candidates", Json::int(board.entries.len())),
        ("evaluations", Json::int(board.evaluations)),
        ("serial_ms", Json::num(serial_wall.as_secs_f64() * 1e3)),
        ("parallel_ms", Json::num(parallel_wall.as_secs_f64() * 1e3)),
        ("speedup", Json::num(speedup)),
        ("identical_to_serial", Json::Bool(identical)),
        ("metrics", metrics),
    ]);
    write_file(
        args.run.probe.as_ref(),
        // An explicit --out relocates the snapshot; by default it lands in the working
        // directory, next to BENCH_engine.json (so the committed root copy regenerates
        // from the README's `tune --quick --bench-report` as-is).
        &match &args.out_dir {
            Some(dir) => dir.join("BENCH_tune.json"),
            None => PathBuf::from("BENCH_tune.json"),
        },
        &TUNE_BENCH_SCHEMA.document(pairs).to_pretty(),
    );
}

fn main() {
    // Worker mode: serve shards from a coordinator (`tune --workers N` spawns this same
    // binary with `--worker`) over stdin/stdout until the coordinator closes the pipe.
    if std::env::args().nth(1).as_deref() == Some("--worker") && std::env::args().count() == 2 {
        athena_engine::dist::serve();
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => fail(e),
    };
    let workloads = tuning_set(&args.run);
    let start = Instant::now();
    let (board, recorded) =
        with_recording(|| tune(&args.space, &args.strategy, &workloads, &args.tune_opts));
    let wall = start.elapsed();
    print_summary(&board, args.top);
    println!(
        "[tune completed in {wall:.1?} with {} jobs: {} candidates, {} evaluations]\n",
        args.run.jobs,
        board.entries.len(),
        board.evaluations
    );
    if let Some(store) = &args.run.store {
        let cached = recorded.iter().filter(|c| c.cached).count();
        println!(
            "[store] {} simulated, {cached} cached ({})",
            recorded.len() - cached,
            store.dir().display()
        );
    }
    let dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/tune"));
    let probe = args.run.probe.as_ref();
    write_file(probe, &dir.join("leaderboard.csv"), &board.to_csv());
    write_file(
        probe,
        &dir.join("leaderboard.json"),
        &board.to_json().to_pretty(),
    );
    write_file(
        probe,
        &dir.join("best.json"),
        &board.best_json().to_pretty(),
    );
    if args.bench_report {
        run_bench_report(&args, &board, wall);
    }
}
