//! The `figures` CLI: regenerates the paper's tables and figures on the parallel
//! experiment engine.
//!
//! ```text
//! cargo run --release -p athena-harness --bin figures -- --fig fig7
//! cargo run --release -p athena-harness --bin figures -- --all --quick --jobs 4
//! cargo run --release -p athena-harness --bin figures -- --all --quick --json --out results/
//! cargo run --release -p athena-harness --bin figures -- --all --quick --bench-report
//! cargo run --release -p athena-harness --bin figures -- --fig fig7 --trace-dir traces/
//! cargo run --release -p athena-harness --bin figures -- --timeline --quick --out results/
//! ```
//!
//! Run `figures --help` for the full flag reference (also rendered into `docs/CLI.md`).
//! `--jobs N` sets the engine worker count (default: every hardware thread); `--jobs 1`
//! is the exact serial path and produces byte-identical tables. `--json` writes one
//! machine-readable result file per experiment (aggregate table + per-cell records).
//! `--bench-report` times every selected experiment at `--jobs 1` and at the parallel
//! worker count, verifies the tables match byte-for-byte, and writes the
//! `BENCH_engine.json` performance snapshot. `--trace-dir` replays recorded traces
//! (written by the `trace` CLI) in place of in-process generation. `--timeline` runs the
//! windowed-telemetry study (per-cell time series + learning-curve table). `--store DIR`
//! attaches the persistent result store: finished cells are cached and a warm re-run with
//! the same options simulates nothing while producing byte-identical tables.
//! `--workers N` distributes every batch across N spawned worker processes (this same
//! binary in `--worker` mode) with tables still byte-identical to the in-process run;
//! `--events` and `--profile` compose with it — workers forward their cell events and
//! phase profiles back over the wire, so the log and `BENCH_sim.json` cover the whole
//! distributed run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use athena_engine::json::Json;
use athena_engine::report::{
    figure_report, metrics_snapshot_json, phase_profile_json, timeline_report, BenchReport,
    ExperimentBench, SIM_BENCH_SCHEMA,
};
use athena_engine::{
    available_parallelism, set_profiling, take_cell, with_recording, CellRecord, Event,
    PhaseProfile, ProbeSink,
};
use athena_harness::cli::{fail, fail_env, FIGURES_HELP as HELP};
use athena_harness::experiments::{experiment_names, run_experiment};
use athena_harness::timeline::timeline_study;
use athena_harness::{DistPool, RunOptions, StoreHandle, StorePolicy, WorkerCommand};
use athena_telemetry::DEFAULT_WINDOW_INSTRUCTIONS;

struct Args {
    figs: Vec<String>,
    opts: RunOptions,
    out_dir: Option<PathBuf>,
    json: bool,
    bench_report: bool,
    timeline: bool,
    /// Hot-path phase profiling (the `--profile` flag): print a per-phase breakdown and
    /// write `BENCH_sim.json` + `profile.folded`.
    profile: bool,
    /// Telemetry window length for `--timeline` (the `--window` flag).
    window: u64,
    /// The parallel worker count used by `--bench-report` (the `--jobs` flag, or every
    /// hardware thread when the flag is absent).
    parallel_jobs: usize,
}

/// Counts one batch's cache hits: `(simulated, cached)`.
fn cache_split(cells: &[athena_engine::CellRecord]) -> (usize, usize) {
    let cached = cells.iter().filter(|c| c.cached).count();
    (cells.len() - cached, cached)
}

fn parse_args() -> Result<Args, String> {
    let mut figs = Vec::new();
    let mut all = false;
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut workload_limit: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut tuned_config: Option<PathBuf> = None;
    let mut out_dir = None;
    let mut json = false;
    let mut bench_report = false;
    let mut timeline = false;
    let mut window: Option<u64> = None;
    let mut store_dir: Option<PathBuf> = None;
    let mut store_policy: Option<String> = None;
    let mut events: Option<PathBuf> = None;
    let mut progress = false;
    let mut profile = false;
    let mut workers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => figs.push(args.next().ok_or("--fig needs a value")?),
            "--all" => all = true,
            "--quick" => quick = true,
            "--json" => json = true,
            "--bench-report" => bench_report = true,
            "--timeline" => timeline = true,
            "--window" => {
                let n: u64 = args
                    .next()
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if n == 0 {
                    return Err("--window must be at least 1 instruction".to_string());
                }
                window = Some(n);
            }
            "--instructions" => {
                instructions = Some(
                    args.next()
                        .ok_or("--instructions needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --instructions: {e}"))?,
                )
            }
            "--workloads" => {
                workload_limit = Some(
                    args.next()
                        .ok_or("--workloads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --workloads: {e}"))?,
                )
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(
                    args.next().ok_or("--trace-dir needs a value")?,
                ))
            }
            "--tuned-config" => {
                tuned_config = Some(PathBuf::from(
                    args.next().ok_or("--tuned-config needs a value")?,
                ))
            }
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?))
            }
            "--store-policy" => {
                store_policy = Some(args.next().ok_or("--store-policy needs a value")?)
            }
            "--events" => {
                events = Some(PathBuf::from(args.next().ok_or("--events needs a value")?))
            }
            "--progress" => progress = true,
            "--profile" => profile = true,
            "--workers" => {
                let n: usize = args
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                workers = Some(n);
            }
            "--worker" => {
                return Err(
                    "--worker must be the sole argument (it is how a coordinator invokes \
                     its worker processes, not a run option)"
                        .to_string(),
                )
            }
            "--out" => out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--list" => {
                for n in experiment_names() {
                    println!("{n}");
                }
                std::process::exit(0);
            }
            "--version" => {
                println!("figures {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if bench_report && json {
        return Err(
            "--bench-report writes only BENCH_engine.json; drop --json or run them separately"
                .to_string(),
        );
    }
    if bench_report && store_dir.is_some() {
        return Err(
            "--bench-report measures simulation wall-clock; a result store would serve \
             cached cells and corrupt the timings — drop --store"
                .to_string(),
        );
    }
    if store_policy.is_some() && store_dir.is_none() {
        return Err("--store-policy only applies with --store <DIR>".to_string());
    }
    if timeline && (bench_report || all || !figs.is_empty() || json) {
        return Err(
            "--timeline is a standalone mode and always writes CSV+JSON; \
                    drop --fig/--all/--json/--bench-report"
                .to_string(),
        );
    }
    if window.is_some() && !timeline {
        return Err("--window only applies to --timeline".to_string());
    }
    if profile && bench_report {
        return Err(
            "--bench-report measures raw simulation wall-clock; the profiler's spans \
             would be part of the measurement — drop --profile"
                .to_string(),
        );
    }
    if profile && timeline {
        return Err(
            "--profile aggregates over figure sweeps; the timeline study has its own \
             output mode — drop one of them"
                .to_string(),
        );
    }
    if workers.is_some() && bench_report {
        return Err(
            "--bench-report times the in-process pool against the serial path; a \
             distributed run is a different measurement — drop --workers"
                .to_string(),
        );
    }
    if all {
        figs = experiment_names().iter().map(|s| s.to_string()).collect();
    }
    if figs.is_empty() && !timeline {
        return Err(
            "no experiment selected; use --fig <id>, --all (see --list) or --timeline".to_string(),
        );
    }
    if figs.iter().any(|f| f == "tuned") && tuned_config.is_none() {
        return Err("--fig tuned needs --tuned-config <FILE> (written by `tune`)".to_string());
    }
    if let Some(path) = &tuned_config {
        // Fail fast on a bad file, before any simulation time is spent.
        athena_tune::load_config(path)?;
    }
    let mut opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(i) = instructions {
        opts.instructions = i;
    }
    if let Some(w) = workload_limit {
        opts.workload_limit = Some(w);
    }
    opts.trace_dir = trace_dir;
    opts.tuned_config = tuned_config;
    let parallel_jobs = jobs.unwrap_or_else(available_parallelism);
    opts.jobs = parallel_jobs;
    let policy = match &store_policy {
        Some(name) => StorePolicy::from_name(name)
            .ok_or_else(|| format!("unknown --store-policy '{name}' (rw, ro, refresh, off)"))?,
        None => StorePolicy::ReadWrite,
    };
    // `off` skips the store entirely; an unopenable or corrupt store exits 1 inside
    // `open_store` (environment failure), not through the usage-error path (exit 2).
    if let Some(dir) = store_dir.filter(|_| policy != StorePolicy::Off) {
        opts.store = Some(open_store(&dir, policy));
    }
    // An unwritable event log is an environment failure, surfaced before simulation.
    if let Some(path) = events {
        opts.probe = Some(
            ProbeSink::create(&path)
                .unwrap_or_else(|e| fail_env(format!("event log {}: {e}", path.display()))),
        );
    }
    opts.progress = progress;
    if let Some(n) = workers {
        // A coordinator that cannot locate its own binary cannot spawn workers — an
        // environment failure, not a usage error.
        let command = WorkerCommand::self_worker().unwrap_or_else(|e| fail_env(e));
        opts.dist = Some(DistPool::new(command, n));
    }
    Ok(Args {
        figs,
        opts,
        out_dir,
        json,
        bench_report,
        timeline,
        profile,
        window: window.unwrap_or(DEFAULT_WINDOW_INSTRUCTIONS),
        parallel_jobs,
    })
}

/// Opens the result store or dies loudly: a store that cannot be trusted (corrupt files,
/// a live second writer) must never be silently recomputed over.
fn open_store(dir: &std::path::Path, policy: StorePolicy) -> StoreHandle {
    match StoreHandle::open(dir, policy) {
        Ok(handle) => handle,
        Err(e) => fail_env(format!("result store {}: {e}", dir.display())),
    }
}

/// Writes one report file (creating parent directories), announcing it on stdout and —
/// when an event sink is attached — as a `report_written` event.
fn write_file(probe: Option<&ProbeSink>, path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail_env(format!("cannot create {}: {e}", dir.display()));
            }
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        fail_env(format!("cannot write {}: {e}", path.display()));
    }
    if let Some(sink) = probe {
        sink.emit(&Event::ReportWritten {
            path: path.display().to_string(),
            bytes: contents.len(),
        });
    }
    println!("wrote {}", path.display());
}

/// `--bench-report`: every selected experiment at `--jobs 1` vs the parallel worker count,
/// with a byte-identity check between the two tables.
fn run_bench_report(args: &Args) {
    let mut experiments = Vec::new();
    for fig in &args.figs {
        let serial_opts = args.opts.clone().with_jobs(1);
        let start = Instant::now();
        let Some(serial_table) = run_experiment(fig, &serial_opts) else {
            fail(format!("unknown experiment '{fig}' (see --list)"));
        };
        let serial = start.elapsed();

        let parallel_opts = args.opts.clone().with_jobs(args.parallel_jobs);
        let start = Instant::now();
        let parallel_table = run_experiment(fig, &parallel_opts).expect("known experiment");
        let parallel = start.elapsed();

        let identical = serial_table.to_csv() == parallel_table.to_csv();
        println!(
            "{fig}: serial {serial:.1?}, parallel {parallel:.1?} ({} jobs), speedup {:.2}x, \
             identical: {identical}",
            args.parallel_jobs,
            serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9),
        );
        experiments.push(ExperimentBench {
            name: fig.clone(),
            serial,
            parallel,
            identical,
        });
    }
    let report = BenchReport {
        jobs: args.parallel_jobs,
        host_parallelism: available_parallelism(),
        instructions: args.opts.instructions,
        workload_limit: args.opts.workload_limit,
        experiments,
    };
    println!(
        "overall: {:.2}x speedup with {} jobs, all tables identical to serial: {}",
        report.overall_speedup(),
        report.jobs,
        report.all_identical()
    );
    if !report.all_identical() {
        fail_env("parallel tables diverged from the serial run");
    }
    // `--out DIR` relocates the snapshot; by default it lands in the working directory.
    let path = match &args.out_dir {
        Some(dir) => dir.join("BENCH_engine.json"),
        None => PathBuf::from("BENCH_engine.json"),
    };
    write_file(
        args.opts.probe.as_ref(),
        &path,
        &report.to_json().to_pretty(),
    );
}

/// `--timeline`: the windowed-telemetry study. Prints the learning-curve table and writes
/// one time-series CSV + JSON per (workload × policy) cell, plus `learning_curve.csv`,
/// into `<out|results>/timeline/`.
fn run_timeline(args: &Args) {
    let start = Instant::now();
    let (study, recorded) = with_recording(|| timeline_study(&args.opts, args.window));
    let elapsed = start.elapsed();
    println!("{}", study.curves);
    println!(
        "[timeline completed in {elapsed:.1?} with {} jobs: {} cells, {}-instruction windows]\n",
        args.opts.jobs,
        study.cells.len(),
        study.window_instructions
    );
    if let Some(store) = &args.opts.store {
        let (simulated, cached) = cache_split(&recorded);
        println!(
            "[store] {simulated} simulated, {cached} cached ({})",
            store.dir().display()
        );
    }
    let dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"))
        .join("timeline");
    let probe = args.opts.probe.as_ref();
    write_file(
        probe,
        &dir.join("learning_curve.csv"),
        &study.curves.to_csv(),
    );
    for cell in &study.cells {
        let stem = format!("{}.{}.timeline", cell.workload, cell.coordinator);
        write_file(
            probe,
            &dir.join(format!("{stem}.csv")),
            &cell.timeline.to_csv(),
        );
        let doc = timeline_report(&cell.workload, &cell.coordinator, cell.seed, &cell.timeline);
        write_file(probe, &dir.join(format!("{stem}.json")), &doc.to_pretty());
    }
}

/// One profiled cell retained for the `--profile` report.
struct ProfiledCell {
    experiment: String,
    label: String,
    wall: Duration,
    profile: PhaseProfile,
}

impl ProfiledCell {
    /// Fraction of the cell's recorded wall-clock the phase totals account for. The
    /// `dispatch` root span wraps the whole cell, so this sits near 1.0 (the acceptance
    /// criterion asks for within 10%).
    fn coverage(&self) -> f64 {
        self.profile.total_nanos() as f64 / (self.wall.as_nanos() as f64).max(1.0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("experiment", Json::str(&self.experiment)),
            ("label", Json::str(&self.label)),
            ("wall_ms", Json::num(self.wall.as_secs_f64() * 1e3)),
            ("coverage", Json::num(self.coverage())),
            ("profile", phase_profile_json(&self.profile)),
        ])
    }
}

/// `--profile` epilogue: prints the per-phase breakdown and the slowest cells, and writes
/// `BENCH_sim.json` (schema `athena-sim-bench-v1`) + `profile.folded` (flamegraph
/// collapsed-stack lines) into `--out DIR` or the working directory.
fn write_profile_report(args: &Args, mut cells: Vec<ProfiledCell>) {
    // Everything the engine accrued on this (calling) thread outside the cells
    // themselves: store fetches and batch merges.
    let engine_side = take_cell().unwrap_or_default();
    let mut cell_agg = PhaseProfile::new();
    for cell in &cells {
        cell_agg.merge(&cell.profile);
    }
    let mut total = cell_agg;
    total.merge(&engine_side);

    let grand_nanos = total.total_nanos().max(1);
    println!("hot-path profile ({} simulated cells):", cells.len());
    println!(
        "  {:<20} {:>12} {:>14} {:>7}",
        "phase", "calls", "total ms", "share"
    );
    for stat in total.stats() {
        println!(
            "  {:<20} {:>12} {:>14.3} {:>6.1}%",
            stat.phase.name(),
            stat.calls,
            stat.nanos as f64 / 1e6,
            stat.nanos as f64 * 100.0 / grand_nanos as f64,
        );
    }

    cells.sort_by(|a, b| b.wall.cmp(&a.wall).then_with(|| a.label.cmp(&b.label)));
    let top: Vec<&ProfiledCell> = cells.iter().take(5).collect();
    if !top.is_empty() {
        println!("slowest cells:");
        for cell in &top {
            println!(
                "  {:<44} {:>9.1} ms  (phases cover {:.1}% of wall)",
                format!("{}:{}", cell.experiment, cell.label),
                cell.wall.as_secs_f64() * 1e3,
                cell.coverage() * 100.0,
            );
        }
    }
    println!();

    let coverages: Vec<f64> = cells
        .iter()
        .filter(|c| c.wall > Duration::ZERO)
        .map(ProfiledCell::coverage)
        .collect();
    let doc = SIM_BENCH_SCHEMA.document(vec![
        ("jobs", Json::int(args.opts.jobs)),
        ("instructions", Json::num(args.opts.instructions as f64)),
        (
            "workload_limit",
            match args.opts.workload_limit {
                Some(w) => Json::int(w),
                None => Json::Null,
            },
        ),
        (
            "experiments",
            Json::arr(args.figs.iter().map(Json::str).collect()),
        ),
        ("profiled_cells", Json::int(cells.len())),
        (
            "coverage",
            Json::obj(vec![
                (
                    "min",
                    Json::num(coverages.iter().copied().fold(f64::INFINITY, f64::min)),
                ),
                (
                    "mean",
                    Json::num(coverages.iter().sum::<f64>() / coverages.len().max(1) as f64),
                ),
            ]),
        ),
        ("aggregate", phase_profile_json(&total)),
        ("cell_phases", phase_profile_json(&cell_agg)),
        ("engine_phases", phase_profile_json(&engine_side)),
        (
            "top_cells",
            Json::arr(top.iter().map(|c| c.to_json()).collect()),
        ),
        (
            "metrics",
            metrics_snapshot_json(&athena_engine::metrics().snapshot()),
        ),
    ]);
    let dir = args.out_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    write_file(
        args.opts.probe.as_ref(),
        &dir.join("BENCH_sim.json"),
        &doc.to_pretty(),
    );
    // Collapsed-stack lines (`frame;frame value`), loadable by flamegraph tooling.
    let folded: String = total
        .stats()
        .map(|s| format!("{} {}\n", s.phase.stack_path(), s.nanos))
        .collect();
    write_file(
        args.opts.probe.as_ref(),
        &dir.join("profile.folded"),
        &folded,
    );
}

fn main() {
    // Worker mode: serve shards from a coordinator (`figures --workers N` spawns this
    // same binary with `--worker`) over stdin/stdout until the coordinator closes the
    // pipe. Nothing else — no flags, no tables.
    if std::env::args().nth(1).as_deref() == Some("--worker") && std::env::args().count() == 2 {
        athena_engine::dist::serve();
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => fail(e),
    };
    if args.profile {
        set_profiling(true);
    }
    if args.bench_report {
        run_bench_report(&args);
        return;
    }
    if args.timeline {
        run_timeline(&args);
        return;
    }
    // `--json` without an explicit directory lands next to the CSVs or in `results/`.
    let json_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    let mut total_simulated = 0usize;
    let mut total_cached = 0usize;
    let mut profiled: Vec<ProfiledCell> = Vec::new();
    for fig in &args.figs {
        let start = Instant::now();
        let (table, cells) = with_recording(|| run_experiment(fig, &args.opts));
        let elapsed = start.elapsed();
        match table {
            Some(table) => {
                println!("{table}");
                let store_note = if args.opts.store.is_some() {
                    let (simulated, cached) = cache_split(&cells);
                    total_simulated += simulated;
                    total_cached += cached;
                    format!("; {simulated} simulated, {cached} cached")
                } else {
                    String::new()
                };
                println!(
                    "[{fig} completed in {elapsed:.1?} with {} jobs{store_note}]\n",
                    args.opts.jobs
                );
                if args.profile {
                    profiled.extend(cells.iter().filter_map(|c: &CellRecord| {
                        c.profile.map(|profile| ProfiledCell {
                            experiment: c.experiment.clone(),
                            label: c.label.clone(),
                            wall: c.wall,
                            profile,
                        })
                    }));
                }
                if let Some(dir) = &args.out_dir {
                    write_file(
                        args.opts.probe.as_ref(),
                        &dir.join(format!("{fig}.csv")),
                        &table.to_csv(),
                    );
                }
                if args.json {
                    let doc = figure_report(fig, args.opts.jobs, elapsed, &table, &cells);
                    write_file(
                        args.opts.probe.as_ref(),
                        &json_dir.join(format!("{fig}.json")),
                        &doc.to_pretty(),
                    );
                }
            }
            None => fail(format!("unknown experiment '{fig}' (see --list)")),
        }
    }
    if let Some(store) = &args.opts.store {
        println!(
            "[store] {total_simulated} simulated, {total_cached} cached ({})",
            store.dir().display()
        );
    }
    if args.profile {
        write_profile_report(&args, profiled);
    }
}
