//! The `figures` CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p athena-harness --bin figures -- --fig fig7
//! cargo run --release -p athena-harness --bin figures -- --all --quick
//! cargo run --release -p athena-harness --bin figures -- --fig fig14 --instructions 500000 --out results/
//! ```

use std::path::PathBuf;
use std::time::Instant;

use athena_harness::experiments::{experiment_names, run_experiment};
use athena_harness::RunOptions;

struct Args {
    figs: Vec<String>,
    opts: RunOptions,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut figs = Vec::new();
    let mut all = false;
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut workload_limit: Option<usize> = None;
    let mut out_dir = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => figs.push(args.next().ok_or("--fig needs a value")?),
            "--all" => all = true,
            "--quick" => quick = true,
            "--instructions" => {
                instructions = Some(
                    args.next()
                        .ok_or("--instructions needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --instructions: {e}"))?,
                )
            }
            "--workloads" => {
                workload_limit = Some(
                    args.next()
                        .ok_or("--workloads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --workloads: {e}"))?,
                )
            }
            "--out" => out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--list" => {
                for n in experiment_names() {
                    println!("{n}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig <id>]... [--all] [--quick] \
                     [--instructions N] [--workloads N] [--out DIR] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if all {
        figs = experiment_names().iter().map(|s| s.to_string()).collect();
    }
    if figs.is_empty() {
        return Err("no experiment selected; use --fig <id> or --all (see --list)".to_string());
    }
    let mut opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(i) = instructions {
        opts.instructions = i;
    }
    if let Some(w) = workload_limit {
        opts.workload_limit = Some(w);
    }
    Ok(Args {
        figs,
        opts,
        out_dir,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    for fig in &args.figs {
        let start = Instant::now();
        match run_experiment(fig, args.opts) {
            Some(table) => {
                println!("{table}");
                println!("[{fig} completed in {:.1?}]\n", start.elapsed());
                if let Some(dir) = &args.out_dir {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("error: cannot create {}: {e}", dir.display());
                        std::process::exit(1);
                    }
                    let path = dir.join(format!("{fig}.csv"));
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                    println!("wrote {}", path.display());
                }
            }
            None => {
                eprintln!("error: unknown experiment '{fig}' (see --list)");
                std::process::exit(2);
            }
        }
    }
}
