//! The `figures --timeline` study: windowed time series and learning curves for every
//! online coordination policy.
//!
//! One cell per (workload × policy) on CD1, each run with windowed telemetry enabled.
//! Like every experiment, the grid is enumerated as engine jobs and each cell is a pure
//! function of its job, so the per-cell series — not just the aggregate table — are
//! byte-identical at any `--jobs` count and under `--trace-dir` replay
//! (`tests/timeline_determinism.rs` locks this in).

use athena_engine::{CellResult, Job};
use athena_sim::EpochStats;
use athena_telemetry::{Timeline, WindowMetrics};

use crate::experiments::{cell_job, workload_set};
use crate::{CoordinatorKind, ExperimentTable, OcpKind, PrefetcherKind, RunOptions, SystemConfig};

/// The coordination policies the timeline study tracks: the ones whose behaviour can
/// change over a run (learning policies plus the always-on references they are compared
/// against).
pub fn timeline_coordinators() -> Vec<(&'static str, CoordinatorKind)> {
    vec![
        ("prefetchers-only", CoordinatorKind::PrefetchersOnly),
        ("naive", CoordinatorKind::Naive),
        ("hpac", CoordinatorKind::Hpac),
        ("mab", CoordinatorKind::Mab),
        ("athena", CoordinatorKind::Athena),
    ]
}

/// One cell of the study: a workload's full windowed series under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineCell {
    /// Workload name.
    pub workload: String,
    /// Policy name (row label in the learning-curve table).
    pub coordinator: String,
    /// The cell's derived seed (for the JSON documents).
    pub seed: u64,
    /// The windowed time series.
    pub timeline: Timeline,
}

/// The assembled study: every per-cell series plus the aggregate learning-curve table.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineStudy {
    /// The window length the series were collected at.
    pub window_instructions: u64,
    /// Every (workload × policy) cell, grouped by policy in [`timeline_coordinators`]
    /// order.
    pub cells: Vec<TimelineCell>,
    /// Early-vs-late learning-curve table: one row per policy, aggregated over all
    /// workloads (the repository's analogue of the paper's learning-behaviour figures).
    pub curves: ExperimentTable,
}

/// Columns of the learning-curve table: each metric at the run's first and last quarter
/// of windows.
const CURVE_COLUMNS: [&str; 8] = [
    "early-ipc",
    "late-ipc",
    "early-pf-accuracy",
    "late-pf-accuracy",
    "early-pf-coverage",
    "late-pf-coverage",
    "early-ocp-precision",
    "late-ocp-precision",
];

/// Runs the study on the engine (`opts.jobs` workers, `opts.trace_dir` honoured exactly
/// like the figure experiments). When [`RunOptions::tuned_config`] names a configuration
/// file (written by the `tune` CLI), a `tuned` policy running that file-loaded
/// configuration joins the tracked policies, so its learning curve can be compared
/// against the default agent's.
///
/// # Panics
///
/// Panics if the tuned configuration file cannot be loaded (the CLI validates first).
pub fn timeline_study(opts: &RunOptions, window_instructions: u64) -> TimelineStudy {
    let specs = workload_set(opts);
    let config = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
    let mut coordinators = timeline_coordinators();
    if let Some(path) = &opts.tuned_config {
        let cfg = athena_tune::load_config(path).unwrap_or_else(|e| panic!("{e}"));
        coordinators.push(("tuned", CoordinatorKind::AthenaWith(cfg)));
    }

    let mut jobs: Vec<Job> = Vec::new();
    for (_, kind) in &coordinators {
        for spec in &specs {
            jobs.push(
                cell_job("timeline", spec, &config, kind, opts).with_telemetry(window_instructions),
            );
        }
    }
    let mut results = crate::run::engine_for(opts).run(jobs).into_iter();

    let mut cells = Vec::new();
    let mut curves = ExperimentTable::new(
        "Learning curves: early vs late telemetry windows (CD1 <popet, pythia>)",
        "coordinator",
        CURVE_COLUMNS.iter().map(|s| s.to_string()).collect(),
    );
    for (name, _) in &coordinators {
        // Aggregate the early/late window counters across workloads and derive the
        // metrics from the sums, so the row is exact rather than an average of averages.
        let mut early_sum = EpochStats::default();
        let mut late_sum = EpochStats::default();
        for spec in &specs {
            let cell: CellResult = results.next().expect("one result per job");
            let seed = cell.seed;
            let run = cell.into_single();
            let timeline = run.timeline.expect("timeline jobs collect telemetry");
            // The per-run window split is the telemetry layer's: this table aggregates
            // the same early/late sums that the per-cell JSON's learning_curve reports.
            let (_, early, late) = timeline
                .early_late_window_sums()
                .expect("a completed run has windows");
            early_sum.accumulate(&early);
            late_sum.accumulate(&late);
            cells.push(TimelineCell {
                workload: spec.name.clone(),
                coordinator: name.to_string(),
                seed,
                timeline,
            });
        }
        let early = WindowMetrics::from_stats(&early_sum);
        let late = WindowMetrics::from_stats(&late_sum);
        curves.push_row(
            *name,
            vec![
                early.ipc,
                late.ipc,
                early.prefetch_accuracy,
                late.prefetch_accuracy,
                early.prefetch_coverage,
                late.prefetch_coverage,
                early.ocp_precision,
                late.ocp_precision,
            ],
        );
    }
    TimelineStudy {
        window_instructions,
        cells,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOptions {
        RunOptions {
            instructions: 12_000,
            workload_limit: Some(3),
            jobs: 2,
            trace_dir: None,
            tuned_config: None,
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    #[test]
    fn study_covers_the_full_grid() {
        let study = timeline_study(&tiny(), 4096);
        let coordinators = timeline_coordinators();
        assert_eq!(study.cells.len(), 3 * coordinators.len());
        assert_eq!(study.curves.rows.len(), coordinators.len());
        assert_eq!(study.curves.columns.len(), CURVE_COLUMNS.len());
        for cell in &study.cells {
            assert!(!cell.timeline.windows.is_empty(), "{}", cell.workload);
            assert_eq!(
                cell.timeline.totals().instructions,
                12_000,
                "windows partition the whole run"
            );
        }
        // Athena cells carry agent snapshots; static policies do not.
        assert!(study
            .cells
            .iter()
            .filter(|c| c.coordinator == "athena")
            .all(|c| c.timeline.windows.iter().all(|w| w.agent.is_some())));
        assert!(study
            .cells
            .iter()
            .filter(|c| c.coordinator == "naive")
            .all(|c| c.timeline.windows.iter().all(|w| w.agent.is_none())));
    }

    #[test]
    fn a_tuned_config_file_joins_the_tracked_policies() {
        let dir =
            std::env::temp_dir().join(format!("athena-timeline-tuned-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuned.json");
        let cfg = athena_engine::default_athena_config().with_hyperparameters(0.3, 0.6, 0.05, 0.12);
        std::fs::write(&path, athena_tune::config_to_json(&cfg).to_pretty()).unwrap();

        let mut opts = tiny();
        opts.workload_limit = Some(2);
        opts.tuned_config = Some(path);
        let study = timeline_study(&opts, 4096);
        assert_eq!(study.cells.len(), 2 * (timeline_coordinators().len() + 1));
        assert!(study.curves.rows.iter().any(|(name, _)| name == "tuned"));
        // The tuned policy is a learning agent: its cells carry snapshots too.
        assert!(study
            .cells
            .iter()
            .filter(|c| c.coordinator == "tuned")
            .all(|c| c.timeline.windows.iter().all(|w| w.agent.is_some())));
        std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("athena-timeline-tuned-{}", std::process::id())),
        )
        .ok();
    }
}
