//! One experiment per figure/table of the paper's evaluation.
//!
//! Every function returns an [`ExperimentTable`] whose rows/series correspond to the bars or
//! lines of the original figure. The functions take [`RunOptions`] so the same code powers
//! the full `figures` CLI runs, the Criterion benchmarks (reduced instruction counts) and
//! the integration tests.
//!
//! Reproduction is *trend-level*: the absolute speedups differ from the paper because the
//! core model and workloads are synthetic substitutes (see DESIGN.md), but the orderings the
//! paper's claims rest on — who wins per category, how the gap changes with bandwidth, what
//! each ablation step contributes — are expected to hold. EXPERIMENTS.md records
//! paper-vs-measured values for every row.

use std::collections::HashMap;

use athena_core::{AthenaConfig, Feature, RewardWeights};
use athena_engine::{CellResult, Job};
use athena_workloads::{
    all_workloads, google_like_workloads, mixes, tuning_workloads, MixCategory, Suite, WorkloadSpec,
};

use crate::run::default_athena_config;
use crate::{
    geomean, CoordinatorKind, ExperimentTable, OcpKind, PrefetcherKind, RunOptions, RunResult,
    SystemConfig,
};

/// The workload categories used as columns in most category tables.
const CATEGORY_COLUMNS: [&str; 7] = [
    "SPEC",
    "PARSEC",
    "Ligra",
    "CVP",
    "prefetcher-adverse",
    "prefetcher-friendly",
    "overall",
];

/// The workload sample an experiment runs on under `opts`.
///
/// With no [`RunOptions::workload_limit`] this is the full 100-workload evaluation suite.
/// With a limit, a balanced slice is kept: designed-friendly and designed-adverse
/// workloads are interleaved so even heavily truncated runs exercise both categories.
/// Exposed publicly so the `trace` CLI's `--quick` recording preset captures exactly the
/// workloads the quick experiments replay.
pub fn workload_set(opts: &RunOptions) -> Vec<WorkloadSpec> {
    let mut w = all_workloads();
    if let Some(limit) = opts.workload_limit {
        let friendly: Vec<WorkloadSpec> =
            w.iter().filter(|x| x.designed_friendly).cloned().collect();
        let adverse: Vec<WorkloadSpec> =
            w.iter().filter(|x| !x.designed_friendly).cloned().collect();
        let mut out = Vec::new();
        let mut fi = friendly.into_iter();
        let mut ai = adverse.into_iter();
        while out.len() < limit {
            if let Some(f) = fi.next() {
                out.push(f);
            }
            if out.len() >= limit {
                break;
            }
            if let Some(a) = ai.next() {
                out.push(a);
            }
        }
        w = out;
    }
    w
}

/// The held-out tuning-workload sample an experiment (or the `tune` CLI) runs on under
/// `opts` — the 20 tuning workloads, truncated to at least 4 by
/// [`RunOptions::workload_limit`]. Shared by `tab3`, the `tuned` experiment and the
/// `athena-tune` CLI so a tuned configuration's claimed scores are measured on exactly
/// the workload set a later `figures --fig tuned` re-measures.
pub fn tuning_set(opts: &RunOptions) -> Vec<WorkloadSpec> {
    let mut specs = tuning_workloads();
    if let Some(limit) = opts.workload_limit {
        specs.truncate(limit.max(4));
    }
    specs
}

/// One engine job for one single-core cell, honouring [`RunOptions::trace_dir`]: when the
/// options name a trace directory containing `<workload-name>.trace`, the cell replays
/// that recorded file (same workload name, so same derived seed and label as the
/// generated cell); otherwise the cell generates its trace in-process as before.
/// (Shared with the `timeline` study, which builds the same cells plus telemetry.)
pub(crate) fn cell_job(
    experiment: &str,
    spec: &WorkloadSpec,
    config: &SystemConfig,
    kind: &CoordinatorKind,
    opts: &RunOptions,
) -> Job {
    if let Some(dir) = &opts.trace_dir {
        let path = dir.join(format!("{}.trace", spec.name));
        if path.is_file() {
            return Job::from_file(
                experiment,
                &spec.name,
                path,
                config.clone(),
                kind.clone(),
                opts.instructions,
            );
        }
    }
    Job::single(
        experiment,
        spec.clone(),
        config.clone(),
        kind.clone(),
        opts.instructions,
    )
}

/// Enumerates one engine job per workload for one (config, policy) pair.
fn single_jobs(
    experiment: &str,
    specs: &[WorkloadSpec],
    config: &SystemConfig,
    kind: &CoordinatorKind,
    opts: &RunOptions,
) -> Vec<Job> {
    specs
        .iter()
        .map(|spec| cell_job(experiment, spec, config, kind, opts))
        .collect()
}

/// Executes a batch of single-core jobs on the experiment engine (`opts.jobs` workers) and
/// returns the results in submission order. Every cell is a pure function of its job, so
/// the returned results are bit-identical at any worker count.
fn run_batch(jobs: Vec<Job>, opts: &RunOptions) -> Vec<RunResult> {
    crate::run::engine_for(opts)
        .run(jobs)
        .into_iter()
        .map(CellResult::into_single)
        .collect()
}

/// All per-workload results for one policy.
struct PolicyRuns {
    /// Speedup over the no-prefetching/no-OCP baseline, per workload (same order as specs).
    speedups: Vec<f64>,
    /// Raw run results, per workload.
    runs: Vec<RunResult>,
}

/// Runs a set of policies over a set of workloads on one configuration, sharing the
/// baseline runs.
struct Sweep {
    specs: Vec<WorkloadSpec>,
    baseline: Vec<RunResult>,
    policies: Vec<(String, PolicyRuns)>,
    /// Indices of workloads empirically classified prefetcher-adverse (prefetchers-only
    /// speedup below 1.0, as in the paper's Figure 1 classification).
    adverse_idx: Vec<usize>,
}

impl Sweep {
    fn run(
        experiment: &str,
        config: &SystemConfig,
        policies: &[(&str, CoordinatorKind)],
        opts: &RunOptions,
    ) -> Self {
        Self::run_on(experiment, workload_set(opts), config, policies, opts)
    }

    /// Enumerates every (workload × policy) cell of the sweep — plus the shared baseline
    /// and classification runs — as one engine batch, then slices the in-order results back
    /// out per policy. The classification runs double as the `prefetchers-only` policy
    /// runs, exactly like the original serial loop did.
    fn run_on(
        experiment: &str,
        specs: Vec<WorkloadSpec>,
        config: &SystemConfig,
        policies: &[(&str, CoordinatorKind)],
        opts: &RunOptions,
    ) -> Self {
        let n = specs.len();
        let mut jobs = single_jobs(experiment, &specs, config, &CoordinatorKind::Baseline, opts);
        jobs.extend(single_jobs(
            experiment,
            &specs,
            config,
            &CoordinatorKind::PrefetchersOnly,
            opts,
        ));
        for (_, kind) in policies {
            if *kind != CoordinatorKind::PrefetchersOnly {
                jobs.extend(single_jobs(experiment, &specs, config, kind, opts));
            }
        }
        let mut results = run_batch(jobs, opts).into_iter();

        let baseline: Vec<RunResult> = results.by_ref().take(n).collect();
        // Classification run: prefetchers only.
        let classify: Vec<RunResult> = results.by_ref().take(n).collect();
        let adverse_idx: Vec<usize> = classify
            .iter()
            .zip(baseline.iter())
            .enumerate()
            .filter(|(_, (c, b))| c.ipc < b.ipc)
            .map(|(i, _)| i)
            .collect();

        let mut out_policies = Vec::new();
        for (name, kind) in policies {
            let runs: Vec<RunResult> = match kind {
                // Reuse the classification runs for the prefetchers-only policy.
                CoordinatorKind::PrefetchersOnly => classify.clone(),
                _ => results.by_ref().take(n).collect(),
            };
            let speedups = runs
                .iter()
                .zip(baseline.iter())
                .map(|(r, b)| r.ipc / b.ipc.max(1e-12))
                .collect();
            out_policies.push((name.to_string(), PolicyRuns { speedups, runs }));
        }
        Self {
            specs,
            baseline,
            policies: out_policies,
            adverse_idx,
        }
    }

    fn indices_for(&self, column: &str) -> Vec<usize> {
        match column {
            "overall" => (0..self.specs.len()).collect(),
            "prefetcher-adverse" => self.adverse_idx.clone(),
            "prefetcher-friendly" => (0..self.specs.len())
                .filter(|i| !self.adverse_idx.contains(i))
                .collect(),
            suite => {
                let suite = match suite {
                    "SPEC" => Suite::Spec,
                    "PARSEC" => Suite::Parsec,
                    "Ligra" => Suite::Ligra,
                    "CVP" => Suite::Cvp,
                    "Google" => Suite::GoogleLike,
                    _ => return Vec::new(),
                };
                (0..self.specs.len())
                    .filter(|&i| self.specs[i].suite == suite)
                    .collect()
            }
        }
    }

    fn geomean_speedup(&self, policy: &str, indices: &[usize]) -> f64 {
        let p = self
            .policies
            .iter()
            .find(|(n, _)| n == policy)
            .map(|(_, p)| p)
            .expect("unknown policy");
        let values: Vec<f64> = indices.iter().map(|&i| p.speedups[i]).collect();
        geomean(&values)
    }

    /// Per-workload best static combination (the StaticBest oracle), as a speedup vector.
    /// Requires the sweep to contain the four static policies.
    fn static_best(&self, indices: &[usize]) -> f64 {
        let static_policies = ["baseline-combo", "ocp-only", "prefetchers-only", "naive"];
        let values: Vec<f64> = indices
            .iter()
            .map(|&i| {
                static_policies
                    .iter()
                    .filter_map(|name| {
                        self.policies
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, p)| p.speedups[i])
                    })
                    .fold(1.0f64, f64::max)
            })
            .collect();
        geomean(&values)
    }

    fn category_table(&self, title: &str, policy_order: &[&str]) -> ExperimentTable {
        let mut table = ExperimentTable::new(
            title,
            "policy",
            CATEGORY_COLUMNS.iter().map(|s| s.to_string()).collect(),
        );
        for policy in policy_order {
            let row: Vec<f64> = CATEGORY_COLUMNS
                .iter()
                .map(|col| self.geomean_speedup(policy, &self.indices_for(col)))
                .collect();
            table.push_row(*policy, row);
        }
        table
    }
}

/// The four static combinations used by the StaticBest oracle.
fn static_combo_policies() -> Vec<(&'static str, CoordinatorKind)> {
    vec![
        (
            "baseline-combo",
            CoordinatorKind::Fixed {
                ocp: false,
                prefetchers: false,
            },
        ),
        ("ocp-only", CoordinatorKind::OcpOnly),
        ("prefetchers-only", CoordinatorKind::PrefetchersOnly),
        ("naive", CoordinatorKind::Naive),
    ]
}

fn cd1() -> SystemConfig {
    SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet)
}

fn cd4() -> SystemConfig {
    SystemConfig::cd4(PrefetcherKind::Ipcp, PrefetcherKind::Pythia, OcpKind::Popet)
}

// ---------------------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------------------

/// Figure 1: per-workload speedups of the OCP (POPET) and the prefetcher (Pythia) alone,
/// sorted by the prefetcher's speedup.
pub fn fig1(opts: &RunOptions) -> ExperimentTable {
    let config = cd1();
    let sweep = Sweep::run(
        "fig1",
        &config,
        &[
            ("popet", CoordinatorKind::OcpOnly),
            ("pythia", CoordinatorKind::PrefetchersOnly),
        ],
        opts,
    );
    let mut order: Vec<usize> = (0..sweep.specs.len()).collect();
    let pythia = &sweep.policies[1].1.speedups;
    order.sort_by(|&a, &b| pythia[a].partial_cmp(&pythia[b]).unwrap());
    let mut table = ExperimentTable::new(
        "Figure 1: POPET vs Pythia per-workload speedup (sorted by Pythia speedup)",
        "workload",
        vec!["popet".into(), "pythia".into()],
    );
    for &i in &order {
        table.push_row(
            sweep.specs[i].name.clone(),
            vec![sweep.policies[0].1.speedups[i], pythia[i]],
        );
    }
    table
}

/// Figure 2: geomean speedup of POPET, Pythia, their naive combination and the StaticBest
/// oracle, by workload category.
pub fn fig2(opts: &RunOptions) -> ExperimentTable {
    let config = cd1();
    let mut policies = static_combo_policies();
    policies.retain(|(n, _)| *n != "baseline-combo");
    let mut all = static_combo_policies();
    all.extend_from_slice(&[]);
    let sweep = Sweep::run("fig2", &config, &all, opts);
    let mut table = ExperimentTable::new(
        "Figure 2: naive combination vs StaticBest",
        "combination",
        vec![
            "prefetcher-adverse".into(),
            "prefetcher-friendly".into(),
            "overall".into(),
        ],
    );
    for policy in ["ocp-only", "prefetchers-only", "naive"] {
        let row: Vec<f64> = ["prefetcher-adverse", "prefetcher-friendly", "overall"]
            .iter()
            .map(|c| sweep.geomean_speedup(policy, &sweep.indices_for(c)))
            .collect();
        table.push_row(policy, row);
    }
    let sb: Vec<f64> = ["prefetcher-adverse", "prefetcher-friendly", "overall"]
        .iter()
        .map(|c| sweep.static_best(&sweep.indices_for(c)))
        .collect();
    table.push_row("static-best", sb);
    table
}

/// Figure 3: fraction of prefetch fills from off-chip main memory that are never used, for
/// an L1D prefetcher (IPCP) and an L2C prefetcher (Pythia).
pub fn fig3(opts: &RunOptions) -> ExperimentTable {
    let specs = workload_set(opts);
    let mut table = ExperimentTable::new(
        "Figure 3: fraction of off-chip prefetch fills that are inaccurate",
        "prefetcher",
        vec!["mean".into(), "q1".into(), "median".into(), "q3".into()],
    );
    let configs = [
        (
            "ipcp@L1D",
            SystemConfig::cd2(PrefetcherKind::Ipcp, OcpKind::Popet),
        ),
        ("pythia@L2C", cd1()),
    ];
    let mut jobs = Vec::new();
    for (_, config) in &configs {
        jobs.extend(single_jobs(
            "fig3",
            &specs,
            config,
            &CoordinatorKind::PrefetchersOnly,
            opts,
        ));
    }
    let mut results = run_batch(jobs, opts).into_iter();
    for (label, _) in configs {
        let mut fractions: Vec<f64> = results
            .by_ref()
            .take(specs.len())
            .map(|r| r.stats.offchip_prefetch_inaccuracy())
            .collect();
        fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
        let quart = |q: f64| fractions[((fractions.len() - 1) as f64 * q) as usize];
        table.push_row(label, vec![mean, quart(0.25), quart(0.5), quart(0.75)]);
    }
    table
}

/// Figure 4: prior coordination policies (HPAC, MAB) against Naive and StaticBest in CD1.
pub fn fig4(opts: &RunOptions) -> ExperimentTable {
    let config = cd1();
    let mut policies = static_combo_policies();
    policies.push(("hpac", CoordinatorKind::Hpac));
    policies.push(("mab", CoordinatorKind::Mab));
    let sweep = Sweep::run("fig4", &config, &policies, opts);
    let columns = ["prefetcher-adverse", "prefetcher-friendly", "overall"];
    let mut table = ExperimentTable::new(
        "Figure 4: prior coordination policies vs Naive and StaticBest (CD1)",
        "policy",
        columns.iter().map(|s| s.to_string()).collect(),
    );
    for policy in ["naive", "hpac", "mab"] {
        table.push_row(
            policy,
            columns
                .iter()
                .map(|c| sweep.geomean_speedup(policy, &sweep.indices_for(c)))
                .collect(),
        );
    }
    table.push_row(
        "static-best",
        columns
            .iter()
            .map(|c| sweep.static_best(&sweep.indices_for(c)))
            .collect(),
    );
    table
}

// ---------------------------------------------------------------------------------------
// Main single-core results (CD1–CD4)
// ---------------------------------------------------------------------------------------

fn cache_design_policies(include_tlp: bool) -> Vec<(&'static str, CoordinatorKind)> {
    let mut p = vec![
        ("ocp-only", CoordinatorKind::OcpOnly),
        ("prefetchers-only", CoordinatorKind::PrefetchersOnly),
        ("naive", CoordinatorKind::Naive),
    ];
    if include_tlp {
        p.push(("tlp", CoordinatorKind::Tlp));
    }
    p.push(("hpac", CoordinatorKind::Hpac));
    p.push(("mab", CoordinatorKind::Mab));
    p.push(("athena", CoordinatorKind::Athena));
    p
}

fn cache_design_row_order(include_tlp: bool) -> Vec<&'static str> {
    let mut rows = vec!["ocp-only", "prefetchers-only", "naive"];
    if include_tlp {
        rows.push("tlp");
    }
    rows.extend_from_slice(&["hpac", "mab", "athena"]);
    rows
}

/// Figure 7: speedup in cache design 1 (OCP + Pythia at L2C).
pub fn fig7(opts: &RunOptions) -> ExperimentTable {
    let sweep = Sweep::run("fig7", &cd1(), &cache_design_policies(false), opts);
    sweep.category_table(
        "Figure 7: speedup in CD1 (POPET + Pythia@L2C)",
        &cache_design_row_order(false),
    )
}

/// Figure 8(a): workload-category quartile statistics in CD1.
pub fn fig8a(opts: &RunOptions) -> ExperimentTable {
    let sweep = Sweep::run("fig8a", &cd1(), &cache_design_policies(false), opts);
    let mut table = ExperimentTable::new(
        "Figure 8a: per-category speedup quartiles in CD1",
        "policy",
        vec![
            "adverse-q1".into(),
            "adverse-q3".into(),
            "friendly-q1".into(),
            "friendly-q3".into(),
            "overall-q1".into(),
            "overall-q3".into(),
        ],
    );
    let quartiles = |values: &mut Vec<f64>| -> (f64, f64) {
        if values.is_empty() {
            return (1.0, 1.0);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |f: f64| values[((values.len() - 1) as f64 * f) as usize];
        (q(0.25), q(0.75))
    };
    for (name, runs) in &sweep.policies {
        let mut row = Vec::new();
        for col in ["prefetcher-adverse", "prefetcher-friendly", "overall"] {
            let idx = sweep.indices_for(col);
            let mut values: Vec<f64> = idx.iter().map(|&i| runs.speedups[i]).collect();
            let (q1, q3) = quartiles(&mut values);
            row.push(q1);
            row.push(q3);
        }
        table.push_row(name.clone(), row);
    }
    table
}

/// Figure 8(b): Athena against the StaticBest oracle in CD1.
pub fn fig8b(opts: &RunOptions) -> ExperimentTable {
    let config = cd1();
    let mut policies = static_combo_policies();
    policies.push(("hpac", CoordinatorKind::Hpac));
    policies.push(("mab", CoordinatorKind::Mab));
    policies.push(("athena", CoordinatorKind::Athena));
    let sweep = Sweep::run("fig8b", &config, &policies, opts);
    let columns = ["prefetcher-adverse", "prefetcher-friendly", "overall"];
    let mut table = ExperimentTable::new(
        "Figure 8b: Athena vs StaticBest (CD1)",
        "policy",
        columns.iter().map(|s| s.to_string()).collect(),
    );
    for policy in ["naive", "hpac", "mab", "athena"] {
        table.push_row(
            policy,
            columns
                .iter()
                .map(|c| sweep.geomean_speedup(policy, &sweep.indices_for(c)))
                .collect(),
        );
    }
    table.push_row(
        "static-best",
        columns
            .iter()
            .map(|c| sweep.static_best(&sweep.indices_for(c)))
            .collect(),
    );
    table
}

/// Figure 9: speedup in cache design 2 (OCP + IPCP at L1D), including TLP.
pub fn fig9(opts: &RunOptions) -> ExperimentTable {
    let config = SystemConfig::cd2(PrefetcherKind::Ipcp, OcpKind::Popet);
    let sweep = Sweep::run("fig9", &config, &cache_design_policies(true), opts);
    sweep.category_table(
        "Figure 9: speedup in CD2 (POPET + IPCP@L1D)",
        &cache_design_row_order(true),
    )
}

/// Figure 10: speedup in cache design 3 (OCP + SMS and Pythia at L2C).
pub fn fig10(opts: &RunOptions) -> ExperimentTable {
    let config = SystemConfig::cd3(PrefetcherKind::Sms, PrefetcherKind::Pythia, OcpKind::Popet);
    let sweep = Sweep::run("fig10", &config, &cache_design_policies(false), opts);
    sweep.category_table(
        "Figure 10: speedup in CD3 (POPET + SMS+Pythia@L2C)",
        &cache_design_row_order(false),
    )
}

/// Figure 11: speedup in cache design 4 (OCP + IPCP at L1D + Pythia at L2C), including TLP.
pub fn fig11(opts: &RunOptions) -> ExperimentTable {
    let sweep = Sweep::run("fig11", &cd4(), &cache_design_policies(true), opts);
    sweep.category_table(
        "Figure 11: speedup in CD4 (POPET + IPCP@L1D + Pythia@L2C)",
        &cache_design_row_order(true),
    )
}

// ---------------------------------------------------------------------------------------
// Sensitivity studies
// ---------------------------------------------------------------------------------------

fn overall_sweep_table(
    experiment: &str,
    title: &str,
    configs: Vec<(String, SystemConfig)>,
    policies: &[(&str, CoordinatorKind)],
    row_order: &[&str],
    opts: &RunOptions,
) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        title,
        "policy",
        configs.iter().map(|(n, _)| n.clone()).collect(),
    );
    let mut cells: HashMap<(String, String), f64> = HashMap::new();
    for (col, config) in &configs {
        let sweep = Sweep::run(experiment, config, policies, opts);
        for policy in row_order {
            let v = sweep.geomean_speedup(policy, &sweep.indices_for("overall"));
            cells.insert((policy.to_string(), col.clone()), v);
        }
    }
    for policy in row_order {
        let row: Vec<f64> = configs
            .iter()
            .map(|(col, _)| cells[&(policy.to_string(), col.clone())])
            .collect();
        table.push_row(*policy, row);
    }
    table
}

/// Figure 12(a): sensitivity to the L2C prefetcher type in CD1.
pub fn fig12a(opts: &RunOptions) -> ExperimentTable {
    let configs = [
        PrefetcherKind::Pythia,
        PrefetcherKind::SppPpf,
        PrefetcherKind::Mlop,
        PrefetcherKind::Sms,
    ]
    .iter()
    .map(|p| (p.name().to_string(), SystemConfig::cd1(*p, OcpKind::Popet)))
    .collect();
    overall_sweep_table(
        "fig12a",
        "Figure 12a: sensitivity to the L2C prefetcher type (CD1, overall geomean)",
        configs,
        &cache_design_policies(false),
        &["naive", "hpac", "mab", "athena"],
        opts,
    )
}

/// Figure 12(b): sensitivity to the OCP type in CD1.
pub fn fig12b(opts: &RunOptions) -> ExperimentTable {
    let configs = [OcpKind::Popet, OcpKind::Hmp, OcpKind::Ttp]
        .iter()
        .map(|o| {
            (
                o.name().to_string(),
                SystemConfig::cd1(PrefetcherKind::Pythia, *o),
            )
        })
        .collect();
    overall_sweep_table(
        "fig12b",
        "Figure 12b: sensitivity to the off-chip predictor type (CD1, overall geomean)",
        configs,
        &cache_design_policies(false),
        &["ocp-only", "naive", "hpac", "mab", "athena"],
        opts,
    )
}

/// Figure 12(c): sensitivity to the OCP request issue latency in CD1.
pub fn fig12c(opts: &RunOptions) -> ExperimentTable {
    let configs = [6u64, 18, 30]
        .iter()
        .map(|lat| (format!("{lat}-cycles"), cd1().with_ocp_issue_latency(*lat)))
        .collect();
    overall_sweep_table(
        "fig12c",
        "Figure 12c: sensitivity to the OCP request issue latency (CD1, overall geomean)",
        configs,
        &cache_design_policies(false),
        &["ocp-only", "naive", "hpac", "mab", "athena"],
        opts,
    )
}

/// Figure 13: sensitivity to the L1D prefetcher type in CD4.
pub fn fig13(opts: &RunOptions) -> ExperimentTable {
    let configs = [PrefetcherKind::Ipcp, PrefetcherKind::Berti]
        .iter()
        .map(|p| {
            (
                p.name().to_string(),
                SystemConfig::cd4(*p, PrefetcherKind::Pythia, OcpKind::Popet),
            )
        })
        .collect();
    overall_sweep_table(
        "fig13",
        "Figure 13: sensitivity to the L1D prefetcher type (CD4, overall geomean)",
        configs,
        &cache_design_policies(true),
        &["prefetchers-only", "naive", "tlp", "hpac", "mab", "athena"],
        opts,
    )
}

/// Figure 14: sensitivity to main-memory bandwidth in CD4.
pub fn fig14(opts: &RunOptions) -> ExperimentTable {
    let configs = [1.6f64, 3.2, 6.4, 12.8]
        .iter()
        .map(|bw| (format!("{bw}GB/s"), cd4().with_bandwidth(*bw)))
        .collect();
    overall_sweep_table(
        "fig14",
        "Figure 14: sensitivity to main-memory bandwidth (CD4, overall geomean)",
        configs,
        &cache_design_policies(true),
        &[
            "ocp-only",
            "prefetchers-only",
            "naive",
            "tlp",
            "hpac",
            "mab",
            "athena",
        ],
        opts,
    )
}

// ---------------------------------------------------------------------------------------
// Multi-core
// ---------------------------------------------------------------------------------------

/// Seed of the standard multi-core mix lists (shared by fig15/fig16 and `trace record
/// --mixes`, so recordings and the figures draw from the same mixes).
const MIX_SEED: u64 = 0x5eed;

/// Mixes per category at full scale (the paper uses 30; a workload limit scales down).
const FULL_MIXES_PER_CATEGORY: usize = 10;

/// The standard `cores`-core mix list the multi-core figures use at full scale. Exposed
/// publicly so the `trace` CLI's `--mixes` recording captures exactly the workloads
/// fig15/fig16 replay.
pub fn standard_mixes(cores: usize) -> Vec<athena_workloads::WorkloadMix> {
    mixes(cores, FULL_MIXES_PER_CATEGORY, MIX_SEED)
}

fn multicore_fig(
    experiment: &str,
    title: &str,
    cores: usize,
    opts: &RunOptions,
) -> ExperimentTable {
    // Scale the mix count down with the workload limit so quick runs stay quick.
    let per_category = match opts.workload_limit {
        Some(limit) => (limit / 3).clamp(1, 30),
        None => FULL_MIXES_PER_CATEGORY,
    };
    let mix_list = mixes(cores, per_category, MIX_SEED);
    let config = cd1();
    let policies = [
        ("ocp-only", CoordinatorKind::OcpOnly),
        ("prefetchers-only", CoordinatorKind::PrefetchersOnly),
        ("naive", CoordinatorKind::Naive),
        ("hpac", CoordinatorKind::Hpac),
        ("mab", CoordinatorKind::Mab),
        ("athena", CoordinatorKind::Athena),
    ];
    let columns = ["adverse-mix", "friendly-mix", "random-mix", "overall"];
    let mut table = ExperimentTable::new(
        title,
        "policy",
        columns.iter().map(|s| s.to_string()).collect(),
    );
    let instructions = opts.instructions / 2;

    // One engine batch: the per-mix baselines followed by every (policy × mix) cell.
    let multicore_jobs = |kind: &CoordinatorKind| -> Vec<Job> {
        mix_list
            .iter()
            .map(|m| {
                Job::multicore(
                    experiment,
                    m.clone(),
                    config.clone(),
                    kind.clone(),
                    instructions,
                )
            })
            .collect()
    };
    let mut jobs = multicore_jobs(&CoordinatorKind::Baseline);
    for (_, kind) in &policies {
        jobs.extend(multicore_jobs(kind));
    }
    let mut results = crate::run::engine_for(opts)
        .run(jobs)
        .into_iter()
        .map(CellResult::into_multi);
    let baselines: Vec<_> = results.by_ref().take(mix_list.len()).collect();

    for (name, _) in policies {
        let speedups: Vec<(MixCategory, f64)> = mix_list
            .iter()
            .zip(baselines.iter())
            .zip(results.by_ref().take(mix_list.len()))
            .map(|((m, base), run)| (m.category, run.geomean_speedup_over(base)))
            .collect();
        let row: Vec<f64> = columns
            .iter()
            .map(|col| {
                let values: Vec<f64> = speedups
                    .iter()
                    .filter(|(cat, _)| match *col {
                        "adverse-mix" => *cat == MixCategory::PrefetcherAdverse,
                        "friendly-mix" => *cat == MixCategory::PrefetcherFriendly,
                        "random-mix" => *cat == MixCategory::Random,
                        _ => true,
                    })
                    .map(|(_, s)| *s)
                    .collect();
                geomean(&values)
            })
            .collect();
        table.push_row(name, row);
    }
    table
}

/// Figure 15: four-core workload mixes in CD1.
pub fn fig15(opts: &RunOptions) -> ExperimentTable {
    multicore_fig("fig15", "Figure 15: four-core mixes (CD1)", 4, opts)
}

/// Figure 16: eight-core workload mixes in CD1.
pub fn fig16(opts: &RunOptions) -> ExperimentTable {
    multicore_fig("fig16", "Figure 16: eight-core mixes (CD1)", 8, opts)
}

// ---------------------------------------------------------------------------------------
// Understanding Athena
// ---------------------------------------------------------------------------------------

/// Figure 17: case study of Athena's action distribution and the static combinations on one
/// phase-alternating CVP workload, at 3.2 GB/s and 25.6 GB/s.
pub fn fig17(opts: &RunOptions) -> ExperimentTable {
    let spec = all_workloads()
        .into_iter()
        .find(|w| w.name == "cvp-compute_fp_17")
        .expect("case-study workload exists");
    let mut table = ExperimentTable::new(
        "Figure 17: case study (cvp-compute_fp_17): Athena action distribution and static combos",
        "quantity",
        vec!["3.2GB/s".into(), "25.6GB/s".into()],
    );
    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("action: enable-none %".into(), Vec::new()),
        ("action: enable-ocp %".into(), Vec::new()),
        ("action: enable-prefetcher %".into(), Vec::new()),
        ("action: enable-both %".into(), Vec::new()),
        ("speedup: ocp-alone".into(), Vec::new()),
        ("speedup: prefetcher-alone".into(), Vec::new()),
        ("speedup: naive".into(), Vec::new()),
        ("speedup: athena".into(), Vec::new()),
    ];
    // Both bandwidth points and all five policies as one ten-cell engine batch.
    let case_kinds = [
        CoordinatorKind::Baseline,
        CoordinatorKind::OcpOnly,
        CoordinatorKind::PrefetchersOnly,
        CoordinatorKind::Naive,
        CoordinatorKind::Athena,
    ];
    let mut jobs = Vec::new();
    for bw in [3.2, 25.6] {
        let config = cd1().with_bandwidth(bw);
        for kind in &case_kinds {
            jobs.push(cell_job("fig17", &spec, &config, kind, opts));
        }
    }
    let mut results = run_batch(jobs, opts).into_iter();
    for _bw in [3.2, 25.6] {
        let base = results.next().expect("baseline cell");
        let ocp = results.next().expect("ocp cell");
        let pf = results.next().expect("prefetchers cell");
        let naive = results.next().expect("naive cell");
        let athena = results.next().expect("athena cell");
        // Reconstruct the action distribution from epoch telemetry: which mechanisms were
        // active in each epoch.
        let mut counts = [0u64; 4];
        for e in &athena.epochs {
            let pf_on = e.prefetches_issued > 0;
            let ocp_on = e.ocp_predictions > 0;
            let idx = match (ocp_on, pf_on) {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => 3,
            };
            counts[idx] += 1;
        }
        let total = counts.iter().sum::<u64>().max(1) as f64;
        for (i, c) in counts.iter().enumerate() {
            rows[i].1.push(100.0 * *c as f64 / total);
        }
        rows[4].1.push(ocp.ipc / base.ipc);
        rows[5].1.push(pf.ipc / base.ipc);
        rows[6].1.push(naive.ipc / base.ipc);
        rows[7].1.push(athena.ipc / base.ipc);
    }
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table
}

/// Figure 18: ablation study — stateless Athena, progressively adding state features, then
/// the uncorrelated reward component.
pub fn fig18(opts: &RunOptions) -> ExperimentTable {
    let config = cd1();
    let steps: Vec<(&str, CoordinatorKind)> = vec![
        ("mab", CoordinatorKind::Mab),
        (
            "stateless-athena",
            CoordinatorKind::AthenaWith(athena_step(&[], false)),
        ),
        (
            "+prefetcher-accuracy",
            CoordinatorKind::AthenaWith(athena_step(&[Feature::PrefetcherAccuracy], false)),
        ),
        (
            "+ocp-accuracy",
            CoordinatorKind::AthenaWith(athena_step(
                &[Feature::PrefetcherAccuracy, Feature::OcpAccuracy],
                false,
            )),
        ),
        (
            "+bandwidth-usage",
            CoordinatorKind::AthenaWith(athena_step(
                &[
                    Feature::PrefetcherAccuracy,
                    Feature::OcpAccuracy,
                    Feature::BandwidthUsage,
                ],
                false,
            )),
        ),
        (
            "+cache-pollution",
            CoordinatorKind::AthenaWith(athena_step(
                &[
                    Feature::PrefetcherAccuracy,
                    Feature::OcpAccuracy,
                    Feature::BandwidthUsage,
                    Feature::CachePollution,
                ],
                false,
            )),
        ),
        ("athena (+uncorrelated reward)", CoordinatorKind::Athena),
    ];
    let policy_refs: Vec<(&str, CoordinatorKind)> =
        steps.iter().map(|(n, k)| (*n, k.clone())).collect();
    let sweep = Sweep::run("fig18", &config, &policy_refs, opts);
    let mut table = ExperimentTable::new(
        "Figure 18: contribution of state features and the composite reward (CD1, overall geomean)",
        "configuration",
        vec!["overall".into()],
    );
    for (name, _) in &steps {
        table.push_row(
            *name,
            vec![sweep.geomean_speedup(name, &sweep.indices_for("overall"))],
        );
    }
    table
}

fn athena_step(features: &[Feature], uncorrelated: bool) -> AthenaConfig {
    let mut cfg = default_athena_config()
        .with_features(features.to_vec())
        .with_uncorrelated_reward(uncorrelated);
    if !uncorrelated {
        // Prior-work-style reward: IPC (cycle) change only.
        cfg = cfg.with_reward_weights(RewardWeights {
            lambda_cycle: 1.6,
            lambda_llc_misses: 0.0,
            lambda_llc_miss_latency: 0.0,
            lambda_loads: 0.0,
            lambda_mispredicted_branches: 0.0,
        });
    }
    cfg
}

/// Figure 19: Athena managing two L2C prefetchers without an OCP (generalisability study).
pub fn fig19(opts: &RunOptions) -> ExperimentTable {
    let config = SystemConfig::prefetchers_only(PrefetcherKind::Sms, PrefetcherKind::Pythia);
    let policies = vec![
        ("prefetchers-only", CoordinatorKind::PrefetchersOnly),
        ("hpac", CoordinatorKind::Hpac),
        ("mab", CoordinatorKind::Mab),
        ("athena", CoordinatorKind::Athena),
    ];
    let sweep = Sweep::run("fig19", &config, &policies, opts);
    sweep.category_table(
        "Figure 19: prefetcher-only management (SMS+Pythia@L2C, no OCP)",
        &["prefetchers-only", "hpac", "mab", "athena"],
    )
}

// ---------------------------------------------------------------------------------------
// Extended results (Appendix B)
// ---------------------------------------------------------------------------------------

/// Figure 20(a): main-memory requests, normalised to the baseline, per policy (CD1).
pub fn fig20a(opts: &RunOptions) -> ExperimentTable {
    normalised_stat_fig(
        "fig20a",
        "Figure 20a: main-memory requests normalised to no-prefetching/no-OCP (CD1)",
        opts,
        |r| r.stats.dram_total_requests as f64,
    )
}

/// Figure 20(b): average LLC miss latency, normalised to the baseline, per policy (CD1).
pub fn fig20b(opts: &RunOptions) -> ExperimentTable {
    normalised_stat_fig(
        "fig20b",
        "Figure 20b: average LLC load miss latency normalised to no-prefetching/no-OCP (CD1)",
        opts,
        |r| r.stats.avg_llc_miss_latency(),
    )
}

fn normalised_stat_fig(
    experiment: &str,
    title: &str,
    opts: &RunOptions,
    stat: fn(&RunResult) -> f64,
) -> ExperimentTable {
    let sweep = Sweep::run(experiment, &cd1(), &cache_design_policies(false), opts);
    let columns = ["prefetcher-adverse", "prefetcher-friendly", "overall"];
    let mut table = ExperimentTable::new(
        title,
        "policy",
        columns.iter().map(|s| s.to_string()).collect(),
    );
    for (name, runs) in &sweep.policies {
        let row: Vec<f64> = columns
            .iter()
            .map(|col| {
                let idx = sweep.indices_for(col);
                let ratios: Vec<f64> = idx
                    .iter()
                    .map(|&i| stat(&runs.runs[i]) / stat(&sweep.baseline[i]).max(1e-12))
                    .collect();
                geomean(&ratios)
            })
            .collect();
        table.push_row(name.clone(), row);
    }
    table
}

/// Figure 21: unseen (Google-warehouse-style) workloads in CD4.
pub fn fig21(opts: &RunOptions) -> ExperimentTable {
    let mut specs = google_like_workloads();
    if let Some(limit) = opts.workload_limit {
        specs.truncate(limit.max(3));
    }
    let sweep = Sweep::run_on("fig21", specs, &cd4(), &cache_design_policies(true), opts);
    let mut table = ExperimentTable::new(
        "Figure 21: unseen Google-like workloads (CD4)",
        "policy",
        vec!["overall".into()],
    );
    for policy in cache_design_row_order(true) {
        table.push_row(
            policy,
            vec![sweep.geomean_speedup(policy, &sweep.indices_for("overall"))],
        );
    }
    table
}

// ---------------------------------------------------------------------------------------
// Design-space exploration and storage (Tables 3 and 4)
// ---------------------------------------------------------------------------------------

/// Table 3 (reduced): grid search over SARSA hyperparameters on the 20 held-out tuning
/// workloads. The grid is coarser than the paper's (which sweeps in steps of 0.1) so the
/// experiment completes in minutes; the selected point is reported per row.
pub fn tab3_dse(opts: &RunOptions) -> ExperimentTable {
    let specs = tuning_set(opts);
    let config = cd1();
    let mut table = ExperimentTable::new(
        "Table 3 (reduced grid): hyperparameter search on the tuning workloads",
        "configuration",
        vec!["overall".into()],
    );
    let grid = [
        (0.2, 0.3),
        (0.2, 0.6),
        (0.6, 0.3),
        (0.6, 0.6),
        (0.6, 0.9),
        (0.9, 0.6),
    ];
    // One batch: the shared baselines plus every grid point's runs.
    let mut jobs = single_jobs("tab3", &specs, &config, &CoordinatorKind::Baseline, opts);
    for (alpha, gamma) in grid {
        let cfg = default_athena_config().with_hyperparameters(alpha, gamma, 0.05, 0.12);
        jobs.extend(single_jobs(
            "tab3",
            &specs,
            &config,
            &CoordinatorKind::AthenaWith(cfg),
            opts,
        ));
    }
    let mut results = run_batch(jobs, opts).into_iter();
    let baseline: Vec<RunResult> = results.by_ref().take(specs.len()).collect();
    for (alpha, gamma) in grid {
        let speedups: Vec<f64> = results
            .by_ref()
            .take(specs.len())
            .zip(baseline.iter())
            .map(|(r, b)| r.ipc / b.ipc.max(1e-12))
            .collect();
        table.push_row(
            format!("alpha={alpha}, gamma={gamma}"),
            vec![geomean(&speedups)],
        );
    }
    table
}

/// Table 4 / Table 8: storage overhead of Athena and of every evaluated mechanism class.
pub fn tab4_storage(_opts: &RunOptions) -> ExperimentTable {
    let overhead = AthenaConfig::default().storage_overhead();
    let mut table = ExperimentTable::new(
        "Table 4: storage overhead of Athena (bytes per core)",
        "structure",
        vec!["bytes".into()],
    );
    table.push_row("qvstore", vec![overhead.qvstore_bytes as f64]);
    table.push_row(
        "accuracy-tracker",
        vec![overhead.accuracy_tracker_bytes as f64],
    );
    table.push_row(
        "pollution-tracker",
        vec![overhead.pollution_tracker_bytes as f64],
    );
    table.push_row("total", vec![overhead.total_bytes() as f64]);
    table
}

/// The `tuned` experiment: re-measures a file-loaded tuned configuration
/// ([`RunOptions::tuned_config`], written by the `tune` CLI) against the
/// prefetchers-only baseline on the tuning workload set.
///
/// The per-workload rows and the `overall` speedup row are computed through the same
/// scoring path the tuner uses (`athena_tune::Objective::Speedup` over the same
/// [`tuning_set`], at [`RunOptions::instructions`]), so with matching options the
/// `overall` speedup equals the leaderboard's claimed speedup bit for bit.
///
/// # Panics
///
/// Panics when no configuration file is set or it cannot be loaded; the `figures` CLI
/// validates the flag before dispatching here.
pub fn tuned(opts: &RunOptions) -> ExperimentTable {
    let path = opts
        .tuned_config
        .as_ref()
        .expect("the 'tuned' experiment needs a configuration file (--tuned-config)");
    let cfg = athena_tune::load_config(path).unwrap_or_else(|e| panic!("{e}"));
    let specs = tuning_set(opts);
    let config = cd1();

    let mut jobs = single_jobs(
        "tuned",
        &specs,
        &config,
        &CoordinatorKind::PrefetchersOnly,
        opts,
    );
    jobs.extend(single_jobs(
        "tuned",
        &specs,
        &config,
        &CoordinatorKind::AthenaWith(cfg),
        opts,
    ));
    let mut results = run_batch(jobs, opts).into_iter();
    let baselines: Vec<RunResult> = results.by_ref().take(specs.len()).collect();
    let runs: Vec<RunResult> = results.collect();

    let mut table = ExperimentTable::new(
        "Tuned Athena configuration vs prefetchers-only (CD1, tuning workloads)",
        "workload",
        vec![
            "tuned-ipc".into(),
            "prefetchers-only-ipc".into(),
            "speedup".into(),
        ],
    );
    for ((spec, run), base) in specs.iter().zip(&runs).zip(&baselines) {
        table.push_row(
            spec.name.clone(),
            vec![run.ipc, base.ipc, run.ipc / base.ipc.max(1e-12)],
        );
    }
    table.push_row(
        "overall",
        vec![
            geomean(&runs.iter().map(|r| r.ipc).collect::<Vec<f64>>()),
            geomean(&baselines.iter().map(|r| r.ipc).collect::<Vec<f64>>()),
            // The tuner's exact scoring path: this is the leaderboard's claimed speedup.
            athena_tune::Objective::Speedup.score_set(&runs, &baselines),
        ],
    );
    table
}

/// Every experiment, keyed by the identifier the `figures` CLI accepts.
///
/// The `tuned` experiment is deliberately absent: it needs a configuration file
/// ([`RunOptions::tuned_config`]), so `--all` must not select it implicitly. It is still
/// dispatched by [`run_experiment`] when asked for by name.
pub fn experiment_names() -> Vec<&'static str> {
    vec![
        "fig1", "fig2", "fig3", "fig4", "fig7", "fig8a", "fig8b", "fig9", "fig10", "fig11",
        "fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
        "fig19", "fig20a", "fig20b", "fig21", "tab3", "tab4",
    ]
}

/// Runs the experiment with the given identifier.
///
/// Returns `None` if the identifier is unknown. Identifiers are those listed by
/// [`experiment_names`], plus `tuned` (which additionally needs
/// [`RunOptions::tuned_config`]).
pub fn run_experiment(name: &str, opts: &RunOptions) -> Option<ExperimentTable> {
    let table = match name {
        "tuned" => tuned(opts),
        "fig1" => fig1(opts),
        "fig2" => fig2(opts),
        "fig3" => fig3(opts),
        "fig4" => fig4(opts),
        "fig7" => fig7(opts),
        "fig8a" => fig8a(opts),
        "fig8b" => fig8b(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12a" => fig12a(opts),
        "fig12b" => fig12b(opts),
        "fig12c" => fig12c(opts),
        "fig13" => fig13(opts),
        "fig14" => fig14(opts),
        "fig15" => fig15(opts),
        "fig16" => fig16(opts),
        "fig17" => fig17(opts),
        "fig18" => fig18(opts),
        "fig19" => fig19(opts),
        "fig20a" => fig20a(opts),
        "fig20b" => fig20b(opts),
        "fig21" => fig21(opts),
        "tab3" => tab3_dse(opts),
        "tab4" => tab4_storage(opts),
        _ => return None,
    };
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOptions {
        RunOptions {
            instructions: 10_000,
            workload_limit: Some(4),
            jobs: 2,
            trace_dir: None,
            tuned_config: None,
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    #[test]
    fn category_fig_has_expected_shape() {
        let t = fig7(&tiny());
        assert_eq!(t.columns.len(), 7);
        assert!(t.rows.iter().any(|(n, _)| n == "athena"));
        assert!(t.get("athena", "overall").unwrap() > 0.0);
    }

    #[test]
    fn storage_table_matches_paper_total() {
        let t = tab4_storage(&tiny());
        assert_eq!(t.get("total", "bytes"), Some(3072.0));
    }

    #[test]
    fn experiment_registry_is_complete() {
        for name in experiment_names() {
            // Only run the cheap ones here; existence is checked for all.
            if name == "tab4" {
                assert!(run_experiment(name, &tiny()).is_some());
            }
        }
        assert!(run_experiment("nonexistent", &tiny()).is_none());
    }

    #[test]
    fn static_best_is_at_least_naive() {
        let sweep = Sweep::run("test", &cd1(), &static_combo_policies(), &tiny());
        let idx = sweep.indices_for("overall");
        let naive = sweep.geomean_speedup("naive", &idx);
        let best = sweep.static_best(&idx);
        assert!(best >= naive - 1e-9);
        assert!(best >= 1.0 - 1e-9);
    }
}
