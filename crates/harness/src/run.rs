//! System configurations (cache designs CD1–CD4), mechanism registries and the single-run
//! entry points.

use athena_coordinators::{FixedCombo, Hpac, Mab, NaiveAll, Tlp};
use athena_core::{AthenaAgent, AthenaConfig};
use athena_ocp::{Hmp, Popet, Ttp};
use athena_prefetchers::{Berti, Ipcp, Mlop, NextLine, Pythia, Sms, SppPpf, StridePrefetcher};
use athena_sim::{
    CacheLevel, Coordinator, MultiCoreResult, MultiCoreSimulator, OffChipPredictor, Prefetcher,
    SimConfig, SimResult, Simulator,
};
use athena_workloads::{WorkloadMix, WorkloadSpec};

/// The prefetchers the harness can instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// IPCP at the L1 data cache.
    Ipcp,
    /// Berti at the L1 data cache.
    Berti,
    /// Pythia at the L2 cache.
    Pythia,
    /// SPP + PPF at the L2 cache.
    SppPpf,
    /// MLOP at the L2 cache.
    Mlop,
    /// SMS at the L2 cache.
    Sms,
    /// Reference next-line prefetcher at the L2 cache.
    NextLine,
    /// Reference stride prefetcher at the L2 cache.
    Stride,
}

impl PrefetcherKind {
    /// Instantiates the prefetcher.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::Ipcp => Box::new(Ipcp::new()),
            PrefetcherKind::Berti => Box::new(Berti::new()),
            PrefetcherKind::Pythia => Box::new(Pythia::new()),
            PrefetcherKind::SppPpf => Box::new(SppPpf::new()),
            PrefetcherKind::Mlop => Box::new(Mlop::new()),
            PrefetcherKind::Sms => Box::new(Sms::new()),
            PrefetcherKind::NextLine => Box::new(NextLine::new(CacheLevel::L2c, 4)),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(CacheLevel::L2c)),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            PrefetcherKind::Ipcp => "ipcp",
            PrefetcherKind::Berti => "berti",
            PrefetcherKind::Pythia => "pythia",
            PrefetcherKind::SppPpf => "spp+ppf",
            PrefetcherKind::Mlop => "mlop",
            PrefetcherKind::Sms => "sms",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Stride => "stride",
        }
    }
}

/// The off-chip predictors the harness can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OcpKind {
    /// POPET (Hermes perceptron).
    Popet,
    /// HMP hybrid hit/miss predictor.
    Hmp,
    /// TTP tag-tracking predictor.
    Ttp,
}

impl OcpKind {
    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn OffChipPredictor> {
        match self {
            OcpKind::Popet => Box::new(Popet::new()),
            OcpKind::Hmp => Box::new(Hmp::new()),
            OcpKind::Ttp => Box::new(Ttp::new()),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            OcpKind::Popet => "popet",
            OcpKind::Hmp => "hmp",
            OcpKind::Ttp => "ttp",
        }
    }
}

/// The coordination policy applied to a run.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorKind {
    /// Baseline: prefetchers and OCP statically disabled (no coordination hardware).
    Baseline,
    /// OCP enabled, prefetchers disabled.
    OcpOnly,
    /// Prefetchers enabled, OCP disabled.
    PrefetchersOnly,
    /// Naive: everything enabled at full aggressiveness.
    Naive,
    /// An arbitrary static combination (OCP on/off, all prefetchers on/off).
    Fixed {
        /// Enable the OCP.
        ocp: bool,
        /// Enable the prefetchers.
        prefetchers: bool,
    },
    /// HPAC (heuristic thresholds), adapted for OCP.
    Hpac,
    /// MAB (discounted-UCB bandit), adapted for OCP.
    Mab,
    /// TLP (off-chip-prediction-guided L1D prefetch filtering).
    Tlp,
    /// Athena with the paper's default configuration adapted for short simulations.
    Athena,
    /// Athena with an explicit configuration (ablations, DSE).
    AthenaWith(AthenaConfig),
}

impl CoordinatorKind {
    /// Instantiates the coordinator.
    pub fn build(&self) -> Box<dyn Coordinator> {
        match self {
            CoordinatorKind::Baseline => Box::new(FixedCombo::baseline()),
            CoordinatorKind::OcpOnly => Box::new(FixedCombo::ocp_only()),
            CoordinatorKind::PrefetchersOnly => Box::new(FixedCombo::prefetchers_only()),
            CoordinatorKind::Naive => Box::new(NaiveAll::new()),
            CoordinatorKind::Fixed { ocp, prefetchers } => {
                Box::new(FixedCombo::new(*ocp, *prefetchers))
            }
            CoordinatorKind::Hpac => Box::new(Hpac::new()),
            CoordinatorKind::Mab => Box::new(Mab::new()),
            CoordinatorKind::Tlp => Box::new(Tlp::new()),
            CoordinatorKind::Athena => Box::new(AthenaAgent::new(default_athena_config())),
            CoordinatorKind::AthenaWith(cfg) => Box::new(AthenaAgent::new(cfg.clone())),
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            CoordinatorKind::Baseline => "baseline",
            CoordinatorKind::OcpOnly => "ocp-only",
            CoordinatorKind::PrefetchersOnly => "prefetchers-only",
            CoordinatorKind::Naive => "naive",
            CoordinatorKind::Fixed { .. } => "fixed",
            CoordinatorKind::Hpac => "hpac",
            CoordinatorKind::Mab => "mab",
            CoordinatorKind::Tlp => "tlp",
            CoordinatorKind::Athena => "athena",
            CoordinatorKind::AthenaWith(_) => "athena*",
        }
    }
}

/// The Athena configuration the harness uses by default.
///
/// It is Table 3's configuration with one deviation: the exploration rate ε is raised from
/// 0.0 to 0.05. The paper's runs are 150–500 M instructions long (tens of thousands of
/// epochs), which gives a zero-ε agent enough workload-induced state variation to explore;
/// our reproduction runs are roughly three orders of magnitude shorter, so a small explicit
/// exploration rate is needed to visit all four actions. The deviation is recorded in
/// DESIGN.md and EXPERIMENTS.md.
pub fn default_athena_config() -> AthenaConfig {
    AthenaConfig {
        epsilon: 0.05,
        ..AthenaConfig::default()
    }
}

/// A full single-core system configuration: cache design plus mechanism choices.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The simulator (core, caches, DRAM) parameters.
    pub sim: SimConfig,
    /// Prefetchers, in attach order (L1D prefetchers first by convention).
    pub prefetchers: Vec<PrefetcherKind>,
    /// The off-chip predictor, if the design includes one.
    pub ocp: Option<OcpKind>,
}

impl SystemConfig {
    /// CD1: OCP + one L2C prefetcher (the paper's default design).
    pub fn cd1(l2c: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c],
            ocp: Some(ocp),
        }
    }

    /// CD2: OCP + one L1D prefetcher.
    pub fn cd2(l1d: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l1d],
            ocp: Some(ocp),
        }
    }

    /// CD3: OCP + two L2C prefetchers.
    pub fn cd3(l2c_a: PrefetcherKind, l2c_b: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c_a, l2c_b],
            ocp: Some(ocp),
        }
    }

    /// CD4: OCP + one L1D prefetcher + one L2C prefetcher.
    pub fn cd4(l1d: PrefetcherKind, l2c: PrefetcherKind, ocp: OcpKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l1d, l2c],
            ocp: Some(ocp),
        }
    }

    /// CD3 without an OCP (the prefetcher-only generalisability study, §7.6).
    pub fn prefetchers_only(l2c_a: PrefetcherKind, l2c_b: PrefetcherKind) -> Self {
        Self {
            sim: SimConfig::golden_cove_like(),
            prefetchers: vec![l2c_a, l2c_b],
            ocp: None,
        }
    }

    /// Returns a copy with a different main-memory bandwidth (GB/s per core).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.sim = self.sim.with_bandwidth(gbps);
        self
    }

    /// Returns a copy with a different OCP request issue latency (cycles).
    pub fn with_ocp_issue_latency(mut self, cycles: u64) -> Self {
        self.sim = self.sim.with_ocp_issue_latency(cycles);
        self
    }

    /// Human-readable description, e.g. `CD1<popet, pythia>`.
    pub fn describe(&self) -> String {
        let prefetchers: Vec<&str> = self.prefetchers.iter().map(|p| p.name()).collect();
        match &self.ocp {
            Some(ocp) => format!("<{}, {}>", ocp.name(), prefetchers.join("+")),
            None => format!("<{}>", prefetchers.join("+")),
        }
    }
}

/// Options controlling run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Instructions simulated per workload.
    pub instructions: u64,
    /// Optional cap on the number of workloads used by suite-wide experiments (useful for
    /// quick runs and Criterion benchmarks). `None` means all workloads.
    pub workload_limit: Option<usize>,
}

impl RunOptions {
    /// Full-suite defaults used by the `figures` binary. 400 K instructions per workload is
    /// roughly 200 coordination epochs — long enough for the online policies to converge in
    /// this reproduction while keeping a full figure under a minute on a laptop.
    pub fn full() -> Self {
        Self {
            instructions: 400_000,
            workload_limit: None,
        }
    }

    /// Reduced defaults used by Criterion benchmarks and integration tests.
    pub fn quick() -> Self {
        Self {
            instructions: 40_000,
            workload_limit: Some(12),
        }
    }
}

/// The result of one single-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles taken.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whole-run simulator statistics.
    pub stats: athena_sim::SimStats,
    /// Per-epoch telemetry (kept for phase-level analyses).
    pub epochs: Vec<athena_sim::EpochStats>,
}

impl RunResult {
    fn from_sim(workload: &str, r: SimResult) -> Self {
        Self {
            workload: workload.to_string(),
            instructions: r.instructions,
            cycles: r.cycles,
            ipc: r.ipc(),
            stats: r.stats,
            epochs: r.epochs,
        }
    }
}

/// Runs one workload on one system configuration under one coordination policy.
pub fn simulate(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions: u64,
) -> RunResult {
    let mut sim = Simulator::new(config.sim.clone());
    for p in &config.prefetchers {
        sim = sim.with_prefetcher(p.build());
    }
    if let Some(ocp) = &config.ocp {
        sim = sim.with_ocp(ocp.build());
    }
    sim = sim.with_coordinator(coordinator.build());
    let result = sim.run(spec.trace(), instructions);
    RunResult::from_sim(&spec.name, result)
}

/// Runs a multi-core mix: every core gets its own instance of the configured mechanisms and
/// coordinator, and all cores share one DRAM channel.
pub fn simulate_multicore(
    mix: &WorkloadMix,
    config: &SystemConfig,
    coordinator: CoordinatorKind,
    instructions_per_core: u64,
) -> MultiCoreResult {
    let cores = mix.workloads.len();
    let mut mc = MultiCoreSimulator::new(config.sim.clone(), cores);
    for spec in &mix.workloads {
        let prefetchers: Vec<Box<dyn Prefetcher>> =
            config.prefetchers.iter().map(|p| p.build()).collect();
        let ocp = config.ocp.as_ref().map(|o| o.build());
        mc.add_core(
            Box::new(spec.trace()),
            prefetchers,
            ocp,
            Some(coordinator.build()),
        );
    }
    mc.run(instructions_per_core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_workloads::all_workloads;

    #[test]
    fn cache_designs_have_the_right_shape() {
        let cd1 = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        assert_eq!(cd1.prefetchers.len(), 1);
        assert!(cd1.ocp.is_some());
        let cd4 = SystemConfig::cd4(PrefetcherKind::Ipcp, PrefetcherKind::Pythia, OcpKind::Popet);
        assert_eq!(cd4.prefetchers.len(), 2);
        assert_eq!(cd4.describe(), "<popet, ipcp+pythia>");
        let no_ocp = SystemConfig::prefetchers_only(PrefetcherKind::Sms, PrefetcherKind::Pythia);
        assert!(no_ocp.ocp.is_none());
    }

    #[test]
    fn every_kind_builds() {
        for p in [
            PrefetcherKind::Ipcp,
            PrefetcherKind::Berti,
            PrefetcherKind::Pythia,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Mlop,
            PrefetcherKind::Sms,
            PrefetcherKind::NextLine,
            PrefetcherKind::Stride,
        ] {
            assert_eq!(p.build().name(), p.name());
        }
        for o in [OcpKind::Popet, OcpKind::Hmp, OcpKind::Ttp] {
            assert_eq!(o.build().name(), o.name());
        }
        for c in [
            CoordinatorKind::Baseline,
            CoordinatorKind::Naive,
            CoordinatorKind::Hpac,
            CoordinatorKind::Mab,
            CoordinatorKind::Tlp,
            CoordinatorKind::Athena,
        ] {
            let _ = c.build();
        }
    }

    #[test]
    fn baseline_run_produces_no_speculative_traffic() {
        let spec = &all_workloads()[0];
        let cfg = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        let r = simulate(spec, &cfg, CoordinatorKind::Baseline, 20_000);
        assert_eq!(r.stats.prefetches_issued, 0);
        assert_eq!(r.stats.ocp_predictions, 0);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn naive_run_produces_speculative_traffic() {
        let spec = &all_workloads()[0];
        let cfg = SystemConfig::cd1(PrefetcherKind::Pythia, OcpKind::Popet);
        let r = simulate(spec, &cfg, CoordinatorKind::Naive, 20_000);
        assert!(r.stats.prefetches_issued > 0);
        assert!(r.stats.ocp_predictions > 0);
    }
}
