//! Run options and the single-run entry points.
//!
//! The system configurations (CD1–CD4), mechanism registries and the `simulate` /
//! `simulate_multicore` functions moved to `athena-engine` when the parallel experiment
//! engine was introduced; they are re-exported here unchanged so existing callers keep
//! working. What remains harness-local is [`RunOptions`], which bundles the run-length
//! *and* parallelism knobs every experiment takes.

pub use athena_engine::{
    default_athena_config, simulate, simulate_multicore, CoordinatorKind, OcpKind, PrefetcherKind,
    RunResult, SystemConfig,
};

/// Options controlling run length and parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Instructions simulated per workload.
    pub instructions: u64,
    /// Optional cap on the number of workloads used by suite-wide experiments (useful for
    /// quick runs and Criterion benchmarks). `None` means all workloads.
    pub workload_limit: Option<usize>,
    /// Number of simulation cells run concurrently by the experiment engine. `1` is the
    /// exact serial path (no worker threads); results are bit-identical at any value — see
    /// `athena-engine`.
    pub jobs: usize,
}

impl RunOptions {
    /// Full-suite defaults used by the `figures` binary. 400 K instructions per workload is
    /// roughly 200 coordination epochs — long enough for the online policies to converge in
    /// this reproduction while keeping a full figure under a minute on a laptop.
    pub fn full() -> Self {
        Self {
            instructions: 400_000,
            workload_limit: None,
            jobs: 1,
        }
    }

    /// Reduced defaults used by Criterion benchmarks and integration tests.
    pub fn quick() -> Self {
        Self {
            instructions: 40_000,
            workload_limit: Some(12),
            jobs: 1,
        }
    }

    /// Returns a copy with a different engine worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_serial() {
        assert_eq!(RunOptions::full().jobs, 1);
        assert_eq!(RunOptions::quick().jobs, 1);
    }

    #[test]
    fn with_jobs_clamps_to_at_least_one() {
        assert_eq!(RunOptions::quick().with_jobs(8).jobs, 8);
        assert_eq!(RunOptions::quick().with_jobs(0).jobs, 1);
    }
}
