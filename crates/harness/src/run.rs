//! Run options and the single-run entry points.
//!
//! The system configurations (CD1–CD4), mechanism registries and the `simulate` /
//! `simulate_multicore` functions moved to `athena-engine` when the parallel experiment
//! engine was introduced; they are re-exported here unchanged so existing callers keep
//! working. What remains harness-local is [`RunOptions`], which bundles every knob an
//! experiment takes: run length, workload sampling, engine parallelism and trace
//! substitution.
//!
//! Each field maps onto a `figures` CLI flag (`--instructions`, `--workloads`, `--jobs`,
//! `--trace-dir`); the CLI additionally offers output-mode flags that never reach the
//! experiments themselves — `--out DIR` (CSV files), `--json` (per-figure JSON reports
//! with per-cell records) and `--bench-report` (serial-vs-parallel timing snapshot with a
//! byte-identity check, written to `BENCH_engine.json`).

use std::path::PathBuf;

use athena_engine::Engine;

pub use athena_engine::{
    default_athena_config, simulate, simulate_multicore, CoordinatorKind, DistPool, OcpKind,
    PrefetcherKind, ProbeSink, RunResult, StoreHandle, StorePolicy, SystemConfig, WorkerCommand,
};

/// Options controlling run length, parallelism and trace substitution.
///
/// Passed (by reference) to every experiment; construct via [`RunOptions::full`] or
/// [`RunOptions::quick`] and override fields as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Instructions simulated per workload (the `--instructions` flag).
    pub instructions: u64,
    /// Optional cap on the number of workloads used by suite-wide experiments (the
    /// `--workloads` flag; useful for quick runs and Criterion benchmarks). `None` means
    /// all workloads. The cap keeps a balanced interleaving of designed-friendly and
    /// designed-adverse workloads — see [`crate::experiments::workload_set`].
    pub workload_limit: Option<usize>,
    /// Number of simulation cells run concurrently by the experiment engine (the `--jobs`
    /// flag; the CLI defaults it to every hardware thread). `1` is the exact serial path
    /// (no worker threads); results are bit-identical at any value — see `athena-engine`.
    pub jobs: usize,
    /// Optional directory of recorded traces (the `--trace-dir` flag). When set, every
    /// single-core cell whose workload has a recorded trace in the directory (a
    /// `<workload-name>.trace` file, as written by `trace record`) is replayed from that
    /// file instead of being generated in-process; workloads without a recorded trace, and
    /// multi-core mixes, fall back to generation. A replayed trace recorded from the same
    /// generator reproduces the generated cell's results byte for byte (locked in by
    /// `tests/trace_roundtrip.rs`).
    pub trace_dir: Option<PathBuf>,
    /// Optional tuned Athena configuration file (the `--tuned-config` flag), as written
    /// by the `tune` CLI (`best.json` or a bare config object). When set, the `tuned`
    /// experiment and the timeline study run a `tuned` policy loaded from this file; a
    /// configuration produced by `tune` on the same options reproduces its leaderboard
    /// speedup exactly (locked in by `tests/tune_determinism.rs`).
    pub tuned_config: Option<PathBuf>,
    /// Optional persistent result store (the `--store` flag): every engine batch an
    /// experiment runs consults it before simulating and persists what it simulates, as
    /// the handle's [`StorePolicy`] allows. Because cells are pure functions of their
    /// jobs, tables are byte-identical with or without a store; a warm store makes the
    /// whole run simulation-free.
    pub store: Option<StoreHandle>,
    /// Optional distributed worker pool (the `--workers` flag): every engine batch an
    /// experiment runs executes its store-missing cells on spawned worker processes
    /// (`athena_engine::dist`) instead of in-process threads. Merge order, the store and
    /// event emission stay on the coordinator, so tables are byte-identical at any
    /// worker count.
    pub dist: Option<DistPool>,
    /// Optional structured event sink (the `--events` flag): every engine batch an
    /// experiment runs emits its lifecycle events through it as JSONL. Observation is not
    /// identity — attaching a sink cannot change a table byte.
    pub probe: Option<ProbeSink>,
    /// Live `cells done / cached / ETA` progress line on stderr while batches simulate
    /// (the `--progress` flag). Off by default.
    pub progress: bool,
}

impl RunOptions {
    /// Full-suite defaults used by the `figures` binary. 400 K instructions per workload is
    /// roughly 200 coordination epochs — long enough for the online policies to converge in
    /// this reproduction while keeping a full figure under a minute on a laptop.
    pub fn full() -> Self {
        Self {
            instructions: 400_000,
            workload_limit: None,
            jobs: 1,
            trace_dir: None,
            tuned_config: None,
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    /// Reduced defaults used by Criterion benchmarks and integration tests.
    pub fn quick() -> Self {
        Self {
            instructions: 40_000,
            workload_limit: Some(12),
            jobs: 1,
            trace_dir: None,
            tuned_config: None,
            store: None,
            dist: None,
            probe: None,
            progress: false,
        }
    }

    /// Returns a copy with a different engine worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Returns a copy replaying recorded traces from `dir` (see
    /// [`RunOptions::trace_dir`]).
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Returns a copy running the `tuned` policy from the given configuration file (see
    /// [`RunOptions::tuned_config`]).
    pub fn with_tuned_config(mut self, path: impl Into<PathBuf>) -> Self {
        self.tuned_config = Some(path.into());
        self
    }

    /// Returns a copy whose engine batches use the given result store (see
    /// [`RunOptions::store`]).
    pub fn with_store(mut self, store: StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Returns a copy whose engine batches run on the given distributed worker pool (see
    /// [`RunOptions::dist`]).
    pub fn with_dist(mut self, dist: DistPool) -> Self {
        self.dist = Some(dist);
        self
    }

    /// Returns a copy whose engine batches emit lifecycle events through the given sink
    /// (see [`RunOptions::probe`]).
    pub fn with_probe(mut self, probe: ProbeSink) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Returns a copy with the stderr progress line enabled (see
    /// [`RunOptions::progress`]).
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// Builds the experiment engine an options set asks for: `opts.jobs` workers, with the
/// result store, distributed pool and event sink attached when configured. Every
/// experiment batch goes through here, so the `--store` / `--workers` / `--events` /
/// `--progress` flags reach all of them.
pub(crate) fn engine_for(opts: &RunOptions) -> Engine {
    Engine::new(opts.jobs)
        .with_store(opts.store.clone())
        .with_dist(opts.dist.clone())
        .with_probe(opts.probe.clone())
        .with_progress(opts.progress)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_serial_and_generated() {
        assert_eq!(RunOptions::full().jobs, 1);
        assert_eq!(RunOptions::quick().jobs, 1);
        assert_eq!(RunOptions::full().trace_dir, None);
        assert_eq!(RunOptions::quick().trace_dir, None);
    }

    #[test]
    fn with_jobs_clamps_to_at_least_one() {
        assert_eq!(RunOptions::quick().with_jobs(8).jobs, 8);
        assert_eq!(RunOptions::quick().with_jobs(0).jobs, 1);
    }

    #[test]
    fn with_trace_dir_sets_the_directory() {
        let opts = RunOptions::quick().with_trace_dir("/tmp/traces");
        assert_eq!(
            opts.trace_dir.as_deref(),
            Some(std::path::Path::new("/tmp/traces"))
        );
    }
}
